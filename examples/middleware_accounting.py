#!/usr/bin/env python
"""Middleware accounting and the points system (Sections 6 and 8).

Phase I ran on the UD agent, whose wall-clock accounting overstates the
work a volunteer fleet delivers; phase II moves to BOINC's CPU-time
accounting; the paper's conclusion proposes points (run time x benchmark)
as the middleware-independent VFTP estimator.  This example runs the same
scaled campaign under both accountings and puts the three estimators side
by side — plus the server-capacity check that constrains workunit size
from below (Section 3.2).

Run:  python examples/middleware_accounting.py
"""

from repro import constants as C
from repro.analysis.report import render_table
from repro.boinc.capacity import ServerCapacityModel
from repro.boinc.credit import AccountingMode
from repro.boinc.simulator import scaled_phase1


def main() -> None:
    print("== run-time accounting across middlewares ==\n")

    rows = []
    for mode in AccountingMode:
        sim = scaled_phase1(scale=200, n_proteins=14, accounting=mode)
        result = sim.run()
        truth = result.vftp_from_useful_work()
        rows.append([
            {"ud": "UD (phase I)", "boinc": "BOINC (phase II)"}[mode.value],
            f"{result.metrics().vftp / truth:.2f}",
            f"{result.vftp_from_credit() / truth:.2f}",
            f"{result.metrics().redundancy:.2f}",
        ])
    print("VFTP estimators relative to true useful throughput (1.0 = exact):")
    print(render_table(
        ["agent", "runtime-based / truth", "points-based / truth", "redundancy"],
        rows,
    ))
    print(
        "\nThe UD agent bills wall-clock at a 60% throttle and lowest\n"
        "priority, so its runtime-based VFTP runs ~4x hot — the paper's\n"
        "speed-down.  Points (runtime x benchmark) cancel device speed and\n"
        "land at the redundancy floor under either middleware: the\n"
        "'more middleware independent' estimator of Section 8.\n"
    )

    print("== server capacity (Section 3.2) ==\n")
    model = ServerCapacityModel()
    rows = []
    for hours in (0.1, 1.0, 3.3, 10.0):
        device_s = hours * 3600 * C.SPEED_DOWN_NET
        rows.append([
            f"{hours:g} h",
            f"{model.results_per_day(C.WCG_DEVICES, device_s):,.0f}",
            f"{model.utilization(C.WCG_DEVICES, device_s):.1%}",
            "yes" if model.sustainable(C.WCG_DEVICES, device_s) else "NO",
        ])
    print(f"{C.WCG_DEVICES:,} devices against a BOINC-class task server:")
    print(render_table(
        ["workunit target", "results/day", "utilization", "sustainable"], rows
    ))
    floor = model.min_workunit_hours(C.WCG_DEVICES, C.SPEED_DOWN_NET)
    print(f"\nserver floor on workunit duration: {floor:.2f} reference hours;")
    print("the ~10 h human-factor target sits far above it, as the paper's")
    print("deployment (3-4 h workunits) confirms.")


if __name__ == "__main__":
    main()
