#!/usr/bin/env python
"""Volunteer grid vs dedicated grid (Section 6, Table 2).

Integrates phase I at full scale with the fluid model, derives the Table 2
equivalence, and cross-checks it by executing the same useful work on the
dedicated-grid simulator.

Run:  python examples/grid_comparison.py
"""

from repro import CostModel, FluidCampaign, PackagingPolicy, ProteinLibrary, WorkUnitPlan
from repro.analysis.comparison import EquivalenceTable
from repro.analysis.report import paper_vs_measured, render_table
from repro import constants as C
from repro.core.campaign import CampaignPlan
from repro.dedicated import DedicatedGridSimulation
from repro.units import seconds_to_ydhms


def main() -> None:
    print("== volunteer vs dedicated grid ==\n")
    library = ProteinLibrary.phase1()
    cost_model = CostModel.calibrated(library)
    campaign = CampaignPlan(library, cost_model)
    plan = WorkUnitPlan(cost_model, PackagingPolicy(target_hours=3.65))

    fluid = FluidCampaign(campaign, plan.duration_stats()["mean"])
    result = fluid.run()
    whole = result.metrics()
    full_power = result.metrics(first_week=13)

    print(f"campaign completes in {result.completion_week:.1f} weeks "
          f"(paper: 26)")
    print(f"volunteer CPU consumed: {seconds_to_ydhms(whole.consumed_cpu_s)} "
          f"(paper: 8,082:275:17:15:44)\n")

    table = EquivalenceTable.from_metrics(whole, full_power)
    rows = [
        ["World Community Grid (VFTP)", *[r[1] for r in table.rows()]],
        ["Dedicated Grid (processors)", *[r[2] for r in table.rows()]],
    ]
    print("Table 2 (measured):")
    print(render_table(["grid", "whole period", "full power phase"], rows))
    print()
    print(paper_vs_measured([
        ("VFTP whole period", C.HCMD_VFTP_WHOLE_PERIOD, whole.vftp),
        ("VFTP full power", C.HCMD_VFTP_FULL_POWER, full_power.vftp),
        ("dedicated equiv whole", C.DEDICATED_EQUIV_WHOLE_PERIOD,
         whole.dedicated_equivalent),
        ("dedicated equiv full power", C.DEDICATED_EQUIV_FULL_POWER,
         full_power.dedicated_equivalent),
        ("raw speed-down", C.SPEED_DOWN_RAW, whole.speed_down_raw),
    ]))

    # Cross-check: a Grid'5000-style cluster of the equivalent size chews
    # through the same packaged workload in about the campaign span.
    n = round(whole.dedicated_equivalent)
    print(f"\ncross-check: replaying the packaged workload on {n} dedicated "
          f"reference processors ...")
    dedicated = DedicatedGridSimulation(n_processors=n).run_workunits(
        plan, max_workunits=200_000, lpt=False
    )
    frac = dedicated.cpu_seconds / cost_model.total_reference_cpu()
    scaled_weeks = dedicated.makespan_s / 604800 / frac
    print(f"  prefix of {dedicated.n_tasks:,} workunits = {frac:.1%} of the work")
    print(f"  extrapolated full-campaign makespan: {scaled_weeks:.1f} weeks "
          f"(volunteer grid: {result.completion_week:.1f})")
    print(f"  cluster utilization: {dedicated.utilization:.1%} "
          f"(the 'optimally used' caveat of the paper)")

    # Section 6's closing estimate.
    week_equiv = EquivalenceTable.current_week_equivalent(
        C.WCG_WEEK_VFTP, whole.speed_down_net
    )
    print(f"\na {C.WCG_WEEK_VFTP:,}-VFTP WCG week is worth ~{week_equiv:,.0f} "
          f"dedicated Opterons (paper: {C.WCG_WEEK_DEDICATED_EQUIV:,})")


if __name__ == "__main__":
    main()
