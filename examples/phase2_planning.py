#!/usr/bin/env python
"""Phase II planning (Section 7, Table 3).

Reproduces the paper's projection — 4,000 proteins, docking points cut
100x — and explores the planning space around it: deadline vs required
VFTP, member recruitment under different grid shares, and sensitivity to
the point-reduction factor the scientists hoped for.

Run:  python examples/phase2_planning.py
"""

import numpy as np

from repro import constants as C
from repro import project_phase2
from repro.analysis.report import paper_vs_measured, render_table
from repro.core.projection import work_ratio
from repro.grid.population import WCGPopulationModel


def main() -> None:
    print("== HCMD phase II projection ==\n")
    proj = project_phase2()

    print("Table 3 (measured):")
    rows = [[label, f"{a:,.0f}", f"{b:,.0f}"] for label, a, b in proj.rows()]
    print(render_table(["", "HCMD phase I", "HCMD phase II"], rows))
    print()
    print(paper_vs_measured([
        ("phase II cpu (s)", C.PHASE2_CPU_S, proj.phase2_cpu_s),
        ("phase II VFTP @40 weeks", C.PHASE2_VFTP, proj.phase2_vftp),
        ("phase II members", C.PHASE2_MEMBERS, proj.phase2_members),
        ("weeks at phase-I rate", C.PHASE2_WEEKS_AT_PHASE1_RATE,
         proj.weeks_at_phase1_rate),
        ("members at 25% share", C.PHASE2_MEMBERS_NEEDED,
         proj.members_needed(C.PHASE2_GRID_SHARE)),
    ]))

    # Planning sweep 1: deadline vs required processors.
    print("\ndeadline sweep (how many VFTP to finish phase II in W weeks):")
    rows = []
    for weeks in (20, 40, 60, 90, 120):
        p = project_phase2(phase2_weeks=weeks)
        rows.append([weeks, f"{p.phase2_vftp:,.0f}",
                     f"{p.phase2_members:,.0f}"])
    print(render_table(["weeks", "VFTP needed", "members needed"], rows))

    # Planning sweep 2: how much the 100x point reduction matters.
    print("\npoint-reduction sensitivity (40-week deadline):")
    rows = []
    for reduction in (10, 50, 100, 200):
        ratio = work_ratio(4000, point_reduction=reduction)
        p = project_phase2(point_reduction=reduction)
        rows.append([f"{reduction}x", f"{ratio:.2f}", f"{p.phase2_vftp:,.0f}"])
    print(render_table(["reduction", "work ratio vs phase I", "VFTP needed"], rows))

    # When does WCG's organic growth reach the phase-II demand?
    model = WCGPopulationModel.calibrated()
    demand_members = proj.members_needed(C.PHASE2_GRID_SHARE)
    days = np.arange(0, 4000.0)
    members = np.asarray(model.members(days))
    reach = np.argmax(members >= demand_members)
    print(f"\nphase II at a {C.PHASE2_GRID_SHARE:.0%} grid share needs "
          f"~{demand_members:,.0f} members;")
    if members[-1] < demand_members:
        print("  the fitted logistic never reaches that alone — "
              "hence the paper's call for ~1,000,000 new volunteers.")
    else:
        print(f"  organic growth reaches it ~{(reach - 1110) / 365:.1f} years "
              f"after the paper was written.")


if __name__ == "__main__":
    main()
