#!/usr/bin/env python
"""Binding-site localization and focused docking (Sections 2 and 7).

Phase I's maps are meant to reveal *where* proteins bind; phase II plans
to exploit that knowledge to "reduce the number of docking points by a
factor of 100".  This example runs the full loop: build position-resolved
cross-docking maps with planted interfaces, localize the binding sites by
consensus, prune the starting grids, and measure how much partner signal
the 10x and 100x reductions keep — the feasibility behind Table 3.

Run:  python examples/binding_sites.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.science import SiteMaps, predict_partners, recovery_rate


def main() -> None:
    print("== binding-site localization ==\n")
    maps = SiteMaps.synthetic(n_proteins=80, seed=2007, n_positions=400)
    print(f"proteins: {maps.n_proteins}; positions per receptor: "
          f"{maps.n_positions}; planted complexes: {len(maps.complexes)}")
    print(f"interface size: ~{maps.planted_sites.mean():.0%} of each surface\n")

    print(f"consensus site recovery: {maps.site_recovery():.0%} of the "
          f"planted interface positions\n")

    # One receptor's site, visualized as consensus score vs truth.
    i = 0
    scores = maps.consensus_scores(i)
    truth = maps.planted_sites[i]
    print(f"receptor 0: mean consensus score inside the planted site "
          f"{scores[truth].mean():.3f}, outside {scores[~truth].mean():.3f}")
    print("(lower = more ligands bind there anomalously well)\n")

    print("== focused docking: the phase-II cost lever ==\n")
    rows = []
    full_pred = predict_partners(maps.to_matrix())
    rows.append(["100%", "1.00x", f"{recovery_rate(full_pred, maps.complexes, 1):.0%}"])
    for keep in (0.1, 0.01):
        pruned = maps.pruned(keep_fraction=keep)
        pred = predict_partners(pruned.to_matrix())
        rows.append([
            f"{keep:.0%}",
            f"{1 / maps.docking_cost_fraction(keep):.0f}x cheaper",
            f"{recovery_rate(pred, maps.complexes, 1):.0%}",
        ])
    print(render_table(
        ["docking points kept", "compute cost", "top-1 partner recovery"],
        rows,
    ))
    print(
        "\nCutting the starting grid to the consensus site keeps most of\n"
        "the partner signal at a fraction of the compute — the mechanism\n"
        "behind phase II's '4,000 proteins with points reduced by a factor\n"
        "of 100' plan (Section 7)."
    )


if __name__ == "__main__":
    main()
