#!/usr/bin/env python
"""Replay HCMD phase I on the volunteer-grid simulator (Section 5).

Runs a scale-reduced discrete-event campaign — hosts arriving through the
control / prioritization / full-power phases, redundant computing,
checkpoint losses, deadline reissues — and prints the paper's accounting
next to the simulated one.

Run:  python examples/hcmd_phase1_campaign.py [scale]
  scale (default 120): divide per-protein position counts by this factor.
"""

import sys

import numpy as np

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_table
from repro.analysis.timeseries import segment_phases
from repro.boinc.simulator import scaled_phase1


def main(scale: float = 120.0) -> None:
    print(f"== HCMD phase I, scaled 1/{scale:g} ==\n")
    sim = scaled_phase1(scale=scale, n_proteins=24)
    print(f"proteins: {len(sim.library)}  workunits: {sim.plan.total_workunits():,}  "
          f"peak hosts: {sim.n_hosts_peak}")
    print("running the campaign ...\n")
    result = sim.run()
    metrics = result.metrics()

    weeks = result.completion_weeks
    print(paper_vs_measured([
        ("completion (weeks)", 26, weeks if weeks else float("nan")),
        ("redundancy factor", C.REDUNDANCY_FACTOR, metrics.redundancy),
        ("useful result fraction", C.USEFUL_RESULT_FRACTION,
         metrics.useful_result_fraction),
        ("net speed-down", C.SPEED_DOWN_NET, metrics.speed_down_net),
        ("raw speed-down", C.SPEED_DOWN_RAW, metrics.speed_down_raw),
    ]))

    # The three phases of Figure 6a, detected from the simulated series.
    weekly = result.telemetry.weekly_vftp()
    horizon = int(np.ceil(weeks)) if weeks else len(weekly)
    phases = segment_phases(weekly[:horizon])
    rows = []
    for name, (a, b) in phases.items():
        rows.append([name, f"weeks {a}-{b}", f"{weekly[a:b].mean():.2f}"])
    print("\nproject phases (simulated weekly VFTP, scaled units):")
    print(render_table(["phase", "span", "avg VFTP"], rows))

    # Device-side behaviour (Figure 8's observation).
    mean_wu_h = sim.plan.duration_stats()["mean"] / 3600
    print(f"\nmean workunit reference duration: {mean_wu_h:.2f} h")
    print(f"mean device run time: {result.mean_device_run_hours():.2f} h "
          f"(paper relation: x{C.SPEED_DOWN_NET} = "
          f"{mean_wu_h * C.SPEED_DOWN_NET:.2f} h)")

    # Progression: small proteins first (Figure 7's message).
    t = result.batch_completion_s
    half = len(t) // 2
    print(f"\nmean completion of first-released half of the proteins: "
          f"week {t[:half].mean() / 604800:.1f}")
    print(f"mean completion of last-released half: week {t[half:].mean() / 604800:.1f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 120.0)
