#!/usr/bin/env python
"""Partner prediction from cross-docking energy maps (Section 2).

The scientific goal behind the 80 centuries of CPU time: identify which
proteins interact.  This example builds the phase-I-scale cross-docking
matrix with planted complexes (every library protein "is known to take
part in at least one identified protein-protein complex"), then runs the
prediction pipeline — stickiness normalization and partner ranking — and
scores it against the planted truth.  A tiny library is also docked with
the *real* MAXDo engine to show the identical pipeline on physical
energies.

Run:  python examples/partner_prediction.py
"""

import numpy as np

from repro import ProteinLibrary
from repro.analysis.report import render_table
from repro.science import CrossDockingMatrix, predict_partners, recovery_rate
from repro.science.partners import ranking_auc


def main() -> None:
    print("== partner prediction at phase-I scale ==\n")
    library = ProteinLibrary.phase1()
    matrix = CrossDockingMatrix.synthetic(library)
    print(f"proteins: {matrix.n_proteins}; planted complexes: "
          f"{len(matrix.complexes)}")
    print(f"energy range: [{matrix.energies.min():.1f}, "
          f"{matrix.energies.max():.1f}] kcal/mol\n")

    raw = predict_partners(matrix, normalize=False)
    norm = predict_partners(matrix, normalize=True)
    rows = []
    for label, pred in (("raw best energies", raw),
                        ("normalized (double-centered)", norm)):
        rows.append([
            label,
            f"{recovery_rate(pred, matrix.complexes, k=1):.0%}",
            f"{recovery_rate(pred, matrix.complexes, k=5):.0%}",
            f"{ranking_auc(pred, matrix.complexes):.3f}",
        ])
    print("recovery of the planted partners:")
    print(render_table(["scoring", "top-1", "top-5", "AUC"], rows))
    print(
        "\nRaw energies mostly rank protein stickiness (big charged\n"
        "proteins bind everything); double centering removes the\n"
        "per-protein bias and exposes the couple-specific signal —\n"
        "the normalized interaction index of the cross-docking method.\n"
    )

    # A protein's report card.
    a, b = matrix.complexes[0]
    print(f"example: {library.names[a]} (true partner {library.names[b]})")
    top = norm.top_partners(a, 5)
    print(render_table(
        ["rank", "candidate", "true partner?"],
        [[r + 1, library.names[p], "YES" if p == b else ""]
         for r, p in enumerate(top)],
    ))

    print("\n== same pipeline on real docking energies (tiny library) ==\n")
    # A hand-sized library (tens of beads per protein) so the full 4x4
    # real-docking matrix runs in seconds.
    tiny = ProteinLibrary(
        names=["P1", "P2", "P3", "P4"],
        nsep=np.array([8, 8, 8, 8]),
        residue_counts=np.array([28, 34, 40, 46]),
        spacing=4.0,
        seed=5,
    )
    real = CrossDockingMatrix.from_docking(
        tiny, nsep_per_couple=3, n_couples=4, n_gamma=2,
        minimize=True, max_iterations=20,
    )
    print("best interaction energies (kcal/mol), receptor rows:")
    header = [""] + list(tiny.names)
    rows = [
        [tiny.names[i]] + [f"{real.energies[i, j]:.2f}" for j in range(4)]
        for i in range(4)
    ]
    print(render_table(header, rows))
    pred = predict_partners(real)
    print("\npredicted best partner per protein:")
    print(render_table(
        ["protein", "best partner"],
        [[tiny.names[i], tiny.names[pred.top_partners(i, 1)[0]]]
         for i in range(4)],
    ))


if __name__ == "__main__":
    main()
