#!/usr/bin/env python
"""Dock one protein couple with the MAXDo engine (Section 2.1).

Runs the real reduced-model docking pipeline on a small couple: energy
minimization from a grid of starting positions and orientations, with a
mid-run interruption and checkpoint-restart (Section 4.3), result-file
validation (Section 5.2) and per-couple merging.

Run:  python examples/docking_single_couple.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CostModel, ProteinLibrary
from repro.maxdo.docking import MaxDoRun
from repro.maxdo.resultfile import read_results
from repro.validation.checks import check_result_file
from repro.validation.merge import merge_couple_results


def main() -> None:
    print("== MAXDo docking of one couple ==\n")

    # A tiny two-protein library so real minimization stays interactive.
    library = ProteinLibrary.synthetic(n_proteins=2, sum_nsep=16, seed=11)
    receptor = library.protein(0)
    ligand = library.protein(1)
    total_nsep = int(library.nsep[0])
    print(f"receptor {receptor.name}: {receptor.n_beads} beads, "
          f"{total_nsep} starting positions")
    print(f"ligand   {ligand.name}: {ligand.n_beads} beads\n")

    cost_model = CostModel.calibrated(library)
    print(f"modelled cost of one starting position: "
          f"{cost_model.seconds_per_position(0, 1):,.0f} reference seconds\n")

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        n_couples, n_gamma = 6, 3  # reduced orientation grid for speed

        # Workunit 1: positions 1..3, interrupted after 2 positions —
        # exactly what a volunteer stopping their machine does.
        wu1 = MaxDoRun(
            receptor, ligand, isep_start=1, nsep=3, total_nsep=total_nsep,
            workdir=workdir, n_couples=n_couples, n_gamma=n_gamma,
            minimize=True, max_iterations=25,
        )
        ck = wu1.run(max_positions=2)
        print(f"interrupted at checkpoint: {ck.positions_done}/{ck.nsep} positions")

        # Restart from the checkpoint and finish.
        resumed = MaxDoRun(
            receptor, ligand, isep_start=1, nsep=3, total_nsep=total_nsep,
            workdir=workdir, n_couples=n_couples, n_gamma=n_gamma,
            minimize=True, max_iterations=25,
        )
        ck = resumed.run()
        file1 = resumed.finalize()
        print(f"workunit 1 complete: {file1.name}")

        # Workunit 2: the remaining positions of the couple.
        wu2 = MaxDoRun(
            receptor, ligand, isep_start=4, nsep=total_nsep - 3,
            total_nsep=total_nsep, workdir=workdir,
            n_couples=n_couples, n_gamma=n_gamma,
            minimize=True, max_iterations=25,
        )
        wu2.run()
        file2 = wu2.finalize()
        print(f"workunit 2 complete: {file2.name}\n")

        # Validate both uploads with the paper's checks, then merge.
        for f in (file1, file2):
            report = check_result_file(f)
            print(f"validation of {f.name}: {'OK' if report.ok else report}")
        merged = workdir / "couple.result"
        n_lines = merge_couple_results([file1, file2], merged)
        print(f"\nmerged result file: {n_lines} lines "
              f"({total_nsep} positions x {n_couples} orientation couples)")

        table = read_results(merged)
        best = int(np.argmin(table.records["e_tot"]))
        rec = table.records[best]
        print("\nstrongest interaction found:")
        print(f"  isep={int(rec['isep'])} irot={int(rec['irot'])} "
              f"E_lj={rec['e_lj']:.2f} E_elec={rec['e_elec']:.2f} "
              f"E_tot={rec['e_tot']:.2f} kcal/mol")


if __name__ == "__main__":
    main()
