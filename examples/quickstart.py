#!/usr/bin/env python
"""Quickstart: estimate and package HCMD phase I (Sections 4.1-4.2).

Builds the calibrated 168-protein library and cost matrix, applies
formula (1), and slices the workload into ~10 h workunits — the paper's
preparation pipeline, end to end, in a few seconds.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    PackagingPolicy,
    ProteinLibrary,
    WorkUnitPlan,
    estimate_total_work,
)
from repro.analysis.report import paper_vs_measured
from repro.units import format_bytes, format_duration


def main() -> None:
    print("== HCMD phase I preparation ==\n")

    # 1. The protein set: 168 synthetic proteins whose starting-position
    #    counts are calibrated to the paper's Figure 2 distribution.
    library = ProteinLibrary.phase1()
    print(f"proteins: {len(library)}")
    print(f"starting positions (sum): {int(library.nsep.sum()):,}")
    print(f"largest protein: {library.names[int(library.nsep.argmax())]} "
          f"with {int(library.nsep.max()):,} positions\n")

    # 2. The computing-time model: the 168x168 Mct matrix a real deployment
    #    measured on Grid'5000 (Table 1 statistics).
    cost_model = CostModel.calibrated(library)
    stats = cost_model.statistics()
    print("computing-time matrix (seconds per starting position):")
    for key in ("average", "median", "min", "max"):
        print(f"  {key:>8}: {stats[key]:,.0f}")
    print()

    # 3. Formula (1): the total work estimate.
    report = estimate_total_work(library, cost_model)
    print(f"total reference CPU time: {report.total_ydhms} (y:d:h:m:s)")
    print(f"maximum workunits: {report.max_workunits:,}")
    print(f"projected result dataset: {format_bytes(report.result_bytes)}\n")

    # 4. Packaging: slice into ~10 h pieces (Figure 4a).
    plan = WorkUnitPlan(cost_model, PackagingPolicy(target_hours=10.0))
    wu_stats = plan.duration_stats()
    print(f"workunits at h=10: {plan.total_workunits():,}")
    print(f"mean workunit duration: {format_duration(wu_stats['mean'])}")
    print(f"longest workunit: {format_duration(wu_stats['max'])}\n")

    print(paper_vs_measured([
        ("total max workunits", 49_481_544, report.max_workunits),
        ("workunits at h=10", 1_364_476, plan.total_workunits()),
        ("matrix mean (s)", 671, stats["average"]),
        ("matrix median (s)", 384, stats["median"]),
    ]))


if __name__ == "__main__":
    main()
