"""Analytic (fluid) full-scale campaign model.

The discrete-event simulator cannot run phase I at its real size (1.36M
workunits, ~5.4M results).  The fluid model integrates the campaign week by
week as a continuous flow — supply (VFTP from the share schedule and the
WCG growth trend) times efficiency (net speed-down, redundancy regime)
drains the receptor-batch queue — and produces the full-scale series behind
Figures 6a, 6b and 7 and the Table 2 averages.  The DES cross-validates the
fluid model at reduced scale (see ``bench_ablation_des_vs_fluid``).
"""

from .model import FluidCampaign, FluidResult

__all__ = ["FluidCampaign", "FluidResult"]
