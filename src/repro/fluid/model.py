"""Week-by-week fluid integration of a volunteer campaign.

State per week ``w``:

* **supply** — VFTP dedicated to the project: share schedule x WCG trend
  (Figure 6a), consumed CPU = VFTP x week-seconds;
* **efficiency** — useful reference work = consumed / (net speed-down x
  redundancy(w)); redundancy follows the two validation regimes of
  Section 5.1 (quorum comparison early, value-range checks later);
* **drain** — useful work flows through the receptor batches in release
  order (protein after protein, Section 5.1), giving the progression
  snapshots of Figure 7;
* **results** — disclosed results = consumed / mean device time per
  result; useful results = useful work / mean workunit cost (Figure 6b).

The model's self-consistency mirrors the paper's: with the paper's share
schedule and efficiency constants, total consumption over 26 weeks lands at
~8,082 CPU-years = 5.43 x the 1,488-year reference estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..core.campaign import CampaignPlan, ProgressionSnapshot
from ..core.metrics import CampaignMetrics
from ..grid.population import ShareSchedule, WCGPopulationModel, hcmd_share_schedule
from ..units import SECONDS_PER_WEEK

__all__ = ["FluidCampaign", "FluidResult"]

#: Redundancy of the quorum-comparison regime: two copies per workunit plus
#: a few percent of invalid/late extras.
REDUNDANCY_QUORUM = 2.05

#: Redundancy of the value-range regime: one copy plus invalid results,
#: deadline reissues that both return, and late arrivals.
REDUNDANCY_BOUNDS = 1.12


@dataclass
class FluidResult:
    """Weekly series and aggregates of one fluid campaign run."""

    weeks: np.ndarray  #: week indices (0-based)
    vftp: np.ndarray  #: project VFTP per week (Figure 6a)
    consumed_cpu_s: np.ndarray  #: device CPU consumed per week
    useful_reference_s: np.ndarray  #: validated reference work per week
    results_disclosed: np.ndarray  #: results received per week (Figure 6b)
    results_useful: np.ndarray  #: useful results per week (Figure 6b)
    completion_week: float | None  #: fractional week the work ran out
    total_work: float

    @property
    def cumulative_work_fraction(self) -> np.ndarray:
        return np.minimum(np.cumsum(self.useful_reference_s) / self.total_work, 1.0)

    def metrics(self, first_week: int = 0, last_week: int | None = None) -> CampaignMetrics:
        """Aggregate metrics over ``[first_week, last_week)`` (Table 2)."""
        sl = slice(first_week, last_week)
        n_weeks = len(self.weeks[sl])
        if n_weeks == 0:
            raise ValueError("empty week range")
        return CampaignMetrics(
            span_seconds=n_weeks * SECONDS_PER_WEEK,
            consumed_cpu_s=float(self.consumed_cpu_s[sl].sum()),
            useful_reference_cpu_s=float(self.useful_reference_s[sl].sum()),
            results_disclosed=int(round(self.results_disclosed[sl].sum())),
            results_effective=int(round(self.results_useful[sl].sum())),
        )

    @property
    def overall_redundancy(self) -> float:
        return float(self.results_disclosed.sum() / self.results_useful.sum())

    @property
    def useful_fraction(self) -> float:
        return float(self.results_useful.sum() / self.results_disclosed.sum())


class FluidCampaign:
    """Full-scale analytic campaign integrator."""

    def __init__(
        self,
        campaign: CampaignPlan,
        mean_workunit_reference_s: float,
        share_schedule: ShareSchedule | None = None,
        population: WCGPopulationModel | None = None,
        speed_down_net: float = constants.SPEED_DOWN_NET,
        redundancy_quorum: float = REDUNDANCY_QUORUM,
        redundancy_bounds: float = REDUNDANCY_BOUNDS,
        validation_switch_week: float = 16.0,
        supply_scale: float = 1.0,
        supply: "callable | None" = None,
    ) -> None:
        if mean_workunit_reference_s <= 0:
            raise ValueError("mean workunit cost must be positive")
        self.campaign = campaign
        self.mean_wu_s = mean_workunit_reference_s
        self.share_schedule = (
            share_schedule if share_schedule is not None else hcmd_share_schedule()
        )
        self.population = (
            population if population is not None else WCGPopulationModel.calibrated()
        )
        self.speed_down_net = speed_down_net
        self.redundancy_quorum = redundancy_quorum
        self.redundancy_bounds = redundancy_bounds
        self.validation_switch_week = validation_switch_week
        if supply_scale <= 0:
            raise ValueError("supply_scale must be positive")
        #: scales the VFTP supply; use total_work(scaled)/total_work(full)
        #: to integrate a reduced campaign under a matched supply (the
        #: DES-vs-fluid cross-validation).
        self.supply_scale = supply_scale
        #: optional override: a callable week -> VFTP replacing the
        #: share x population supply (e.g. the constant-VFTP scenarios of
        #: the phase-II projection).
        self._supply_override = supply

    # -- components --------------------------------------------------------

    def supply_vftp(self, week: np.ndarray | float) -> np.ndarray | float:
        """Project VFTP at project week ``week`` (Figure 6a's curve)."""
        week_arr = np.asarray(week, dtype=np.float64)
        if self._supply_override is not None:
            out = self.supply_scale * np.asarray(
                self._supply_override(week_arr), dtype=np.float64
            )
            return out if out.ndim else float(out)
        day = constants.WCG_LAUNCH_TO_HCMD_DAYS + 7.0 * week_arr
        out = (
            self.supply_scale
            * np.asarray(self.share_schedule.share(week_arr))
            * np.asarray(self.population.vftp(day))
        )
        return out if out.ndim else float(out)

    def redundancy(self, week: float) -> float:
        """Redundancy factor of the validation regime active at ``week``."""
        if week < self.validation_switch_week:
            return self.redundancy_quorum
        return self.redundancy_bounds

    @property
    def mean_device_seconds_per_result(self) -> float:
        """Mean device time per result: workunit cost x net speed-down
        (the paper's ~13 h for ~3.3 h workunits)."""
        return self.mean_wu_s * self.speed_down_net

    # -- integration ---------------------------------------------------------

    def run(self, max_weeks: int = 60, substeps: int = 7) -> FluidResult:
        """Integrate until the work drains or ``max_weeks`` elapse."""
        total = self.campaign.total_work
        weeks = np.arange(max_weeks)
        vftp = np.zeros(max_weeks)
        consumed = np.zeros(max_weeks)
        useful = np.zeros(max_weeks)
        done = 0.0
        completion: float | None = None
        dt = SECONDS_PER_WEEK / substeps
        for w in range(max_weeks):
            week_consumed = 0.0
            week_useful = 0.0
            for s in range(substeps):
                if completion is not None:
                    break
                t_week = w + (s + 0.5) / substeps
                supply = float(self.supply_vftp(t_week))
                step_consumed = supply * dt
                rate = self.speed_down_net * self.redundancy(t_week)
                step_useful = step_consumed / rate
                if done + step_useful >= total:
                    # partial final step: only the needed fraction consumed
                    frac = (total - done) / step_useful
                    step_useful = total - done
                    step_consumed *= frac
                    completion = w + (s + frac) / substeps
                done += step_useful
                week_consumed += step_consumed
                week_useful += step_useful
            vftp[w] = week_consumed / SECONDS_PER_WEEK
            consumed[w] = week_consumed
            useful[w] = week_useful
            if completion is not None:
                vftp = vftp[: w + 1]
                consumed = consumed[: w + 1]
                useful = useful[: w + 1]
                weeks = weeks[: w + 1]
                break
        results_disclosed = consumed / self.mean_device_seconds_per_result
        results_useful = useful / self.mean_wu_s
        return FluidResult(
            weeks=weeks,
            vftp=vftp,
            consumed_cpu_s=consumed,
            useful_reference_s=useful,
            results_disclosed=results_disclosed,
            results_useful=results_useful,
            completion_week=completion,
            total_work=total,
        )

    def snapshot_at_week(self, result: FluidResult, week: float) -> ProgressionSnapshot:
        """Figure 7 progression snapshot at fractional project ``week``."""
        if week < 0:
            raise ValueError("week must be non-negative")
        full = int(np.floor(week))
        done = float(result.useful_reference_s[:full].sum())
        if full < len(result.useful_reference_s):
            done += (week - full) * float(result.useful_reference_s[full])
        return self.campaign.snapshot(done)

    def calibrate_switch_week(
        self, target_redundancy: float = constants.REDUNDANCY_FACTOR, max_weeks: int = 60
    ) -> float:
        """Find the validation switch week that yields the paper's overall
        redundancy factor (bisection; redundancy grows with the switch
        week because the quorum regime covers more of the campaign)."""
        lo, hi = 0.0, 26.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            self.validation_switch_week = mid
            overall = self.run(max_weeks=max_weeks).overall_redundancy
            if overall < target_redundancy:
                lo = mid
            else:
                hi = mid
        self.validation_switch_week = 0.5 * (lo + hi)
        return self.validation_switch_week
