"""Scientific post-processing of the cross-docking results.

The point of HCMD phase I is scientific: "screening a database containing
thousands of proteins for functional sites involved in binding to other
protein targets" and the "identification of protein interaction partners
[...] via cross-docking simulations" (Sacquin-Mora et al., the paper's
reference [7]).  The 123 GB of energy maps exist to be turned into a
partner-prediction matrix.

This subpackage implements that downstream analysis:

* :mod:`repro.science.energymatrix` — the 168 x 168 best-interaction-energy
  matrix: computed with the real docking engine for small sets, or
  synthesized with planted complexes at paper scale;
* :mod:`repro.science.partners` — stickiness normalization (double
  centering), partner ranking, and recovery metrics against the planted
  complexes (each library protein "is known to take part in at least one
  identified protein-protein complex", Section 2.1).
"""

from .energymatrix import CrossDockingMatrix, plant_complexes
from .partners import (
    PartnerPrediction,
    double_centered,
    predict_partners,
    recovery_rate,
)
from .sitemaps import SiteMaps

__all__ = [
    "CrossDockingMatrix",
    "plant_complexes",
    "PartnerPrediction",
    "double_centered",
    "predict_partners",
    "recovery_rate",
    "SiteMaps",
]
