"""Binding-site localization and focused docking.

The project's stated outputs are interaction *maps*: "the detection of
protein-protein interactions [...] exploits knowledge on the location of
binding sites.  [...] Later on, knowledge of binding sites will greatly
reduce the costs of the search" (Section 2) — and phase II plans to "cut
the number of docking points [...] by a factor of 100" (Section 7).

This module implements that mechanism end to end:

* **position-resolved energy maps**: for each (receptor, ligand) couple,
  the best energy per starting position — what a merged result file
  reduces to along the position axis;
* **consensus binding sites**: positions that bind *many* ligands
  anomalously well mark the receptor's interface (the core empirical
  finding of cross-docking studies: even non-partners prefer the true
  binding site);
* **focused docking**: prune each receptor's starting positions to the
  consensus site and re-derive the partner-prediction matrix from the
  surviving positions — quantifying how much of the signal a 10x or 100x
  point reduction keeps, and hence whether phase II's plan is sound.

Synthetic maps plant an interface patch (an angular cap on the starting
sphere) per protein; planted complexes bind extra strongly at the
receptor's patch.  Position geometry reuses the deterministic Fibonacci
enumeration of :mod:`repro.proteins.surface`, so "patch" means a spatially
coherent set of directions, exactly as on a real protein surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..proteins.surface import fibonacci_sphere
from ..rng import stream
from .energymatrix import CrossDockingMatrix, plant_complexes

__all__ = ["SiteMaps"]


@dataclass
class SiteMaps:
    """Position-resolved cross-docking energies.

    ``energies[i, j, k]`` is the best energy docking ligand ``j`` at
    receptor ``i``'s starting position ``k`` (all positions share the
    deterministic direction grid ``directions``; per-receptor radii do not
    matter for site analysis).
    """

    energies: np.ndarray  #: (n, n, m) float64
    #: (m, 3) unit vectors of the shared position grid; None after pruning
    #: (surviving positions differ per receptor, so no common grid exists)
    directions: np.ndarray | None
    #: (n, m) bool interface masks; None when no ground truth exists
    #: (maps extracted from real result data carry no planted sites)
    planted_sites: np.ndarray | None
    complexes: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        e = np.asarray(self.energies, dtype=np.float64)
        if e.ndim != 3 or e.shape[0] != e.shape[1]:
            raise ValueError(f"energies must be (n, n, m), got {e.shape}")
        if self.directions is not None and self.directions.shape != (e.shape[2], 3):
            raise ValueError("directions must match the position count")
        if (
            self.planted_sites is not None
            and self.planted_sites.shape != (e.shape[0], e.shape[2])
        ):
            raise ValueError("planted_sites must be (n, m)")
        self.energies = e

    @property
    def n_proteins(self) -> int:
        return self.energies.shape[0]

    @property
    def n_positions(self) -> int:
        return self.energies.shape[2]

    # -- construction ------------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        n_proteins: int,
        seed: int,
        n_positions: int = 150,
        site_half_angle_deg: float = 35.0,
        complexes: list[tuple[int, int]] | None = None,
        background_mean: float = -8.0,
        background_sigma: float = 1.5,
        site_depth: float = 3.5,
        complex_depth: float = 6.0,
        noise_sigma: float = 1.5,
    ) -> "SiteMaps":
        """Plant interfaces and complexes, then sample the maps.

        Energy structure per position: background + ``site_depth`` inside
        the receptor's interface patch (every ligand prefers the true
        site), an extra ``complex_depth`` there for the planted partner,
        and i.i.d. noise.
        """
        if n_proteins < 2:
            raise ValueError("need at least two proteins")
        if n_positions < 8:
            raise ValueError("need a usable position grid")
        rng = stream(seed, "site-maps")
        if complexes is None:
            complexes = plant_complexes(n_proteins, seed)
        directions = fibonacci_sphere(n_positions)

        # One angular-cap interface per protein, at a random direction.
        centers = rng.normal(size=(n_proteins, 3))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        cos_cut = np.cos(np.deg2rad(site_half_angle_deg))
        planted = (directions @ centers.T).T >= cos_cut  # (n, m)
        # Guarantee non-empty patches (tiny grids + unlucky caps).
        for i in range(n_proteins):
            if not planted[i].any():
                planted[i, int(np.argmax(directions @ centers[i]))] = True

        base = background_mean + rng.normal(
            0.0, background_sigma, size=(n_proteins, n_proteins)
        )
        energies = base[:, :, None] + rng.normal(
            0.0, noise_sigma, size=(n_proteins, n_proteins, n_positions)
        )
        energies -= site_depth * planted[:, None, :]
        for a, b in complexes:
            energies[a, b, planted[a]] -= complex_depth
            energies[b, a, planted[b]] -= complex_depth
        return cls(
            energies=energies,
            directions=directions,
            planted_sites=planted,
            complexes=list(complexes),
        )

    @classmethod
    def from_store(
        cls,
        store,
        names: list[str] | None = None,
        n_positions: int | None = None,
        complexes: list[tuple[int, int]] | None = None,
    ) -> "SiteMaps":
        """Extract position-resolved maps from a columnar result store.

        ``energies[i, j, k]`` becomes the minimum ``e_tot`` over the
        orientation rows at starting position ``k+1`` for the
        (receptor ``i``, ligand ``j``) couple — read as grouped column
        minima straight off the packed store, the reduction a merged
        result file undergoes along the position axis.  Real data carries
        no planted ground truth, so ``planted_sites`` (and ``directions``)
        are ``None``; the consensus-site analysis still applies with an
        explicit ``n_site``.
        """
        from ..store.pipeline import position_energy_maps

        maps, _resolved = position_energy_maps(
            store, names=names, n_positions=n_positions
        )
        return cls(
            energies=maps,
            directions=None,
            planted_sites=None,
            complexes=list(complexes or []),
        )

    # -- site analysis -------------------------------------------------------

    def consensus_scores(self, receptor: int) -> np.ndarray:
        """Per-position consensus score (lower = stronger site signal).

        Each ligand's map is rank-normalized before averaging so sticky
        ligands do not dominate the consensus.
        """
        maps = self.energies[receptor]  # (n_ligands, m)
        ranks = np.argsort(np.argsort(maps, axis=1), axis=1).astype(np.float64)
        ranks /= max(self.n_positions - 1, 1)
        # Exclude self-docking from the consensus.
        mask = np.ones(self.n_proteins, dtype=bool)
        mask[receptor] = False
        return ranks[mask].mean(axis=0)

    def predicted_site(self, receptor: int, n_site: int | None = None) -> np.ndarray:
        """Indices of the predicted interface positions (best consensus).

        ``n_site`` defaults to the planted patch size, making recovery a
        same-size overlap comparison.
        """
        if n_site is None:
            if self.planted_sites is None:
                raise ValueError(
                    "no planted ground truth: pass n_site explicitly"
                )
            n_site = int(self.planted_sites[receptor].sum())
        if not 1 <= n_site <= self.n_positions:
            raise ValueError("n_site out of range")
        scores = self.consensus_scores(receptor)
        return np.argsort(scores, kind="stable")[:n_site]

    def site_recovery(self) -> float:
        """Mean fraction of planted interface positions recovered."""
        if self.planted_sites is None:
            raise ValueError("no planted ground truth to recover")
        hits = []
        for i in range(self.n_proteins):
            predicted = self.predicted_site(i)
            truth = np.nonzero(self.planted_sites[i])[0]
            hits.append(len(np.intersect1d(predicted, truth)) / len(truth))
        return float(np.mean(hits))

    # -- focused docking ------------------------------------------------------

    def to_matrix(self) -> CrossDockingMatrix:
        """Best energy over all positions: the partner-prediction input."""
        return CrossDockingMatrix(
            energies=self.energies.min(axis=2), complexes=list(self.complexes)
        )

    def pruned(self, keep_fraction: float) -> "SiteMaps":
        """Focused docking: keep only the consensus-best positions.

        Models phase II's docking-point reduction: per receptor, the
        ``keep_fraction`` best-consensus positions survive; everything
        else is never docked again.  Returns a new, smaller map set.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        n_keep = max(1, int(round(keep_fraction * self.n_positions)))
        kept = np.empty((self.n_proteins, n_keep), dtype=np.int64)
        for i in range(self.n_proteins):
            kept[i] = self.predicted_site(i, n_site=n_keep)
        energies = np.take_along_axis(
            self.energies, kept[:, None, :], axis=2
        )
        planted = (
            np.take_along_axis(self.planted_sites, kept, axis=1)
            if self.planted_sites is not None
            else None
        )
        return SiteMaps(
            energies=energies,
            directions=None,
            planted_sites=planted,
            complexes=list(self.complexes),
        )

    def docking_cost_fraction(self, keep_fraction: float) -> float:
        """Compute cost of the focused search relative to the full grid
        (linear in the surviving positions — the paper's factor-100 lever)."""
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        n_keep = max(1, int(round(keep_fraction * self.n_positions)))
        return n_keep / self.n_positions
