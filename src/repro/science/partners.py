"""Partner prediction from the cross-docking matrix.

Raw best energies are dominated by *stickiness*: large or highly charged
proteins bind everything somewhat strongly, so ranking raw energies mostly
ranks protein size.  The standard fix (used by the cross-docking
literature the paper builds on) is a normalized interaction index; we
implement it as double centering — removing per-receptor and per-ligand
means — so that what remains is the couple-specific binding signal.

Metrics are evaluated against the planted complexes: recovery@k (is the
true partner among a protein's top-k predictions?) and the rank-based AUC
of complex couples against non-complex couples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .energymatrix import CrossDockingMatrix

__all__ = [
    "double_centered",
    "PartnerPrediction",
    "predict_partners",
    "recovery_rate",
    "ranking_auc",
]


def double_centered(energies: np.ndarray) -> np.ndarray:
    """Remove per-receptor and per-ligand means (grand mean restored).

    The result has (approximately) zero row and column means; strongly
    negative entries are couples binding *better than their proteins'
    general stickiness predicts* — the interaction index.
    """
    e = np.asarray(energies, dtype=np.float64)
    if e.ndim != 2 or e.shape[0] != e.shape[1]:
        raise ValueError("energies must be a square matrix")
    row = e.mean(axis=1, keepdims=True)
    col = e.mean(axis=0, keepdims=True)
    grand = e.mean()
    return e - row - col + grand


@dataclass(frozen=True)
class PartnerPrediction:
    """Ranked partner lists for every protein."""

    scores: np.ndarray  #: (n, n) couple scores, lower = stronger
    ranking: np.ndarray  #: (n, n-1) partner indices, best first

    @property
    def n_proteins(self) -> int:
        return self.scores.shape[0]

    def top_partners(self, protein: int, k: int = 5) -> list[int]:
        """The ``k`` best-scoring partners of ``protein``."""
        if not 0 <= protein < self.n_proteins:
            raise IndexError(f"protein index {protein} out of range")
        return [int(p) for p in self.ranking[protein, :k]]

    def rank_of(self, protein: int, partner: int) -> int:
        """1-based rank of ``partner`` in ``protein``'s list."""
        row = self.ranking[protein]
        where = np.nonzero(row == partner)[0]
        if where.size == 0:
            raise ValueError(f"{partner} is not a candidate partner of {protein}")
        return int(where[0]) + 1


def predict_partners(
    matrix: CrossDockingMatrix, normalize: bool = True
) -> PartnerPrediction:
    """Rank candidate partners for every protein.

    Scores are the symmetrized couple energies, double-centered when
    ``normalize`` is set (the recommended pipeline; ``normalize=False``
    reproduces the naive raw-energy ranking the ablation compares against).
    Self-couples are excluded from the rankings.
    """
    scores = matrix.symmetrized()
    if normalize:
        scores = double_centered(scores)
    n = scores.shape[0]
    masked = scores.copy()
    np.fill_diagonal(masked, np.inf)
    order = np.argsort(masked, axis=1, kind="stable")
    return PartnerPrediction(scores=scores, ranking=order[:, : n - 1])


def recovery_rate(
    prediction: PartnerPrediction,
    complexes: list[tuple[int, int]],
    k: int = 1,
) -> float:
    """Fraction of complex memberships recovered in the top-``k``.

    Each planted pair is tested in both directions (does ``a`` rank ``b``
    in its top-k, and vice versa).
    """
    if not complexes:
        raise ValueError("no complexes to evaluate")
    if k < 1:
        raise ValueError("k must be at least 1")
    hits = 0
    for a, b in complexes:
        hits += int(b in prediction.top_partners(a, k))
        hits += int(a in prediction.top_partners(b, k))
    return hits / (2 * len(complexes))


def ranking_auc(
    prediction: PartnerPrediction, complexes: list[tuple[int, int]]
) -> float:
    """AUC of complex couples vs all other couples under the score.

    Probability that a random true-complex couple scores more negative
    than a random non-complex couple (1.0 = perfect separation).
    """
    if not complexes:
        raise ValueError("no complexes to evaluate")
    n = prediction.n_proteins
    is_complex = np.zeros((n, n), dtype=bool)
    for a, b in complexes:
        is_complex[a, b] = is_complex[b, a] = True
    off_diag = ~np.eye(n, dtype=bool)
    pos = prediction.scores[is_complex & off_diag]
    neg = prediction.scores[~is_complex & off_diag]
    # Rank-based (Mann-Whitney) AUC, linear-time via sorting.
    combined = np.concatenate([pos, neg])
    ranks = np.empty(len(combined))
    order = np.argsort(combined, kind="stable")
    ranks[order] = np.arange(1, len(combined) + 1)
    pos_ranks = ranks[: len(pos)]
    auc = (pos_ranks.sum() - len(pos) * (len(pos) + 1) / 2) / (
        len(pos) * len(neg)
    )
    # Lower scores are better, so invert the orientation.
    return float(1.0 - auc)
