"""The cross-docking energy matrix.

``E[i, j]`` is the best (most negative) interaction energy found when
docking ligand ``j`` against receptor ``i`` over the full starting grid —
the quantity each merged result file reduces to, and the raw material of
partner prediction.

Two constructors:

* :meth:`CrossDockingMatrix.from_docking` runs the real MAXDo engine over
  every couple of a (small) library — the ground-truth path, used by tests
  and examples;
* :meth:`CrossDockingMatrix.synthetic` generates a paper-scale matrix with
  *planted complexes*: designated couples receive a binding-energy boost
  on top of a stickiness-structured background, mirroring the library's
  design ("all known to take part in at least one identified
  protein-protein complex").  Recovery of the planted couples is then a
  measurable benchmark for the prediction pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..proteins.library import ProteinLibrary
from ..rng import stream

__all__ = ["CrossDockingMatrix", "plant_complexes"]


def plant_complexes(
    n_proteins: int, seed: int, pairs_per_protein: float = 0.5
) -> list[tuple[int, int]]:
    """Designate known complexes: a seeded partition into binding pairs.

    Every protein appears in exactly one pair (odd protein counts leave
    one out), matching the phase-I selection criterion.  Pairs are
    unordered ``(min, max)`` index tuples.
    """
    if n_proteins < 2:
        raise ValueError("need at least two proteins to form a complex")
    rng = stream(seed, "planted-complexes")
    order = rng.permutation(n_proteins)
    pairs = []
    for k in range(0, n_proteins - 1, 2):
        a, b = int(order[k]), int(order[k + 1])
        pairs.append((min(a, b), max(a, b)))
    return pairs


@dataclass
class CrossDockingMatrix:
    """Best interaction energies for every ordered couple (kcal/mol)."""

    energies: np.ndarray  #: (n, n); entry [i, j] = receptor i, ligand j
    complexes: list[tuple[int, int]] = field(default_factory=list)
    #: protein names behind the matrix axes (set by :meth:`from_store`)
    names: list[str] | None = None

    def __post_init__(self) -> None:
        e = np.asarray(self.energies, dtype=np.float64)
        if e.ndim != 2 or e.shape[0] != e.shape[1]:
            raise ValueError(f"energy matrix must be square, got {e.shape}")
        self.energies = e

    @property
    def n_proteins(self) -> int:
        return self.energies.shape[0]

    def symmetrized(self) -> np.ndarray:
        """Couple-level binding score: best of the two docking directions.

        MAXDo is asymmetric; a couple binds if either direction finds a
        strong minimum.
        """
        return np.minimum(self.energies, self.energies.T)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_store(
        cls,
        store,
        names: list[str] | None = None,
        complexes: list[tuple[int, int]] | None = None,
    ) -> "CrossDockingMatrix":
        """Reduce a columnar result store to the energy matrix.

        ``store`` is a :class:`repro.store.ResultStore` (or a store file
        path); the matrix entry for each (receptor, ligand) couple is the
        minimum ``e_tot`` over the couple's rows, read straight off the
        packed columns — no text parse, no per-line loop.  Couples absent
        from the store stay ``+inf``.  ``names`` fixes the protein order
        (default: first-seen order in the store).
        """
        from ..store.pipeline import energy_matrix

        energies, resolved = energy_matrix(store, names=names)
        matrix = cls(energies=energies, complexes=list(complexes or []))
        matrix.names = resolved
        return matrix

    @classmethod
    def from_docking(
        cls,
        library: ProteinLibrary,
        nsep_per_couple: int = 4,
        n_couples: int = 6,
        n_gamma: int = 3,
        minimize: bool = True,
        max_iterations: int = 25,
        complexes: list[tuple[int, int]] | None = None,
    ) -> "CrossDockingMatrix":
        """Dock every ordered couple with the real engine (small sets!).

        ``nsep_per_couple`` caps the starting positions per couple so the
        full matrix stays tractable; the energy map's minimum over the
        sampled grid is the matrix entry.
        """
        from ..maxdo.docking import dock_couple

        n = len(library)
        energies = np.empty((n, n))
        for i in range(n):
            receptor = library.protein(i)
            total = int(library.nsep[i])
            nsep = min(nsep_per_couple, total)
            for j in range(n):
                result = dock_couple(
                    receptor,
                    library.protein(j),
                    isep_start=1,
                    nsep=nsep,
                    total_nsep=total,
                    n_couples=n_couples,
                    n_gamma=n_gamma,
                    minimize=minimize,
                    max_iterations=max_iterations,
                )
                energies[i, j] = float(result.e_total.min())
        return cls(energies=energies, complexes=list(complexes or []))

    @classmethod
    def synthetic(
        cls,
        library: ProteinLibrary,
        seed: int | None = None,
        complexes: list[tuple[int, int]] | None = None,
        background_mean: float = -12.0,
        stickiness_sigma: float = 3.0,
        complex_boost: float = 9.0,
        noise_sigma: float = 2.5,
    ) -> "CrossDockingMatrix":
        """A paper-scale matrix with planted complexes.

        Structure (all energies negative, lower = stronger):

        * a per-protein *stickiness* (large, charged surfaces bind
          everything somewhat better — the classic cross-docking
          confounder) entering additively from both sides;
        * a size term: more bead contacts, deeper minima;
        * the planted complexes get ``complex_boost`` extra binding in
          both docking directions;
        * i.i.d. noise on each ordered couple.
        """
        if seed is None:
            seed = library.seed
        rng = stream(seed, "cross-docking-matrix")
        n = len(library)
        if complexes is None:
            complexes = plant_complexes(n, seed)
        stickiness = rng.normal(0.0, stickiness_sigma, size=n)
        size_term = 2.0 * np.log(library.size_scale())
        base = (
            background_mean
            - stickiness[:, None]
            - stickiness[None, :]
            - size_term[:, None]
            - size_term[None, :]
        )
        energies = base + rng.normal(0.0, noise_sigma, size=(n, n))
        for a, b in complexes:
            energies[a, b] -= complex_boost * float(rng.normal(1.0, 0.15))
            energies[b, a] -= complex_boost * float(rng.normal(1.0, 0.15))
        # Every couple finds at least a weak minimum somewhere on the grid
        # (the map's best entry is never repulsive).
        return cls(energies=np.minimum(energies, -0.5), complexes=list(complexes))
