"""The packed columnar result store: on-disk format and segment model.

The paper's campaign produced "123 Gb of text files (45 Gb compressed) and
there are 168^2 files" (Section 5.2) that every post-processing stage —
check, merge, matrix reduction — had to re-parse line by line.  This module
replaces the text files as the *canonical* result format with a packed
columnar layout that the whole pipeline can read as numpy arrays:

* **fixed-point packed columns.**  The text format is itself fixed-point
  (``%10.3f`` coordinates, ``%8.4f`` angles, ``%13.4f`` energies), so every
  text-representable value is stored *exactly* as a scaled integer:
  coordinates in milli-Angstrom (``int32``), angles and energies in units
  of 1e-4 (``int32`` / ``int64``), indices in ``int32``/``int16``.  One row
  costs :data:`ROW_BYTES` = 56 bytes against the text format's 118 — a
  2.1x reduction *before* general-purpose compression, with O(1) column
  access instead of a parse.
* **per-couple segments.**  A store file is a magic + version header
  followed by self-delimiting segments; each segment carries the same
  identity a text result file's ``#`` header does (receptor, ligand, isep
  slice) plus a CRC32 of its payload.  Appending a segment never rewrites
  earlier bytes, which is what the checkpointed producer
  (:class:`repro.maxdo.docking.MaxDoRun`) needs: one segment per committed
  starting position, rollback = truncate at a segment boundary.
* **lossless text conversion.**  ``decode(encode(v)) == v`` bit-for-bit
  for every value parsed from a result file, so text -> columnar -> text
  reproduces the original bytes (see :mod:`repro.store.convert` and the
  pinned tests).

Non-finite values (corrupted uploads do contain them) are carried through
as reserved sentinel codes so the range checks reach the same verdicts on
either representation.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..maxdo.resultfile import RESULT_DTYPE, ResultHeader, ResultTable

__all__ = [
    "PACKED_DTYPE",
    "ROW_BYTES",
    "SEGMENT_OVERHEAD_BYTES",
    "STORE_MAGIC",
    "STORE_VERSION",
    "ColumnarSegment",
    "ResultStore",
    "StoreWriter",
    "pack_records",
    "unpack_records",
    "write_store",
    "iter_segments",
    "read_store",
    "rollback_partial_store",
]

#: magic prefix of every store file (8 bytes)
STORE_MAGIC = b"RPRCOLS\x01"
#: on-disk format version (bump on any layout change)
STORE_VERSION = 1

_SEGMENT_MAGIC = b"SEG1"

#: fixed-point scales matching the text format's precision exactly
_COORD_SCALE = 1_000  # %10.3f
_ANGLE_SCALE = 10_000  # %8.4f
_ENERGY_SCALE = 10_000  # %13.4f

#: packed column layout (little-endian on disk); field order is the
#: canonical column order of the text format
PACKED_DTYPE = np.dtype(
    [
        ("isep", np.int32),
        ("irot", np.int16),
        ("igamma", np.int16),
        ("x", np.int32),
        ("y", np.int32),
        ("z", np.int32),
        ("alpha", np.int32),
        ("beta", np.int32),
        ("gamma", np.int32),
        ("e_lj", np.int64),
        ("e_elec", np.int64),
        ("e_tot", np.int64),
    ]
)

#: bytes per packed row (the text format spends BYTES_PER_LINE = 118)
ROW_BYTES = PACKED_DTYPE.itemsize

#: typical per-segment framing cost (magic + lengths + meta JSON + crc),
#: used by the dataset volume model; actual meta is close to this
SEGMENT_OVERHEAD_BYTES = 256

_SCALES = {
    "x": _COORD_SCALE,
    "y": _COORD_SCALE,
    "z": _COORD_SCALE,
    "alpha": _ANGLE_SCALE,
    "beta": _ANGLE_SCALE,
    "gamma": _ANGLE_SCALE,
    "e_lj": _ENERGY_SCALE,
    "e_elec": _ENERGY_SCALE,
    "e_tot": _ENERGY_SCALE,
}
_INDEX_FIELDS = ("isep", "irot", "igamma")

# Reserved sentinel codes at the bottom of each integer range carry the
# IEEE specials through the fixed-point packing (corrupted uploads do
# contain NaN; check 3 must see them on either representation).
_SENTINEL_NAN = 0
_SENTINEL_PINF = 1
_SENTINEL_NINF = 2
_N_SENTINELS = 3


def _int_bounds(dtype: np.dtype) -> tuple[int, int]:
    info = np.iinfo(dtype)
    return info.min, info.max


def pack_records(records: np.ndarray) -> np.ndarray:
    """Encode a float64 record array (:data:`RESULT_DTYPE`) as packed columns.

    Exact for every text-representable value; values that came from
    anywhere else are quantized to the text format's precision (the same
    rounding ``format_record`` would apply).  Raises ``ValueError`` when a
    finite value does not fit the packed column's range — such a value
    could not appear on a well-formed text line either.
    """
    records = np.asarray(records)
    packed = np.empty(len(records), dtype=PACKED_DTYPE)
    for name in _INDEX_FIELDS:
        lo, hi = _int_bounds(PACKED_DTYPE[name])
        col = records[name]
        if len(col) and (col.min() < lo or col.max() > hi):
            raise ValueError(f"column {name!r} does not fit {PACKED_DTYPE[name]}")
        packed[name] = col
    for name, scale in _SCALES.items():
        col = np.asarray(records[name], dtype=np.float64)
        out = np.empty(len(col), dtype=np.int64)
        finite = np.isfinite(col)
        scaled = np.round(col[finite] * scale)
        lo, hi = _int_bounds(PACKED_DTYPE[name])
        lo += _N_SENTINELS  # sentinel codes live at the bottom of the range
        if len(scaled) and (scaled.min() < lo or scaled.max() > hi):
            raise ValueError(
                f"column {name!r} has values outside the packed range "
                f"[{lo / scale:g}, {hi / scale:g}]"
            )
        out[finite] = scaled.astype(np.int64)
        if not finite.all():
            bad = col[~finite]
            codes = np.full(len(bad), _SENTINEL_NAN, dtype=np.int64)
            codes[np.isposinf(bad)] = _SENTINEL_PINF
            codes[np.isneginf(bad)] = _SENTINEL_NINF
            out[~finite] = _int_bounds(PACKED_DTYPE[name])[0] + codes
        packed[name] = out
    return packed


def _decode_column(raw: np.ndarray, name: str) -> np.ndarray:
    """Decode one packed fixed-point column to float64."""
    raw = np.asarray(raw, dtype=np.int64)
    scale = _SCALES[name]
    lo = _int_bounds(PACKED_DTYPE[name])[0]
    col = raw / scale
    special = raw < lo + _N_SENTINELS
    if special.any():
        code = raw[special] - lo
        values = np.full(len(code), np.nan)
        values[code == _SENTINEL_PINF] = np.inf
        values[code == _SENTINEL_NINF] = -np.inf
        col[special] = values
    return col


def unpack_records(packed: np.ndarray) -> np.ndarray:
    """Decode packed columns back to the float64 :data:`RESULT_DTYPE`.

    The inverse of :func:`pack_records` on its image: bit-identical float64
    values for everything that round-tripped through text.
    """
    packed = np.asarray(packed)
    records = np.empty(len(packed), dtype=RESULT_DTYPE)
    for name in _INDEX_FIELDS:
        records[name] = packed[name]
    for name in _SCALES:
        records[name] = _decode_column(packed[name], name)
    return records


@dataclass
class ColumnarSegment:
    """One result slice in packed columnar form.

    The columnar twin of a text result file: the same
    :class:`~repro.maxdo.resultfile.ResultHeader` identity plus a packed
    record block.  ``source`` remembers the file name the segment was
    converted from (or should convert back to), so a store round-trips a
    whole result directory without renaming anything.  ``campaign``
    optionally names the producing campaign on a multi-campaign grid
    (:mod:`repro.multi`); untagged segments encode byte-identically to
    the pre-tag format, so single-campaign stores are unchanged.
    """

    header: ResultHeader
    packed: np.ndarray  #: packed rows, dtype :data:`PACKED_DTYPE`
    source: str | None = None
    campaign: str | None = None

    def __post_init__(self) -> None:
        self.packed = np.ascontiguousarray(self.packed)
        if self.packed.dtype != PACKED_DTYPE:
            raise ValueError(
                f"segment rows must use PACKED_DTYPE, got {self.packed.dtype}"
            )

    def __len__(self) -> int:
        return len(self.packed)

    @property
    def records(self) -> np.ndarray:
        """The decoded float64 record array (computed on access)."""
        return unpack_records(self.packed)

    def column(self, name: str) -> np.ndarray:
        """One decoded column as float64 (indices as int64), without
        materializing the other eleven."""
        if name in _INDEX_FIELDS:
            return np.asarray(self.packed[name], dtype=np.int64)
        return _decode_column(self.packed[name], name)

    def table(self) -> ResultTable:
        """View as the parsed-text interface the legacy pipeline consumes."""
        return ResultTable(header=self.header, records=self.records)

    @classmethod
    def from_records(
        cls,
        header: ResultHeader,
        records: np.ndarray,
        source: str | None = None,
        campaign: str | None = None,
    ) -> "ColumnarSegment":
        """Pack a float64 record array under ``header``."""
        return cls(
            header=header,
            packed=pack_records(records),
            source=source,
            campaign=campaign,
        )


def _segment_meta(segment: ColumnarSegment) -> dict:
    h = segment.header
    meta = {
        "receptor": h.receptor,
        "ligand": h.ligand,
        "isep_start": h.isep_start,
        "nsep": h.nsep,
        "n_couples": h.n_couples,
        "n_gamma": h.n_gamma,
        "source": segment.source,
    }
    # Additive: the key is only present when set, so untagged segments
    # keep the exact pre-tag byte layout (tested).
    if segment.campaign is not None:
        meta["campaign"] = segment.campaign
    return meta


def _header_from_meta(meta: dict) -> ResultHeader:
    return ResultHeader(
        receptor=meta["receptor"],
        ligand=meta["ligand"],
        isep_start=int(meta["isep_start"]),
        nsep=int(meta["nsep"]),
        n_couples=int(meta["n_couples"]),
        n_gamma=int(meta["n_gamma"]),
    )


def _encode_segment(segment: ColumnarSegment) -> bytes:
    import json

    meta = json.dumps(_segment_meta(segment), sort_keys=True).encode("ascii")
    buf = io.BytesIO()
    n_rows = len(segment.packed)
    payload = io.BytesIO()
    for name in PACKED_DTYPE.names:
        column = np.ascontiguousarray(segment.packed[name])
        payload.write(column.astype(column.dtype.newbyteorder("<")).tobytes())
    payload_bytes = payload.getvalue()
    buf.write(_SEGMENT_MAGIC)
    buf.write(len(meta).to_bytes(4, "little"))
    buf.write(meta)
    buf.write(n_rows.to_bytes(8, "little"))
    buf.write(payload_bytes)
    buf.write(zlib.crc32(payload_bytes).to_bytes(4, "little"))
    return buf.getvalue()


def _decode_segment(fh, path: Path) -> ColumnarSegment | None:
    import json

    magic = fh.read(4)
    if not magic:
        return None
    if magic != _SEGMENT_MAGIC:
        raise ValueError(f"{path.name}: corrupt segment magic {magic!r}")
    meta_len = int.from_bytes(_read_exact(fh, path, 4), "little")
    meta = json.loads(_read_exact(fh, path, meta_len).decode("ascii"))
    n_rows = int.from_bytes(_read_exact(fh, path, 8), "little")
    packed = np.empty(n_rows, dtype=PACKED_DTYPE)
    payload = _read_exact(
        fh, path, n_rows * ROW_BYTES
    )
    offset = 0
    for name in PACKED_DTYPE.names:
        width = PACKED_DTYPE[name].itemsize * n_rows
        packed[name] = np.frombuffer(
            payload, dtype=PACKED_DTYPE[name].newbyteorder("<"),
            count=n_rows, offset=offset,
        )
        offset += width
    crc = int.from_bytes(_read_exact(fh, path, 4), "little")
    if crc != zlib.crc32(payload):
        raise ValueError(f"{path.name}: segment payload CRC mismatch")
    return ColumnarSegment(
        header=_header_from_meta(meta),
        packed=packed,
        source=meta.get("source"),
        campaign=meta.get("campaign"),
    )


def _read_exact(fh, path: Path, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise ValueError(f"{path.name}: truncated store file")
    return data


class StoreWriter:
    """Append-friendly store writer.

    Opens (or creates) a store file and appends whole segments; existing
    bytes are never rewritten, so a crash can at worst leave one trailing
    partial segment (detected by the CRC/length framing on read).  Usable
    as a context manager.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = self.path.open("ab")
        if not exists:
            self._fh.write(STORE_MAGIC)
            self._fh.write(STORE_VERSION.to_bytes(4, "little"))
        self.n_segments_written = 0

    def append(self, segment: ColumnarSegment) -> int:
        """Append one segment; returns the bytes written."""
        blob = _encode_segment(segment)
        self._fh.write(blob)
        self.n_segments_written += 1
        return len(blob)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_store(path: Path | str, segments: Iterable[ColumnarSegment]) -> int:
    """Write a store file from scratch; returns the segment count."""
    path = Path(path)
    if path.exists():
        path.unlink()
    with StoreWriter(path) as writer:
        for segment in segments:
            writer.append(segment)
        return writer.n_segments_written


def iter_segments(path: Path | str) -> Iterator[ColumnarSegment]:
    """Stream the segments of a store file in on-disk order."""
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(STORE_MAGIC))
        if magic != STORE_MAGIC:
            raise ValueError(f"{path.name}: not a repro result store")
        version = int.from_bytes(_read_exact(fh, path, 4), "little")
        if version != STORE_VERSION:
            raise ValueError(
                f"{path.name}: store version {version} unsupported "
                f"(expected {STORE_VERSION})"
            )
        while True:
            segment = _decode_segment(fh, path)
            if segment is None:
                return
            yield segment


@dataclass
class ResultStore:
    """A parsed store file: its segments, with couple-level grouping."""

    path: Path
    segments: list[ColumnarSegment] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def n_rows(self) -> int:
        return sum(len(s) for s in self.segments)

    def couples(self) -> list[tuple[str, str]]:
        """Distinct (receptor, ligand) couples, in first-seen order."""
        seen: dict[tuple[str, str], None] = {}
        for s in self.segments:
            seen.setdefault((s.header.receptor, s.header.ligand), None)
        return list(seen)

    def by_couple(self) -> dict[tuple[str, str], list[ColumnarSegment]]:
        """Segments grouped per (receptor, ligand), in on-disk order."""
        groups: dict[tuple[str, str], list[ColumnarSegment]] = {}
        for s in self.segments:
            groups.setdefault((s.header.receptor, s.header.ligand), []).append(s)
        return groups

    def by_campaign(self) -> dict[str | None, list[ColumnarSegment]]:
        """Segments grouped per producing campaign, in on-disk order.

        Untagged segments (single-campaign stores, pre-tag files) group
        under ``None``, so mixed stores split cleanly.
        """
        groups: dict[str | None, list[ColumnarSegment]] = {}
        for s in self.segments:
            groups.setdefault(s.campaign, []).append(s)
        return groups


def read_store(path: Path | str) -> ResultStore:
    """Read a whole store file into memory."""
    path = Path(path)
    return ResultStore(path=path, segments=list(iter_segments(path)))


def rollback_partial_store(path: Path | str, rows_committed: int) -> int:
    """Truncate a partial store to the last checkpointed row boundary.

    The columnar twin of
    :func:`repro.maxdo.checkpoint.rollback_partial_results`: the producer
    appends one segment per committed starting position, so a kill can
    only leave whole uncommitted segments (or one torn trailing segment)
    past the boundary.  Keeps the longest clean segment prefix holding
    exactly ``rows_committed`` rows and truncates there; returns the
    number of rows dropped.
    """
    path = Path(path)
    kept_rows = 0
    offset = len(STORE_MAGIC) + 4
    dropped = 0
    with path.open("rb") as fh:
        magic = fh.read(len(STORE_MAGIC))
        if magic != STORE_MAGIC:
            raise ValueError(f"{path.name}: not a repro result store")
        int.from_bytes(_read_exact(fh, path, 4), "little")
        while kept_rows < rows_committed:
            try:
                segment = _decode_segment(fh, path)
            except ValueError:
                segment = None
            if segment is None:
                raise ValueError(
                    f"partial store has {kept_rows} committed rows, "
                    f"checkpoint claims {rows_committed}"
                )
            kept_rows += len(segment)
            offset = fh.tell()
        if kept_rows != rows_committed:
            raise ValueError(
                f"checkpoint boundary {rows_committed} does not align with "
                f"a segment boundary (reached {kept_rows})"
            )
        # Count what the truncation drops (torn trailing bytes count as 0).
        while True:
            try:
                segment = _decode_segment(fh, path)
            except ValueError:
                break
            if segment is None:
                break
            dropped += len(segment)
        end = fh.tell()
    if end != offset or path.stat().st_size != offset:
        with path.open("r+b") as fh:
            fh.truncate(offset)
    return dropped
