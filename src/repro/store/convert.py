"""Lossless text <-> columnar conversion.

The conversion contract (pinned by ``tests/test_store.py`` and the
property suite):

* **text -> columnar -> text is byte-identical** for every file written by
  :func:`repro.maxdo.resultfile.write_results` — the text format is
  fixed-point, the packed columns store those fixed-point values exactly,
  and :func:`segment_to_text` re-renders with the very same formats
  ``format_record`` uses.
* **columnar -> text -> columnar is byte-identical** for every segment
  whose values are text-representable (which everything converted *from*
  text is by construction).

A store file remembers each segment's original file name (``source``), so
converting a result directory to one store file and back reproduces the
directory exactly — names, headers, bytes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable

import numpy as np

from ..maxdo.resultfile import (
    RESULT_DTYPE,
    ResultHeader,
    read_results,
)
from .format import ColumnarSegment, StoreWriter, iter_segments, pack_records

__all__ = [
    "LINE_FORMAT",
    "segment_from_text",
    "segment_to_text",
    "render_lines",
    "text_to_store",
    "store_to_text",
    "header_only_segment",
]

#: printf twin of ``format_record``'s field formats (one data line)
LINE_FORMAT = (
    "%7d %3d %3d %10.3f %10.3f %10.3f "
    "%8.4f %8.4f %8.4f %13.4f %13.4f %13.4f"
)


def segment_from_text(path: Path | str) -> ColumnarSegment:
    """Parse one text result file into a packed segment.

    Keeps the file name as the segment ``source`` so a later
    :func:`store_to_text` can reproduce the directory layout.
    """
    path = Path(path)
    table = read_results(path)
    return ColumnarSegment(
        header=table.header,
        packed=pack_records(table.records),
        source=path.name,
    )


def render_lines(records: np.ndarray) -> list[str]:
    """Format decoded records as result-file data lines (no newlines).

    Byte-identical to mapping ``format_record`` over the rows — the
    ``%``-operator applies the same fixed formats — but in one pass over a
    plain float matrix instead of a Python f-string per row.
    """
    records = np.asarray(records)
    n = len(records)
    if n == 0:
        return []
    rows = np.empty((n, len(RESULT_DTYPE.names)), dtype=np.float64)
    for k, name in enumerate(RESULT_DTYPE.names):
        rows[:, k] = records[name]
    # ``%d`` truncates floats toward zero; the index columns hold exact
    # integers, so the rendering matches ``format_record`` bit for bit.
    return [LINE_FORMAT % tuple(r) for r in rows]


def segment_to_text(segment: ColumnarSegment, out_path: Path | str) -> int:
    """Write one segment as a text result file; returns the line count.

    Produces exactly the bytes ``write_results`` + ``format_record`` would
    for the same header and records.
    """
    out_path = Path(out_path)
    lines = render_lines(segment.records)
    buf = io.StringIO()
    for line in segment.header.lines():
        buf.write(line + "\n")
    for line in lines:
        buf.write(line + "\n")
    out_path.write_text(buf.getvalue(), encoding="ascii")
    return len(lines)


def text_to_store(
    text_paths: Iterable[Path | str], store_path: Path | str
) -> int:
    """Convert text result files into one columnar store (one segment per
    file, in the given order); returns the segment count."""
    store_path = Path(store_path)
    if store_path.exists():
        store_path.unlink()
    count = 0
    with StoreWriter(store_path) as writer:
        for path in text_paths:
            writer.append(segment_from_text(path))
            count += 1
    return count


def store_to_text(store_path: Path | str, out_dir: Path | str) -> list[Path]:
    """Expand a store back into text result files under ``out_dir``.

    Segment ``source`` names are reused; segments without one are named
    ``{receptor}_{ligand}_{isep_start}.result``.  Returns the written paths.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for segment in iter_segments(store_path):
        h = segment.header
        name = segment.source or f"{h.receptor}_{h.ligand}_{h.isep_start}.result"
        path = out_dir / name
        segment_to_text(segment, path)
        written.append(path)
    return written


def header_only_segment(header: ResultHeader, source: str | None = None) -> ColumnarSegment:
    """An empty segment carrying just an identity (the columnar twin of a
    freshly opened partial result file)."""
    return ColumnarSegment(
        header=header,
        packed=pack_records(np.zeros(0, dtype=RESULT_DTYPE)),
        source=source,
    )
