"""The vectorized post-processing pipeline over the columnar store.

Re-implements Section 5.2's check -> merge -> reduce chain as whole-column
array passes:

* **checks 2/3** (:func:`check_segment` / :func:`check_store`): line-count
  and value-range validation straight off the decoded columns — verdicts
  identical to :mod:`repro.validation.checks` over the equivalent text
  files, without a text parse;
* **merge** (:func:`merge_segments` / :func:`merge_couple_store`):
  slice-tiling validation plus a packed-column concatenation + lexsort —
  no text line is ever materialized, and the merged energies are
  bit-identical to the text path's;
* **reduction** (:func:`energy_matrix` / :func:`position_energy_maps`):
  the cross-docking matrix and the position-resolved site maps read as
  grouped column minima (`np.minimum.at` over integer keys), feeding
  :class:`repro.science.CrossDockingMatrix` and
  :class:`repro.science.SiteMaps` directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..maxdo.resultfile import ResultHeader, expected_line_count
from ..validation.checks import CheckReport, ValueRanges
from .format import (
    ColumnarSegment,
    ResultStore,
    iter_segments,
    read_store,
    write_store,
)

__all__ = [
    "check_segment",
    "check_store",
    "merge_segments",
    "merge_couple_store",
    "energy_matrix",
    "position_energy_maps",
]


def _segment_label(segment: ColumnarSegment, index: int) -> str:
    if segment.source:
        return segment.source
    h = segment.header
    return f"segment[{index}] {h.receptor}-{h.ligand}@{h.isep_start}"


def check_segment(
    segment: ColumnarSegment,
    ranges: ValueRanges | None = None,
    name: str | None = None,
) -> CheckReport:
    """Checks 2 and 3 (line count, value ranges) on one segment.

    Same verdicts as :func:`repro.validation.checks.check_result_file` on
    the equivalent text file: the decoded columns are bit-identical to what
    the text parser would produce, and the same
    :meth:`ValueRanges.violations` rules run over them.
    """
    ranges = ranges if ranges is not None else ValueRanges()
    name = name or _segment_label(segment, 0)
    report = CheckReport(files_expected=1, files_found=1)
    expected = expected_line_count(
        segment.header.nsep, segment.header.n_couples
    )
    if len(segment) != expected:
        report.files_with_bad_line_count.append(name)
    problems = ranges.violations(segment.table())
    if problems:
        report.files_with_bad_values[name] = problems
    return report


def check_store(
    store: ResultStore | Path | str,
    files_expected: int | None = None,
    ranges: ValueRanges | None = None,
) -> CheckReport:
    """All three checks over a whole store (check 1 counts segments)."""
    if not isinstance(store, ResultStore):
        store = read_store(store)
    ranges = ranges if ranges is not None else ValueRanges()
    expected = files_expected if files_expected is not None else len(store)
    report = CheckReport(files_expected=expected, files_found=len(store))
    for i, segment in enumerate(store.segments):
        sub = check_segment(segment, ranges, name=_segment_label(segment, i))
        report.files_with_bad_line_count.extend(sub.files_with_bad_line_count)
        report.files_with_bad_values.update(sub.files_with_bad_values)
    return report


def merge_segments(segments: Sequence[ColumnarSegment]) -> ColumnarSegment:
    """Merge one couple's workunit segments into a single segment.

    The columnar twin of
    :func:`repro.validation.merge.merge_couple_results`: segments must
    belong to one couple and tile ``[1..Nsep]`` exactly; gap/overlap/
    duplicate-slice errors name the offending chunk.  The merged rows are
    the packed-column concatenation lexsorted by ``(isep, irot, igamma)``
    — integer keys, exact, so the merged energies are bit-identical to
    the text path's.
    """
    if not segments:
        raise ValueError("nothing to merge")
    first = segments[0].header
    for i, s in enumerate(segments):
        h = s.header
        if (h.receptor, h.ligand) != (first.receptor, first.ligand):
            raise ValueError(
                f"cannot merge couples {h.receptor}-{h.ligand} "
                f"({_segment_label(s, i)}) and {first.receptor}-{first.ligand} "
                f"({_segment_label(segments[0], 0)})"
            )
    slices = sorted(
        (s.header.isep_start, s.header.nsep, _segment_label(s, i))
        for i, s in enumerate(segments)
    )
    cursor = 1
    for start, nsep, label in slices:
        if start != cursor:
            kind = "overlap" if start < cursor else "gap"
            raise ValueError(
                f"isep {kind} at {start} (expected {cursor}) in {label}"
            )
        cursor = start + nsep
    total_nsep = cursor - 1

    packed = np.concatenate([s.packed for s in segments])
    order = np.lexsort((packed["igamma"], packed["irot"], packed["isep"]))
    packed = packed[order]
    header = ResultHeader(
        receptor=first.receptor,
        ligand=first.ligand,
        isep_start=1,
        nsep=total_nsep,
        n_couples=first.n_couples,
        n_gamma=first.n_gamma,
    )
    return ColumnarSegment(header=header, packed=packed)


def merge_couple_store(
    store: ResultStore | Path | str, out_path: Path | str
) -> int:
    """Merge every couple of a chunked store into a one-segment-per-couple
    store at ``out_path``; returns the total merged row count."""
    if not isinstance(store, ResultStore):
        store = read_store(store)
    merged = [
        merge_segments(chunks) for chunks in store.by_couple().values()
    ]
    write_store(out_path, merged)
    return sum(len(s) for s in merged)


def _couple_index(
    store: ResultStore, names: Sequence[str] | None
) -> tuple[list[str], dict[str, int]]:
    if names is None:
        seen: dict[str, None] = {}
        for r, l in store.couples():
            seen.setdefault(r, None)
            seen.setdefault(l, None)
        names = list(seen)
    return list(names), {n: i for i, n in enumerate(names)}


def energy_matrix(
    store: ResultStore | Path | str, names: Sequence[str] | None = None
) -> tuple[np.ndarray, list[str]]:
    """The cross-docking energy matrix read straight off the columns.

    ``E[i, j]`` = best (minimum) ``e_tot`` over every row docking ligand
    ``names[j]`` against receptor ``names[i]``; couples with no rows stay
    ``+inf``.  NaN energies propagate into the entry, exactly as a
    ``records["e_tot"].min()`` over the parsed text file would (checks
    reject such files, but the reduction must not silently launder them).
    Returns ``(matrix, names)``.
    """
    if not isinstance(store, ResultStore):
        store = read_store(store)
    names, index = _couple_index(store, names)
    n = len(names)
    matrix = np.full((n, n), np.inf)
    for (receptor, ligand), segments in store.by_couple().items():
        i, j = index[receptor], index[ligand]
        candidates = [s.column("e_tot").min() for s in segments if len(s)]
        if candidates:
            matrix[i, j] = np.minimum(matrix[i, j], np.min(candidates))
    return matrix, names


def position_energy_maps(
    store: ResultStore | Path | str,
    names: Sequence[str] | None = None,
    n_positions: int | None = None,
) -> tuple[np.ndarray, list[str]]:
    """Position-resolved energy maps: best ``e_tot`` per starting position.

    ``maps[i, j, k]`` = minimum energy over the orientation rows of
    position ``k+1`` docking ligand ``j`` at receptor ``i`` — exactly what
    :class:`repro.science.SiteMaps` consumes.  All receptors must share
    one position-grid size (``n_positions``; defaults to the largest
    header ``nsep`` seen, with headerless couples inferred from their
    rows).  Unsampled positions stay ``+inf``.
    """
    if not isinstance(store, ResultStore):
        store = read_store(store)
    names, index = _couple_index(store, names)
    groups = store.by_couple()
    if n_positions is None:
        n_positions = 0
        for segments in groups.values():
            for s in segments:
                n_positions = max(
                    n_positions, s.header.isep_start + s.header.nsep - 1
                )
    n = len(names)
    maps = np.full((n, n, n_positions), np.inf)
    for (receptor, ligand), segments in groups.items():
        i, j = index[receptor], index[ligand]
        target = maps[i, j]
        for s in segments:
            if not len(s):
                continue
            isep = s.column("isep")
            if isep.min() < 1 or isep.max() > n_positions:
                raise ValueError(
                    f"isep outside [1, {n_positions}] in "
                    f"{_segment_label(s, 0)}"
                )
            np.minimum.at(target, isep - 1, s.column("e_tot"))
    return maps, names
