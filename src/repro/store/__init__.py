"""``repro.store`` — the packed columnar result store.

The canonical result format of the reproduction: fixed-point packed numpy
record columns (:data:`PACKED_DTYPE`, 56 bytes/row vs the text format's
118), per-couple segments behind a versioned header, an append-friendly
writer for the checkpointed producer, lossless text converters, and the
vectorized check -> merge -> matrix pipeline that replaces the
line-oriented post-processing of Section 5.2.

See ``docs/resultstore.md`` for the on-disk layout and conversion
guarantees, and ``benchmarks/bench_resultstore.py`` for the measured
pipeline speedup (``BENCH_resultstore.json``).
"""

from .convert import (
    header_only_segment,
    render_lines,
    segment_from_text,
    segment_to_text,
    store_to_text,
    text_to_store,
)
from .format import (
    PACKED_DTYPE,
    ROW_BYTES,
    SEGMENT_OVERHEAD_BYTES,
    STORE_MAGIC,
    STORE_VERSION,
    ColumnarSegment,
    ResultStore,
    StoreWriter,
    iter_segments,
    pack_records,
    read_store,
    rollback_partial_store,
    unpack_records,
    write_store,
)
from .pipeline import (
    check_segment,
    check_store,
    energy_matrix,
    merge_couple_store,
    merge_segments,
    position_energy_maps,
)

__all__ = [
    "PACKED_DTYPE",
    "ROW_BYTES",
    "SEGMENT_OVERHEAD_BYTES",
    "STORE_MAGIC",
    "STORE_VERSION",
    "ColumnarSegment",
    "ResultStore",
    "StoreWriter",
    "check_segment",
    "check_store",
    "energy_matrix",
    "header_only_segment",
    "iter_segments",
    "merge_couple_store",
    "merge_segments",
    "pack_records",
    "position_energy_maps",
    "read_store",
    "render_lines",
    "rollback_partial_store",
    "segment_from_text",
    "segment_to_text",
    "store_to_text",
    "text_to_store",
    "unpack_records",
    "write_store",
]
