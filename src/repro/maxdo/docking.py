"""The MAXDo driver: energy maps over starting positions and orientations.

``dock_couple`` computes the interaction-energy map of one (receptor,
ligand) couple over a slice of starting positions — the computational
content of one workunit.  ``MaxDoRun`` wraps it with the volunteer-facing
machinery: incremental result files, checkpoint-restart between starting
positions, and interruption (the agent can stop the run at any position
boundary, or kill it mid-position and lose the uncommitted tail).

Observability: engine selection, lockstep-batch convergence rounds,
process-pool fan-out and per-position completion emit ``docking.*``
events through the process-global tracer
(``repro.obs.tracing(...)`` / ``repro.obs.set_global_tracer``);
``MaxDoRun`` also accepts an explicit ``tracer=``.  See
docs/observability.md.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs import global_tracer
from ..proteins.model import ReducedProtein
from ..proteins.surface import starting_positions
from .checkpoint import Checkpoint, rollback_partial_results
from .energy import (
    EnergyParams,
    batch_interaction_energy,
    interaction_energy,
)
from .minimize import minimize_rigid, minimize_rigid_batch
from .orientations import (
    N_COUPLES,
    N_GAMMA,
    gamma_values,
    orientation_couples,
    rotation_matrix,
)
from .pairtable import pair_table
from .resultfile import (
    ResultHeader,
    append_records,
    format_record,
    read_results,
    write_results,
)

__all__ = ["DockingResult", "dock_position", "dock_couple", "MaxDoRun"]

#: Execution engines: "batched" drives all orientations of a starting
#: position through the pose-vectorized kernels at once; "reference" is
#: the original one-scipy-call-per-orientation path.  Both produce
#: bit-identical results; "batched" is simply faster.
_ENGINES = ("batched", "reference")


def _check_engine(engine: str) -> str:
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    return engine


def ligand_start_positions(
    receptor_positions: np.ndarray, ligand: ReducedProtein
) -> np.ndarray:
    """Offset surface anchor points by the ligand's own radius.

    Starting positions enumerate anchors just outside the *receptor*
    envelope; the ligand's mass center must additionally clear the
    ligand's extent, so each anchor is pushed outward radially.
    """
    positions = np.asarray(receptor_positions, dtype=np.float64)
    norms = np.linalg.norm(positions, axis=-1, keepdims=True)
    if np.any(norms == 0.0):
        raise ValueError(
            "starting-position anchor at the origin: a zero-norm anchor has "
            "no outward radial direction to offset the ligand along"
        )
    return positions * (1.0 + ligand.bounding_radius / norms)


@dataclass
class DockingResult:
    """Energy map for a slice of starting positions.

    Arrays are indexed ``[position, couple, gamma]``.
    """

    receptor: str
    ligand: str
    isep_start: int
    e_lj: np.ndarray
    e_elec: np.ndarray
    positions: np.ndarray  #: final mass-center positions, same shape + (3,)
    eulers: np.ndarray  #: final ZYZ angles, same shape + (3,)

    @property
    def e_total(self) -> np.ndarray:
        return self.e_lj + self.e_elec

    @property
    def nsep(self) -> int:
        return self.e_lj.shape[0]

    def best(self) -> tuple[int, int, int]:
        """Index (position, couple, gamma) of the strongest interaction."""
        flat = int(np.argmin(self.e_total))
        return np.unravel_index(flat, self.e_total.shape)  # type: ignore[return-value]

    def to_lines(self) -> list[str]:
        """Render as result-file data lines: one per (position, orientation
        couple), keeping the best-of-gamma optimum (igamma marks the winning
        spin)."""
        lines = []
        n_pos, n_cpl, _ = self.e_lj.shape
        e_total = self.e_total
        for p in range(n_pos):
            for c in range(n_cpl):
                g = int(np.argmin(e_total[p, c]))
                lines.append(
                    format_record(
                        self.isep_start + p,
                        c + 1,
                        g + 1,
                        self.positions[p, c, g],
                        self.eulers[p, c, g],
                        float(self.e_lj[p, c, g]),
                        float(self.e_elec[p, c, g]),
                    )
                )
        return lines


def dock_position(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    position: np.ndarray,
    couples: np.ndarray,
    gammas: np.ndarray,
    minimize: bool = True,
    max_iterations: int = 60,
    energy_params: EnergyParams | None = None,
    engine: str = "batched",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Dock one starting position over all orientations.

    Returns ``(e_lj, e_elec, final_positions, final_eulers)`` with leading
    shape ``(n_couples, n_gamma)``.  With ``minimize=False`` the energies
    are evaluated at the starting pose only (cheap mode used by tests and
    large sweeps).  ``engine="batched"`` (the default) runs all
    ``n_couples * n_gamma`` orientations through the pose-vectorized
    kernels in one lockstep minimization; ``engine="reference"`` is the
    scalar per-orientation path.  The two produce bit-identical results.
    """
    _check_engine(engine)
    n_cpl, n_gam = len(couples), len(gammas)
    position = np.asarray(position, dtype=np.float64)

    if engine == "batched":
        # (couple, gamma) row-major, matching the reference loop order.
        eulers = np.empty((n_cpl * n_gam, 3))
        eulers[:, :2] = np.repeat(np.asarray(couples, dtype=np.float64), n_gam, axis=0)
        eulers[:, 2] = np.tile(np.asarray(gammas, dtype=np.float64), n_cpl)
        translations = np.tile(position, (n_cpl * n_gam, 1))
        if minimize:
            batch = minimize_rigid_batch(
                receptor, ligand, translations, eulers,
                max_iterations=max_iterations, energy_params=energy_params,
            )
            tracer = global_tracer()
            if tracer is not None:
                tracer.emit(
                    "docking.batch",
                    n_poses=len(batch), rounds=batch.n_iterations,
                    evaluations=batch.n_evaluations,
                    converged=int(np.count_nonzero(batch.converged)),
                )
            return (
                batch.energy_lj.reshape(n_cpl, n_gam),
                batch.energy_elec.reshape(n_cpl, n_gam),
                batch.translations.reshape(n_cpl, n_gam, 3),
                batch.eulers.reshape(n_cpl, n_gam, 3),
            )
        table = pair_table(receptor, ligand, energy_params)
        poses = np.concatenate([translations, eulers], axis=1)
        lj, el = batch_interaction_energy(table, poses)
        return (
            lj.reshape(n_cpl, n_gam),
            el.reshape(n_cpl, n_gam),
            translations.reshape(n_cpl, n_gam, 3),
            eulers.reshape(n_cpl, n_gam, 3).copy(),
        )

    e_lj = np.empty((n_cpl, n_gam))
    e_elec = np.empty((n_cpl, n_gam))
    out_pos = np.empty((n_cpl, n_gam, 3))
    out_euler = np.empty((n_cpl, n_gam, 3))
    for c, (alpha, beta) in enumerate(couples):
        for g, gamma in enumerate(gammas):
            euler = np.array([alpha, beta, gamma])
            if minimize:
                res = minimize_rigid(
                    receptor, ligand, position, euler,
                    max_iterations=max_iterations, energy_params=energy_params,
                )
                e_lj[c, g] = res.energy_lj
                e_elec[c, g] = res.energy_elec
                out_pos[c, g] = res.translation
                out_euler[c, g] = res.euler
            else:
                lj, el = interaction_energy(
                    receptor, ligand, rotation_matrix(*euler), position,
                    params=energy_params,
                )
                e_lj[c, g] = lj
                e_elec[c, g] = el
                out_pos[c, g] = position
                out_euler[c, g] = euler
    return e_lj, e_elec, out_pos, out_euler


def _dock_position_task(args: tuple) -> tuple[np.ndarray, ...]:
    """Module-level worker for the process-pool fan-out (must pickle)."""
    (
        receptor, ligand, position, couples, gammas,
        minimize, max_iterations, energy_params, engine,
    ) = args
    return dock_position(
        receptor, ligand, position, couples, gammas, minimize,
        max_iterations, energy_params=energy_params, engine=engine,
    )


def dock_couple(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    isep_start: int = 1,
    nsep: int | None = None,
    total_nsep: int | None = None,
    n_couples: int = N_COUPLES,
    n_gamma: int = N_GAMMA,
    minimize: bool = True,
    max_iterations: int = 60,
    energy_params: EnergyParams | None = None,
    engine: str = "batched",
    n_workers: int | None = None,
) -> DockingResult:
    """Compute the energy map of one couple over an isep slice.

    ``total_nsep`` is the receptor's full starting-position count (defaults
    to the slice size); the slice ``[isep_start, isep_start + nsep)`` is cut
    from that full enumeration, so a couple sliced across several workunits
    evaluates exactly the same physical positions as a single big run.

    ``n_workers`` fans the starting positions — the paper's natural
    checkpoint/packaging granularity — out over a process pool.  Results
    are merged back in position order, so the returned map is bit-identical
    for every worker count (each position's computation is deterministic
    and self-contained).
    """
    _check_engine(engine)
    if isep_start < 1:
        raise ValueError(f"isep_start is 1-based, got {isep_start}")
    if n_workers is not None and n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if total_nsep is None:
        total_nsep = (nsep or 1) + isep_start - 1
    if nsep is None:
        nsep = total_nsep - isep_start + 1
    if isep_start + nsep - 1 > total_nsep:
        raise ValueError(
            f"slice [{isep_start}, {isep_start + nsep - 1}] exceeds "
            f"total_nsep={total_nsep}"
        )
    all_positions = ligand_start_positions(
        starting_positions(receptor, total_nsep), ligand
    )
    couples = orientation_couples(n_couples)
    gammas = gamma_values(n_gamma)

    tracer = global_tracer()
    if tracer is not None:
        tracer.emit(
            "docking.engine",
            engine=engine, receptor=receptor.name, ligand=ligand.name,
            isep_start=isep_start, nsep=nsep, minimize=minimize,
            n_workers=n_workers if n_workers is not None else 1,
        )

    shape = (nsep, n_couples, n_gamma)
    result = DockingResult(
        receptor=receptor.name,
        ligand=ligand.name,
        isep_start=isep_start,
        e_lj=np.empty(shape),
        e_elec=np.empty(shape),
        positions=np.empty(shape + (3,)),
        eulers=np.empty(shape + (3,)),
    )
    if n_workers is not None and n_workers > 1 and nsep > 1:
        tasks = [
            (
                receptor, ligand, all_positions[isep_start - 1 + p],
                couples, gammas, minimize, max_iterations, energy_params,
                engine,
            )
            for p in range(nsep)
        ]
        if tracer is not None:
            # Workers are separate processes: their docking.* events are
            # not captured; the fan-out itself is traced in the parent.
            tracer.emit(
                "docking.fanout",
                n_workers=min(n_workers, nsep), n_tasks=nsep,
                receptor=receptor.name, ligand=ligand.name,
            )
        with ProcessPoolExecutor(max_workers=min(n_workers, nsep)) as pool:
            # submit order == position order: the enumerate below is the
            # deterministic ordered merge, whatever order workers finish in.
            for p, (lj, el, fpos, feul) in enumerate(
                pool.map(_dock_position_task, tasks)
            ):
                result.e_lj[p], result.e_elec[p] = lj, el
                result.positions[p], result.eulers[p] = fpos, feul
        return result

    for p in range(nsep):
        pos = all_positions[isep_start - 1 + p]
        lj, el, fpos, feul = dock_position(
            receptor, ligand, pos, couples, gammas, minimize, max_iterations,
            energy_params=energy_params, engine=engine,
        )
        result.e_lj[p], result.e_elec[p] = lj, el
        result.positions[p], result.eulers[p] = fpos, feul
        if tracer is not None:
            tracer.emit(
                "docking.position",
                isep=isep_start + p, receptor=receptor.name,
                ligand=ligand.name,
            )
    return result


#: MaxDoRun result formats: line-oriented text (the paper's files) or the
#: packed columnar store of :mod:`repro.store`
_RESULT_FORMATS = ("text", "columnar")


class MaxDoRun:
    """A checkpointed MAXDo workunit execution.

    Mirrors the agent-visible behaviour: results stream to a partial file,
    a checkpoint is committed after every starting position, and the run
    can be stopped (`max_positions`) and later resumed from disk.

    Parameters
    ----------
    workdir:
        Directory for the partial result file and checkpoint.
    minimize:
        Full minimization (True) or starting-pose evaluation only.
    engine:
        Execution engine, ``"batched"`` (default) or ``"reference"``;
        both write bit-identical result lines, and checkpoints taken
        under one engine resume cleanly under the other since the
        checkpoint granularity (a whole starting position) sits above
        the batching.
    result_format:
        ``"text"`` (default) streams the paper's line-oriented partial
        file; ``"columnar"`` streams a packed store
        (:mod:`repro.store`) instead — one appended segment per committed
        starting position, rollback at segment boundaries, and a final
        compaction into a one-segment ``.result.rcs``.  Converting the
        columnar output to text reproduces the text run byte for byte.
    tracer:
        Structured event tracer for the ``docking.*`` channel; defaults
        to the process-global tracer (``repro.obs.tracing``) at run time.
    """

    def __init__(
        self,
        receptor: ReducedProtein,
        ligand: ReducedProtein,
        isep_start: int,
        nsep: int,
        total_nsep: int,
        workdir: Path | str,
        n_couples: int = N_COUPLES,
        n_gamma: int = N_GAMMA,
        minimize: bool = True,
        max_iterations: int = 60,
        engine: str = "batched",
        result_format: str = "text",
        tracer=None,
    ) -> None:
        if result_format not in _RESULT_FORMATS:
            raise ValueError(
                f"result_format must be one of {_RESULT_FORMATS}, "
                f"got {result_format!r}"
            )
        self.receptor = receptor
        self.ligand = ligand
        self.isep_start = isep_start
        self.nsep = nsep
        self.total_nsep = total_nsep
        self.n_couples = n_couples
        self.n_gamma = n_gamma
        self.minimize = minimize
        self.max_iterations = max_iterations
        self.engine = _check_engine(engine)
        self.result_format = result_format
        self.tracer = tracer
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._header = ResultHeader(
            receptor=receptor.name,
            ligand=ligand.name,
            isep_start=isep_start,
            nsep=nsep,
            n_couples=n_couples,
            n_gamma=n_gamma,
        )

    @property
    def columnar(self) -> bool:
        return self.result_format == "columnar"

    @property
    def partial_path(self) -> Path:
        stem = f"{self.receptor.name}_{self.ligand.name}_{self.isep_start}"
        suffix = ".partial.rcs" if self.columnar else ".partial"
        return self.workdir / f"{stem}{suffix}"

    @property
    def checkpoint_path(self) -> Path:
        stem = f"{self.receptor.name}_{self.ligand.name}_{self.isep_start}"
        return self.workdir / f"{stem}.ckpt"

    def _load_state(self) -> Checkpoint:
        if self.checkpoint_path.exists():
            ckpt = Checkpoint.load(self.checkpoint_path)
            # A kill mid-position leaves uncommitted rows: roll them back.
            if self.columnar:
                from ..store.format import rollback_partial_store

                rollback_partial_store(self.partial_path, ckpt.lines_committed)
            else:
                rollback_partial_results(self.partial_path, ckpt)
            return ckpt
        ckpt = Checkpoint(
            receptor=self.receptor.name,
            ligand=self.ligand.name,
            isep_start=self.isep_start,
            nsep=self.nsep,
            n_couples=self.n_couples,
            n_gamma=self.n_gamma,
            positions_done=0,
        )
        if self.columnar:
            from ..store.format import write_store

            write_store(self.partial_path, [])
        else:
            write_results(self.partial_path, self._header, [])
        ckpt.save(self.checkpoint_path)
        return ckpt

    def _position_records(self, isep, lj, el, fpos, feul) -> np.ndarray:
        """One committed position as result records (best-of-gamma rows)."""
        from .resultfile import RESULT_DTYPE

        e_total = lj + el
        best = e_total.argmin(axis=1)
        couples = np.arange(self.n_couples)
        records = np.zeros(self.n_couples, dtype=RESULT_DTYPE)
        records["isep"] = isep
        records["irot"] = couples + 1
        records["igamma"] = best + 1
        records["x"], records["y"], records["z"] = fpos[couples, best].T
        records["alpha"], records["beta"], records["gamma"] = (
            feul[couples, best].T
        )
        records["e_lj"] = lj[couples, best]
        records["e_elec"] = el[couples, best]
        records["e_tot"] = records["e_lj"] + records["e_elec"]
        return records

    def run(self, max_positions: int | None = None) -> Checkpoint:
        """(Re)start the workunit; stop after ``max_positions`` positions.

        Returns the checkpoint reached.  Call again (without
        ``max_positions``) to run to completion — resumption picks up from
        the last committed starting position, as in the paper.
        """
        ckpt = self._load_state()
        couples = orientation_couples(self.n_couples)
        gammas = gamma_values(self.n_gamma)
        all_positions = ligand_start_positions(
            starting_positions(self.receptor, self.total_nsep), self.ligand
        )
        tracer = self.tracer if self.tracer is not None else global_tracer()
        if tracer is not None:
            tracer.emit(
                "docking.engine",
                engine=self.engine, receptor=self.receptor.name,
                ligand=self.ligand.name, isep_start=self.isep_start,
                nsep=self.nsep, resume_from=ckpt.positions_done,
                minimize=self.minimize, n_workers=1,
            )
        done_now = 0
        sink = self._open_sink()
        try:
            while not ckpt.complete:
                if max_positions is not None and done_now >= max_positions:
                    break
                index = ckpt.positions_done  # 0-based within the slice
                isep = self.isep_start + index
                pos = all_positions[isep - 1]
                lj, el, fpos, feul = dock_position(
                    self.receptor,
                    self.ligand,
                    pos,
                    couples,
                    gammas,
                    self.minimize,
                    self.max_iterations,
                    engine=self.engine,
                )
                self._commit_position(sink, isep, lj, el, fpos, feul)
                ckpt = ckpt.advanced()
                ckpt.save(self.checkpoint_path)
                done_now += 1
                if tracer is not None:
                    tracer.emit(
                        "docking.checkpoint",
                        isep=isep, positions_done=ckpt.positions_done,
                        nsep=self.nsep, receptor=self.receptor.name,
                        ligand=self.ligand.name,
                    )
        finally:
            sink.close()
        return ckpt

    def _open_sink(self):
        if self.columnar:
            from ..store.format import StoreWriter

            return StoreWriter(self.partial_path)
        return self.partial_path.open("a", encoding="ascii")

    def _commit_position(self, sink, isep, lj, el, fpos, feul) -> None:
        records = self._position_records(isep, lj, el, fpos, feul)
        if self.columnar:
            from ..store.format import ColumnarSegment, pack_records
            from .resultfile import ResultHeader as RH

            header = RH(
                receptor=self.receptor.name,
                ligand=self.ligand.name,
                isep_start=isep,
                nsep=1,
                n_couples=self.n_couples,
                n_gamma=self.n_gamma,
            )
            sink.append(
                ColumnarSegment(header=header, packed=pack_records(records))
            )
        else:
            from ..store.convert import render_lines

            append_records(sink, render_lines(records))
        sink.flush()

    def finalize(self) -> Path:
        """Promote a complete partial file to its final result file.

        In columnar mode the per-position chunk segments are additionally
        compacted into a single segment carrying the workunit header —
        the exact columnar twin of the text result file.
        """
        ckpt = Checkpoint.load(self.checkpoint_path)
        if not ckpt.complete:
            raise RuntimeError(
                f"workunit incomplete: {ckpt.positions_done}/{ckpt.nsep} positions"
            )
        if self.columnar:
            from ..store.format import (
                PACKED_DTYPE,
                ColumnarSegment,
                iter_segments,
                write_store,
            )

            chunks = list(iter_segments(self.partial_path))
            packed = (
                np.concatenate([c.packed for c in chunks])
                if chunks
                else np.zeros(0, dtype=PACKED_DTYPE)
            )
            final = self.partial_path.with_name(
                self.partial_path.name.replace(".partial.rcs", ".result.rcs")
            )
            write_store(
                final,
                [ColumnarSegment(header=self._header, packed=packed)],
            )
            self.partial_path.unlink()
            self.checkpoint_path.unlink()
            return final
        final = self.partial_path.with_suffix(".result")
        self.partial_path.replace(final)
        self.checkpoint_path.unlink()
        return final

    def result_table(self):
        """Parse whatever the partial file currently holds."""
        if self.columnar:
            from ..store.format import PACKED_DTYPE, iter_segments, unpack_records
            from .resultfile import ResultTable

            chunks = list(iter_segments(self.partial_path))
            packed = (
                np.concatenate([c.packed for c in chunks])
                if chunks
                else np.zeros(0, dtype=PACKED_DTYPE)
            )
            return ResultTable(
                header=self._header, records=unpack_records(packed)
            )
        return read_results(self.partial_path)
