"""MAXDo result-file format.

"The output of the MAXDo program is a simple text file that contains on each
line the coordinate of the ligand and its orientation, and then the
interaction energies values" (Section 5.2).

We reproduce that shape: a small ``#``-prefixed header identifying the
couple and the isep range, then **one line per (isep, irot couple)** — the
optimum over the 10 gamma spins of that orientation couple::

    isep irot igamma x y z alpha beta gamma E_lj E_elec E_tot

where ``igamma`` is the index of the winning spin and the pose/energies are
the minimization optimum.  One line per orientation *couple* (not per
gamma) is what the paper's dataset volume implies: 294,533 positions x 168
ligands x 21 couples x ~118 bytes/line = 122 GB ~ the paper's 123 GB.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

__all__ = [
    "ResultHeader",
    "ResultTable",
    "format_record",
    "write_results",
    "append_records",
    "read_results",
    "read_results_reference",
    "expected_line_count",
    "BYTES_PER_LINE",
    "RESULT_DTYPE",
]

#: Size of one formatted data line in bytes (the fixed formats below,
#: including the newline).  Used by the volume model.
BYTES_PER_LINE = 118

_HEADER_FIELDS = ("receptor", "ligand", "isep_start", "nsep", "n_couples", "n_gamma")

_DTYPE = np.dtype(
    [
        ("isep", np.int64),
        ("irot", np.int64),
        ("igamma", np.int64),
        ("x", np.float64),
        ("y", np.float64),
        ("z", np.float64),
        ("alpha", np.float64),
        ("beta", np.float64),
        ("gamma", np.float64),
        ("e_lj", np.float64),
        ("e_elec", np.float64),
        ("e_tot", np.float64),
    ]
)

#: public name of the result-record dtype (the columnar store and the
#: vectorized pipeline build on the same field layout)
RESULT_DTYPE = _DTYPE


@dataclass(frozen=True)
class ResultHeader:
    """Identity of a result file: which couple, which isep slice."""

    receptor: str
    ligand: str
    isep_start: int
    nsep: int
    n_couples: int
    n_gamma: int

    def lines(self) -> list[str]:
        return [
            "# MAXDo result file (repro)",
            f"# receptor {self.receptor}",
            f"# ligand {self.ligand}",
            f"# isep_start {self.isep_start}",
            f"# nsep {self.nsep}",
            f"# n_couples {self.n_couples}",
            f"# n_gamma {self.n_gamma}",
        ]


@dataclass
class ResultTable:
    """A parsed result file: header plus a structured record array."""

    header: ResultHeader
    records: np.ndarray  #: structured array with :data:`_DTYPE` fields

    def __len__(self) -> int:
        return len(self.records)


def expected_line_count(nsep: int, n_couples: int) -> int:
    """Data lines a complete result file must contain (one line per
    starting position and orientation couple)."""
    return nsep * n_couples


def format_record(
    isep: int,
    irot: int,
    igamma: int,
    position: np.ndarray,
    euler: np.ndarray,
    e_lj: float,
    e_elec: float,
) -> str:
    """Format one evaluation as a result-file data line (no newline)."""
    x, y, z = position
    a, b, g = euler
    return (
        f"{isep:7d} {irot:3d} {igamma:3d} "
        f"{x:10.3f} {y:10.3f} {z:10.3f} "
        f"{a:8.4f} {b:8.4f} {g:8.4f} "
        f"{e_lj:13.4f} {e_elec:13.4f} {e_lj + e_elec:13.4f}"
    )


def write_results(
    path: Path | str, header: ResultHeader, lines: Iterable[str]
) -> int:
    """Write a complete result file; returns the number of data lines."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="ascii") as fh:
        for line in header.lines():
            fh.write(line + "\n")
        for line in lines:
            fh.write(line + "\n")
            count += 1
    return count


def append_records(fh: TextIO, lines: Iterable[str]) -> int:
    """Append data lines to an open result file; returns lines written."""
    count = 0
    for line in lines:
        fh.write(line + "\n")
        count += 1
    return count


def _parse_header(lines: list[str]) -> ResultHeader:
    values: dict[str, str] = {}
    for line in lines:
        parts = line[1:].split()
        if len(parts) == 2 and parts[0] in _HEADER_FIELDS:
            values[parts[0]] = parts[1]
    missing = [f for f in _HEADER_FIELDS if f not in values]
    if missing:
        raise ValueError(f"result header missing fields: {missing}")
    return ResultHeader(
        receptor=values["receptor"],
        ligand=values["ligand"],
        isep_start=int(values["isep_start"]),
        nsep=int(values["nsep"]),
        n_couples=int(values["n_couples"]),
        n_gamma=int(values["n_gamma"]),
    )


def _records_from_columns(raw: np.ndarray) -> np.ndarray:
    """(n, 12) float matrix -> structured :data:`RESULT_DTYPE` array."""
    records = np.zeros(raw.shape[0], dtype=_DTYPE)
    for k, name in enumerate(_DTYPE.names):
        records[name] = raw[:, k]
    return records


def read_results(path: Path | str) -> ResultTable:
    """Parse a result file written by :func:`write_results`.

    The data block is parsed in one vectorized pass (a single whitespace
    split of the whole block feeding one ``np.array(..., float)`` call)
    instead of per-line float parsing — an order of magnitude faster on
    workunit-sized files, and the text baseline of the columnar-store
    benchmark.  Equivalent to the reference parser
    (:func:`read_results_reference`) on every well-formed file, pinned by
    ``tests/test_maxdo_resultfile.py``.

    Raises ``ValueError`` on malformed headers or data lines; the validator
    (:mod:`repro.validation.checks`) relies on these errors to reject
    corrupted volunteer uploads.
    """
    path = Path(path)
    lines = path.read_text(encoding="ascii").splitlines()
    header_lines = [ln for ln in lines if ln.startswith("#")]
    data_lines = [ln for ln in lines if not ln.startswith("#") and ln.strip()]
    header = _parse_header(header_lines)
    n_cols = len(_DTYPE.names)
    if data_lines:
        first_cols = len(data_lines[0].split())
        if first_cols != n_cols:
            raise ValueError(f"expected {n_cols} columns, got {first_cols}")
        try:
            flat = np.array("\n".join(data_lines).split(), dtype=np.float64)
        except ValueError as exc:
            raise ValueError(f"unparseable data line: {exc}") from exc
        if flat.size != len(data_lines) * n_cols:
            raise ValueError(
                f"ragged data block: {flat.size} values over "
                f"{len(data_lines)} lines (expected {n_cols} columns)"
            )
        records = _records_from_columns(flat.reshape(-1, n_cols))
    else:
        records = np.zeros(0, dtype=_DTYPE)
    return ResultTable(header=header, records=records)


def read_results_reference(path: Path | str) -> ResultTable:
    """The original per-line ``np.loadtxt`` parser, kept as the equivalence
    oracle for :func:`read_results` (and for honesty in parser benchmarks)."""
    path = Path(path)
    header_lines: list[str] = []
    data = io.StringIO()
    n_data = 0
    with path.open("r", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("#"):
                header_lines.append(line.rstrip("\n"))
            elif line.strip():
                data.write(line)
                n_data += 1
    header = _parse_header(header_lines)
    if n_data:
        data.seek(0)
        raw = np.loadtxt(data, ndmin=2)
        if raw.shape[1] != len(_DTYPE.names):
            raise ValueError(
                f"expected {len(_DTYPE.names)} columns, got {raw.shape[1]}"
            )
        records = _records_from_columns(raw)
    else:
        records = np.zeros(0, dtype=_DTYPE)
    return ResultTable(header=header, records=records)
