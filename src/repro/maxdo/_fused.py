"""On-demand build + ctypes bindings for the fused docking kernels.

Compiles ``_fused.c`` with whatever C compiler the host happens to have
(``$CC``, ``cc``, ``gcc`` or ``clang``) into a per-user temp cache keyed by
a hash of the source and flags, and exposes thin numpy wrappers.  Nothing
here is required: :func:`load` returns ``None`` when there is no compiler
(or when ``REPRO_NO_FUSED`` is set) and the batched kernels in
:mod:`repro.maxdo.energy` fall back to pure numpy.

The build deliberately avoids ``-ffast-math`` and forces
``-ffp-contract=off``: the C kernels are contractually bit-identical to
the scalar numpy reference kernels, which a fused multiply-add or a
reassociated reduction would silently break (see the header of
``_fused.c``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path

import numpy as np

__all__ = ["load", "phase_a", "phase_grad", "phase_energy"]

_SOURCE = Path(__file__).with_name("_fused.c")
#: -fno-math-errno is value-safe (sqrt stays correctly rounded, it just
#: stops setting errno) and is what lets the compiler vectorize the
#: sqrt-bearing loops; -ffast-math would NOT be safe (reassociation).
_BASE_FLAGS = ["-O3", "-ffp-contract=off", "-fno-math-errno", "-fPIC", "-shared"]

_lib: ctypes.CDLL | None = None
_load_attempted = False

_f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_c_long = ctypes.c_long
_c_double = ctypes.c_double


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _build(cc: str, flags: list[str], out: Path) -> bool:
    tmp = out.with_name(f".{out.name}.{os.getpid()}.tmp")
    cmd = [cc, *flags, str(_SOURCE), "-o", str(tmp), "-lm"]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        return False
    os.replace(tmp, out)  # atomic: concurrent builders can't torn-read
    return True


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.maxdo_phase_a.restype = None
    lib.maxdo_phase_a.argtypes = [
        _f64, _f64, _c_long, _c_long, _c_long, _c_double, _c_double,
        _f64, _f64,
    ]
    lib.maxdo_phase_grad.restype = None
    lib.maxdo_phase_grad.argtypes = [
        _f64, _f64, _f64, _f64, _f64, _f64, _f64,
        _c_long, _c_long, _c_long, _c_double,
        _f64, _f64, _f64,
    ]
    lib.maxdo_phase_energy.restype = None
    lib.maxdo_phase_energy.argtypes = [
        _f64, _f64, _f64, _f64, _f64,
        _c_long, _c_long, _c_long,
        _f64, _f64,
    ]
    return lib


def load() -> ctypes.CDLL | None:
    """Compile (once per source hash) and load the fused kernel library.

    Returns ``None`` when fused kernels are unavailable; callers must fall
    back to the numpy implementation.  Safe to call repeatedly and from
    worker processes — the compiled library is cached on disk.
    """
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NO_FUSED"):
        return None
    try:
        if not _SOURCE.exists():
            return None
        cc = _find_compiler()
        if cc is None:
            return None
        for flags in ([*_BASE_FLAGS, "-march=native"], _BASE_FLAGS):
            tag = hashlib.sha256(
                _SOURCE.read_bytes() + " ".join(flags).encode()
            ).hexdigest()[:16]
            cache = Path(tempfile.gettempdir()) / f"repro-fused-{os.getuid()}"
            cache.mkdir(mode=0o700, parents=True, exist_ok=True)
            out = cache / f"_fused-{tag}.so"
            if out.exists() or _build(cc, flags, out):
                try:
                    _lib = _bind(ctypes.CDLL(str(out)))
                    return _lib
                except (OSError, AttributeError):
                    # unloadable cache artifact, or a stale library missing
                    # a symbol _bind expects; try the next flag set
                    continue
        return None
    except OSError as exc:
        # Cache-directory setup failed (read-only tmp, permissions, ...).
        # The numpy fallback is silent by design everywhere else in this
        # function — compiler absent, build failed — because those are
        # expected environments; an unusable temp dir is not, so say why
        # the fast path vanished instead of quietly running ~2x slower.
        warnings.warn(
            f"fused docking kernels disabled ({exc}); using the numpy "
            "fallback",
            RuntimeWarning,
            stacklevel=2,
        )
        _lib = None
        return None


def phase_a(
    coords: np.ndarray,
    rec: np.ndarray,
    soft2: float,
    debye_length: float,
    r2: np.ndarray,
    targ: np.ndarray,
) -> None:
    """Fill ``r2`` and the (pre-exp) Debye arguments for a pose chunk."""
    lib = load()
    n_poses, m, _ = coords.shape
    n = rec.shape[0]
    lib.maxdo_phase_a(
        coords, rec, n_poses, m, n, soft2, debye_length, r2, targ
    )


def phase_grad(
    coords: np.ndarray,
    rec: np.ndarray,
    r2: np.ndarray,
    screen: np.ndarray,
    sigma2: np.ndarray,
    eps_lj: np.ndarray,
    q_coef: np.ndarray,
    debye_length: float,
    e_lj: np.ndarray,
    e_el: np.ndarray,
    bead_grad: np.ndarray,
) -> None:
    """Fill pair energies and per-bead gradients for a pose chunk."""
    lib = load()
    n_poses, m, _ = coords.shape
    n = rec.shape[0]
    lib.maxdo_phase_grad(
        coords, rec, r2, screen, sigma2, eps_lj, q_coef,
        n_poses, m, n, debye_length, e_lj, e_el, bead_grad,
    )


def phase_energy(
    r2: np.ndarray,
    screen: np.ndarray,
    sigma2: np.ndarray,
    eps_geom: np.ndarray,
    q_coef: np.ndarray,
    e_lj: np.ndarray,
    e_el: np.ndarray,
) -> None:
    """Fill (unscaled-LJ) pair energy arrays for a pose chunk."""
    lib = load()
    n_poses, m, n = r2.shape
    lib.maxdo_phase_energy(
        r2, screen, sigma2, eps_geom, q_coef, n_poses, m, n, e_lj, e_el
    )
