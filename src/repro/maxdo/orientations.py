"""Starting orientations.

The paper fixes the orientation sampling to "21 couples (alpha, beta) for 10
values of gamma" (footnote 1): 210 starting orientations per starting
position, grouped in 21 orientation couples — the unit in which packaging
and the cost matrix count work.

``(alpha, beta)`` are the azimuth/colatitude of the ligand's principal axis
direction (sampled quasi-uniformly on the sphere) and ``gamma`` the spin
about that axis.  Rotations use the ZYZ Euler convention
``R = Rz(alpha) @ Ry(beta) @ Rz(gamma)``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..proteins.surface import fibonacci_sphere

__all__ = [
    "N_COUPLES",
    "N_GAMMA",
    "orientation_couples",
    "gamma_values",
    "rotation_matrix",
    "rotation_matrices",
    "rotation_matrix_derivatives",
    "euler_from_matrix",
]

#: Paper values (Section 2.1, footnote 1).
N_COUPLES = 21
N_GAMMA = 10


@lru_cache(maxsize=64)
def _orientation_couples_cached(n: int) -> np.ndarray:
    dirs = fibonacci_sphere(n)
    alpha = np.arctan2(dirs[:, 1], dirs[:, 0])
    beta = np.arccos(np.clip(dirs[:, 2], -1.0, 1.0))
    couples = np.column_stack((alpha, beta))
    couples.setflags(write=False)
    return couples


def orientation_couples(n: int = N_COUPLES) -> np.ndarray:
    """Return ``n`` (alpha, beta) couples as an (n, 2) array in radians.

    Directions come from the deterministic Fibonacci sphere so the couples
    form a "regular array" as in the paper; alpha in [-pi, pi), beta in
    [0, pi].  The enumeration is pure in ``n``, so results are memoized and
    returned as shared read-only arrays — ``MaxDoRun.run`` and
    ``dock_couple`` stop regenerating the identical grid on every
    call/resume.
    """
    return _orientation_couples_cached(int(n))


@lru_cache(maxsize=64)
def _gamma_values_cached(n: int) -> np.ndarray:
    values = np.linspace(0.0, 2.0 * np.pi, num=n, endpoint=False)
    values.setflags(write=False)
    return values


def gamma_values(n: int = N_GAMMA) -> np.ndarray:
    """Return ``n`` evenly spaced spin angles in [0, 2*pi).

    Memoized (shared read-only array), like :func:`orientation_couples`.
    """
    if n < 1:
        raise ValueError(f"need at least one gamma value, got {n}")
    return _gamma_values_cached(int(n))


def _rz(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def _ry(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_matrix(alpha: float, beta: float, gamma: float) -> np.ndarray:
    """ZYZ Euler rotation ``Rz(alpha) @ Ry(beta) @ Rz(gamma)`` as (3, 3)."""
    return _rz(alpha) @ _ry(beta) @ _rz(gamma)


def rotation_matrices(angles: np.ndarray) -> np.ndarray:
    """Vectorized ZYZ rotations: ``angles`` is (m, 3), result is (m, 3, 3)."""
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim != 2 or angles.shape[1] != 3:
        raise ValueError(f"angles must be (m, 3), got {angles.shape}")
    ca, sa = np.cos(angles[:, 0]), np.sin(angles[:, 0])
    cb, sb = np.cos(angles[:, 1]), np.sin(angles[:, 1])
    cg, sg = np.cos(angles[:, 2]), np.sin(angles[:, 2])
    out = np.empty((angles.shape[0], 3, 3))
    out[:, 0, 0] = ca * cb * cg - sa * sg
    out[:, 0, 1] = -ca * cb * sg - sa * cg
    out[:, 0, 2] = ca * sb
    out[:, 1, 0] = sa * cb * cg + ca * sg
    out[:, 1, 1] = -sa * cb * sg + ca * cg
    out[:, 1, 2] = sa * sb
    out[:, 2, 0] = -sb * cg
    out[:, 2, 1] = sb * sg
    out[:, 2, 2] = cb
    return out


def _rz_batch(angles: np.ndarray, derivative: bool = False) -> np.ndarray:
    c, s = np.cos(angles), np.sin(angles)
    out = np.zeros(angles.shape + (3, 3))
    if derivative:
        out[:, 0, 0], out[:, 0, 1] = -s, -c
        out[:, 1, 0], out[:, 1, 1] = c, -s
    else:
        out[:, 0, 0], out[:, 0, 1] = c, -s
        out[:, 1, 0], out[:, 1, 1] = s, c
        out[:, 2, 2] = 1.0
    return out


def _ry_batch(angles: np.ndarray, derivative: bool = False) -> np.ndarray:
    c, s = np.cos(angles), np.sin(angles)
    out = np.zeros(angles.shape + (3, 3))
    if derivative:
        out[:, 0, 0], out[:, 0, 2] = -s, c
        out[:, 2, 0], out[:, 2, 2] = -c, -s
    else:
        out[:, 0, 0], out[:, 0, 2] = c, s
        out[:, 1, 1] = 1.0
        out[:, 2, 0], out[:, 2, 2] = -s, c
    return out


def rotation_matrix_derivatives(angles: np.ndarray) -> np.ndarray:
    """Batched analytic derivatives of the ZYZ rotation.

    ``angles`` is (m, 3); the result is (m, 3, 3, 3) with ``out[b, k]`` the
    matrix ``dR/d angles[b, k]`` — the Euler chain-rule factors the batched
    pose-gradient kernel contracts bead gradients against.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim != 2 or angles.shape[1] != 3:
        raise ValueError(f"angles must be (m, 3), got {angles.shape}")
    rz_a = _rz_batch(angles[:, 0])
    ry_b = _ry_batch(angles[:, 1])
    rz_g = _rz_batch(angles[:, 2])
    out = np.empty((angles.shape[0], 3, 3, 3))
    out[:, 0] = _rz_batch(angles[:, 0], derivative=True) @ ry_b @ rz_g
    out[:, 1] = rz_a @ _ry_batch(angles[:, 1], derivative=True) @ rz_g
    out[:, 2] = rz_a @ ry_b @ _rz_batch(angles[:, 2], derivative=True)
    return out


def euler_from_matrix(rotation: np.ndarray) -> tuple[float, float, float]:
    """Recover ZYZ Euler angles (alpha, beta, gamma) from a rotation matrix.

    Degenerate cases (beta ~ 0 or pi) resolve with gamma = 0 by convention.
    """
    rotation = np.asarray(rotation, dtype=np.float64)
    if rotation.shape != (3, 3):
        raise ValueError(f"rotation must be (3, 3), got {rotation.shape}")
    beta = float(np.arccos(np.clip(rotation[2, 2], -1.0, 1.0)))
    if np.sin(beta) > 1e-10:
        alpha = float(np.arctan2(rotation[1, 2], rotation[0, 2]))
        gamma = float(np.arctan2(rotation[2, 1], -rotation[2, 0]))
    else:
        # Rz(alpha) and Rz(gamma) are colinear: fold everything into alpha.
        # For beta ~ 0, R = Rz(alpha + gamma); for beta ~ pi,
        # R = [[-c, -s, 0], [-s, c, 0], [0, 0, -1]] with angle alpha - gamma.
        alpha = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
        if rotation[2, 2] < 0:
            alpha = float((alpha + 2.0 * np.pi) % (2.0 * np.pi) - np.pi)
        gamma = 0.0
    return alpha, beta, gamma
