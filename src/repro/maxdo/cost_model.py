"""The MAXDo computing-time model (Section 4.1).

The paper establishes three properties of the MAXDo computing time
``ct(isep, irot, p1, p2)``:

1. it is reproducible;
2. for a fixed couple it is linear in the number of orientations;
3. for a fixed couple it is linear in the number of starting positions
   (both with correlation ~0.99, and intercept ``b ~ 0``);

so a single 168 x 168 matrix ``Mct`` — the time of *one starting position
(all 21 orientation couples)* per couple, measured on the reference Opteron
2 GHz — predicts the whole workload through formula (1):

    T_total = sum over couples (p1, p2) of  Nsep(p1) * Mct(p1, p2).

We cannot run the Grid'5000 calibration, so :meth:`CostModel.calibrated`
synthesizes ``Mct`` with the same structure: per-couple cost scales with a
power of each protein's size (time per position grows with the bead-pair
count) times heavy-tailed lognormal noise, calibrated against the paper's
anchors:

* Table 1 statistics (mean 671 s, std 968 s, min 6 s, max 46,347 s,
  median 384 s),
* the exact phase-I total of 1,488 years 237 days 19:45:54,
* "10 proteins represent 30% of the total processing time".

The receptor-size exponent is fitted so the ``Nsep``-weighted mean matches
the total; the noise width is fitted to the mean/median ratio.  All
calibration is deterministic (stratified quantiles, seeded shuffles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq
from scipy.stats import t as student_t

from .. import constants
from ..proteins.library import ProteinLibrary
from ..rng import stable_hash64, stream

__all__ = ["CostModel", "LinearityFit", "fit_line"]

#: Fixed per-call overhead (seconds) of one MAXDo invocation: process start,
#: file parsing.  The paper measured b ~ 0 and neglected it; we keep a small
#: non-zero value so the linearity benches have an intercept to estimate.
CALL_OVERHEAD_S = 2.0

#: Relative jitter of a "measured" run around the model time — run-to-run
#: variation of a real machine.  Small enough that the linearity correlation
#: stays above the paper's 0.99.
MEASUREMENT_JITTER = 0.02

#: Degrees of freedom of the Student-t cost-matrix noise; chosen so the
#: largest of the 168^2 stratified quantiles lands near the paper's maximum
#: entry while mean/median stay at the Table 1 anchors.
NOISE_TAIL_DF = 15.0


@dataclass(frozen=True)
class LinearityFit:
    """Least-squares line fit with its Pearson correlation."""

    slope: float
    intercept: float
    correlation: float


def fit_line(x: np.ndarray, y: np.ndarray) -> LinearityFit:
    """Least-squares ``y = a*x + b`` with the Pearson r of the data."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) < 2:
        raise ValueError("need two equally-sized 1-d samples with >= 2 points")
    slope, intercept = np.polyfit(x, y, 1)
    r = float(np.corrcoef(x, y)[0, 1])
    return LinearityFit(slope=float(slope), intercept=float(intercept), correlation=r)


class CostModel:
    """Per-couple computing-time matrix and the linear time model on top.

    ``mct[i, j]`` is the reference-CPU seconds needed to dock one starting
    position of couple ``(p_i receptor, p_j ligand)`` over all
    ``n_couples`` orientation couples.
    """

    def __init__(
        self,
        mct: np.ndarray,
        nsep: np.ndarray,
        n_couples: int = constants.N_ROT_COUPLES,
        seed: int = constants.DEFAULT_SEED,
    ) -> None:
        mct = np.asarray(mct, dtype=np.float64)
        nsep = np.asarray(nsep, dtype=np.int64)
        if mct.ndim != 2 or mct.shape[0] != mct.shape[1]:
            raise ValueError(f"mct must be square, got {mct.shape}")
        if nsep.shape != (mct.shape[0],):
            raise ValueError("nsep length must match mct dimension")
        if (mct <= 0).any():
            raise ValueError("all computing times must be positive")
        self.mct = mct
        self.nsep = nsep
        self.n_couples = n_couples
        self.seed = seed
        self.n_proteins = mct.shape[0]

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------

    @classmethod
    def calibrated(
        cls,
        library: ProteinLibrary,
        seed: int | None = None,
        total_cpu_seconds: float | None = None,
        mean_target: float = constants.MCT_MEAN_S,
        median_target: float = constants.MCT_MEDIAN_S,
    ) -> "CostModel":
        """Synthesize a calibrated ``Mct`` for ``library``.

        For the phase-1 library the defaults reproduce the paper's totals;
        smaller libraries reuse the same per-couple scale (their total is
        proportionally smaller) unless ``total_cpu_seconds`` is forced.
        """
        if seed is None:
            seed = library.seed
        n = len(library)
        x = np.log(library.size_scale())  # centered-ish log sizes
        x = x - x.mean()
        w = library.nsep.astype(np.float64)

        if total_cpu_seconds is None:
            # Keep the paper's per-unit-of-work scale for any library size:
            # weighted-mean Mct = paper total / paper max workunits.
            weighted_mean_target = (
                constants.TOTAL_REFERENCE_CPU_S / constants.TOTAL_MAX_WORKUNITS
            )
            total_cpu_seconds = weighted_mean_target * float(w.sum()) * n
        weighted_mean_target = total_cpu_seconds / (float(w.sum()) * n)

        # Receptor-size exponent: make the Nsep-weighted mean exceed the
        # plain mean by the paper's ratio.  The ratio is monotone in the
        # exponent because Nsep grows with protein size.
        ratio_target = weighted_mean_target / mean_target

        def weighted_ratio(a: float) -> float:
            e = np.exp(a * x)
            return float((w @ e) / w.sum() / e.mean())

        lo, hi = 0.0, 8.0
        if weighted_ratio(hi) < ratio_target:
            a = hi
        elif ratio_target <= 1.0:
            a = 0.0
        else:
            a = float(brentq(lambda t: weighted_ratio(t) - ratio_target, lo, hi))

        # Total log-variance from the mean/median ratio of Table 1; the
        # ligand exponent takes what the receptor term leaves, capped at the
        # receptor exponent (cost grows with the pair count, so both sides
        # matter, but the receptor side also drives Nsep).
        sigma_total_sq = 2.0 * np.log(mean_target / median_target)
        var_x = float(x.var())
        rem = sigma_total_sq - a * a * var_x
        b = min(a, np.sqrt(max(rem - 0.15, 0.0) / var_x)) if var_x > 0 else 0.0
        sigma_eps_sq = max(sigma_total_sq - (a * a + b * b) * var_x, 0.05)
        sigma_eps = float(np.sqrt(sigma_eps_sq))

        # Heavy-tail noise: exact stratified quantiles of a unit-variance
        # Student-t (mild excess kurtosis pushes the extreme entries toward
        # the paper's 46,347 s maximum), deterministically shuffled.  The
        # shape of the matrix distribution is thus exact, not a lucky draw.
        rng = stream(seed, "cost-matrix")
        q = (np.arange(n * n) + 0.5) / (n * n)
        eps = student_t.ppf(q, NOISE_TAIL_DF) / np.sqrt(
            NOISE_TAIL_DF / (NOISE_TAIL_DF - 2.0)
        )
        eps = eps[rng.permutation(n * n)].reshape(n, n)

        log_mct = a * x[:, None] + b * x[None, :] + sigma_eps * eps
        mct = np.exp(log_mct)
        # Final exact-total scaling (multiplicative: preserves all ratios).
        total = float((w * mct.sum(axis=1)).sum())
        mct *= total_cpu_seconds / total
        return cls(mct=mct, nsep=library.nsep.copy(), seed=seed)

    # ------------------------------------------------------------------
    # the linear time model
    # ------------------------------------------------------------------

    def seconds_per_position(self, receptor: int, ligand: int) -> float:
        """Reference seconds for one starting position, all orientation
        couples — the ``Mct(p1, p2)`` entry used by packaging."""
        return float(self.mct[receptor, ligand])

    def ct_iter(self, receptor: int, ligand: int) -> float:
        """Reference seconds of ``Etot(1, 1, p2, p1)``: one position, one
        orientation couple (formula (1)'s ``ct_iter``)."""
        return float(self.mct[receptor, ligand]) / self.n_couples

    def ct(
        self, receptor: int, ligand: int, n_positions: int, n_rot_couples: int
    ) -> float:
        """Model time for an arbitrary (positions x orientations) slice.

        Exactly linear in both counts — properties 2 and 3 of Section 4.1
        with zero intercept, as the paper assumes.
        """
        if n_positions < 0 or n_rot_couples < 0:
            raise ValueError("counts must be non-negative")
        return self.ct_iter(receptor, ligand) * n_positions * n_rot_couples

    def measured_ct(
        self, receptor: int, ligand: int, n_positions: int, n_rot_couples: int
    ) -> float:
        """A *measured* run time: model time + overhead + reproducible noise.

        Reproducibility (property 1) is literal: the same arguments always
        return the same value, because the jitter is keyed on them — like a
        deterministic program on a quiet machine.
        """
        base = self.ct(receptor, ligand, n_positions, n_rot_couples)
        key = stable_hash64(
            f"measure:{self.seed}:{receptor}:{ligand}:{n_positions}:{n_rot_couples}"
        )
        jitter = np.random.default_rng(key).normal(1.0, MEASUREMENT_JITTER)
        return CALL_OVERHEAD_S + base * max(0.5, float(jitter))

    # ------------------------------------------------------------------
    # aggregates (formula (1) and Table 1)
    # ------------------------------------------------------------------

    def total_reference_cpu(self) -> float:
        """Formula (1): ``sum_{p1,p2} Nsep(p1) * 21 * ct_iter(p1, p2)``."""
        return float((self.nsep.astype(np.float64) * self.mct.sum(axis=1)).sum())

    def statistics(self) -> dict[str, float]:
        """Table 1: statistics of the computing-time matrix, in seconds."""
        flat = self.mct.ravel()
        return {
            "average": float(flat.mean()),
            "standard deviation": float(flat.std(ddof=0)),
            "min": float(flat.min()),
            "max": float(flat.max()),
            "median": float(np.median(flat)),
        }

    def protein_time_shares(self) -> np.ndarray:
        """Fraction of the total time attributable to each protein as a
        receptor: ``Nsep(p) * sum_j Mct(p, j) / total``.

        This per-receptor attribution is what drives the release order and
        the progression curve (Figure 7), and is the reading under which
        the paper's "10 proteins represent 30% of the total processing
        time" holds for the calibrated matrix.
        """
        per_receptor = self.nsep.astype(np.float64) * self.mct.sum(axis=1)
        return per_receptor / per_receptor.sum()

    def top_share(self, k: int = 10) -> float:
        """Combined time share of the ``k`` most expensive proteins."""
        shares = np.sort(self.protein_time_shares())[::-1]
        return float(shares[:k].sum())

    # ------------------------------------------------------------------
    # linearity experiment (Figure 3)
    # ------------------------------------------------------------------

    def linearity_experiment(
        self,
        n_samples: int = constants.LINEARITY_CHECK_COUPLES,
        max_count: int = 21,
        rng: np.random.Generator | None = None,
    ) -> tuple[list[LinearityFit], list[LinearityFit]]:
        """Replay the 400-random-couples linearity check of Section 4.1.

        For each sampled couple, "measure" run times sweeping the orientation
        count at fixed position count and vice versa, fit lines, and return
        the fits ``(rot_fits, sep_fits)``.  The paper's acceptance criterion
        is correlation >= 0.99 throughout.
        """
        if rng is None:
            rng = stream(self.seed, "linearity-experiment")
        rot_fits: list[LinearityFit] = []
        sep_fits: list[LinearityFit] = []
        counts = np.arange(1, max_count + 1)
        for _ in range(n_samples):
            i = int(rng.integers(self.n_proteins))
            j = int(rng.integers(self.n_proteins))
            y_rot = np.array([self.measured_ct(i, j, 1, int(c)) for c in counts])
            y_sep = np.array([self.measured_ct(i, j, int(c), 21) for c in counts])
            rot_fits.append(fit_line(counts, y_rot))
            sep_fits.append(fit_line(counts, y_sep))
        return rot_fits, sep_fits
