"""Simplified protein-protein interaction energy.

The quality of an interaction is "the sum of two contributions; a
Lennard-Jones term and an electrostatic term" (Section 2.1), evaluated on
the reduced protein model — the more negative, the stronger the binding.

Functional forms (standard for reduced docking models):

* Lennard-Jones with Lorentz-like combination ``sigma_ij = r_i + r_j`` and
  geometric well depths, written so the pair minimum sits at ``r = sigma``
  with depth ``eps``:  ``E = eps * ((sigma/r)^12 - 2 (sigma/r)^6)``;
* screened Coulomb with a constant reduced dielectric and a Debye
  exponential:  ``E = 332.0636 * q_i q_j * exp(-r/lambda) / (eps_r * r)``.

Distances are softened (``r^2 -> r^2 + delta^2``) so that energies and
gradients stay finite for overlapping starting configurations — the
minimizer has to be able to start anywhere on the starting grid.

Everything is vectorized over bead pairs; gradients are computed
analytically (per ligand bead) with chunking to bound peak memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..proteins.model import ReducedProtein

__all__ = [
    "COULOMB_CONSTANT",
    "DIELECTRIC",
    "DEBYE_LENGTH_A",
    "SOFTENING_A",
    "EnergyParams",
    "pair_energies",
    "interaction_energy",
    "energy_and_bead_gradient",
]

#: Coulomb constant in kcal*A/(mol*e^2).
COULOMB_CONSTANT = 332.0636

#: Reduced-model relative dielectric constant.
DIELECTRIC = 15.0

#: Debye screening length (Angstrom), implicit-solvent screening.
DEBYE_LENGTH_A = 8.0

#: Distance softening (Angstrom): r_eff^2 = r^2 + SOFTENING_A^2.
SOFTENING_A = 1.0

#: Ligand-bead chunk size for the pairwise kernels; bounds peak memory at
#: roughly ``chunk * n_receptor_beads * 8 bytes * a few arrays``.
_CHUNK = 512


@dataclass(frozen=True)
class EnergyParams:
    """Tunable parameters of the reduced interaction energy.

    The module-level constants are the committed defaults; passing a
    different instance to the kernels supports energy-model ablations
    (implicit-solvent screening strength, dielectric, LJ scaling) without
    global state.
    """

    dielectric: float = DIELECTRIC
    debye_length_a: float = DEBYE_LENGTH_A
    softening_a: float = SOFTENING_A
    lj_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.dielectric <= 0 or self.debye_length_a <= 0:
            raise ValueError("dielectric and Debye length must be positive")
        if self.softening_a < 0 or self.lj_scale < 0:
            raise ValueError("softening and LJ scale must be non-negative")


_DEFAULT_PARAMS = EnergyParams()


def _check_pair_inputs(
    coords_a: np.ndarray, coords_b: np.ndarray, *vectors: np.ndarray
) -> None:
    if coords_a.ndim != 2 or coords_a.shape[1] != 3:
        raise ValueError(f"receptor coords must be (n, 3), got {coords_a.shape}")
    if coords_b.ndim != 2 or coords_b.shape[1] != 3:
        raise ValueError(f"ligand coords must be (m, 3), got {coords_b.shape}")
    for v in vectors:
        if v.ndim != 1:
            raise ValueError("per-bead arrays must be one-dimensional")


def pair_energies(
    coords_a: np.ndarray,
    radii_a: np.ndarray,
    eps_a: np.ndarray,
    charges_a: np.ndarray,
    coords_b: np.ndarray,
    radii_b: np.ndarray,
    eps_b: np.ndarray,
    charges_b: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, float]:
    """Return ``(E_lj, E_elec)`` between two bead sets (kcal/mol).

    Group ``a`` is the receptor, ``b`` the ligand (already transformed into
    the receptor frame).  Pure function of the coordinates: calling it twice
    gives bit-identical results, which mirrors the paper's "reproducible
    computing time/result" property.
    """
    p = params if params is not None else _DEFAULT_PARAMS
    coords_a = np.asarray(coords_a, dtype=np.float64)
    coords_b = np.asarray(coords_b, dtype=np.float64)
    _check_pair_inputs(coords_a, coords_b, radii_a, eps_a, charges_a)

    e_lj = 0.0
    e_elec = 0.0
    soft2 = p.softening_a**2
    for start in range(0, coords_b.shape[0], _CHUNK):
        sl = slice(start, start + _CHUNK)
        delta = coords_b[sl, None, :] - coords_a[None, :, :]
        r2 = (delta**2).sum(axis=2) + soft2
        r = np.sqrt(r2)

        sigma = radii_b[sl, None] + radii_a[None, :]
        eps = np.sqrt(eps_b[sl, None] * eps_a[None, :])
        s2 = sigma**2 / r2
        s6 = s2 * s2 * s2
        e_lj += p.lj_scale * float((eps * (s6 * s6 - 2.0 * s6)).sum())

        qq = charges_b[sl, None] * charges_a[None, :]
        e_elec += float(
            (
                COULOMB_CONSTANT / p.dielectric * qq
                * np.exp(-r / p.debye_length_a) / r
            ).sum()
        )
    return e_lj, e_elec


def interaction_energy(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    rotation: np.ndarray,
    translation: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, float]:
    """``(E_lj, E_elec)`` with the ligand posed by ``R x + t`` in the
    receptor frame."""
    ligand_coords = ligand.transformed(rotation, translation)
    return pair_energies(
        receptor.coords,
        receptor.radii,
        receptor.epsilons,
        receptor.charges,
        ligand_coords,
        ligand.radii,
        ligand.epsilons,
        ligand.charges,
        params=params,
    )


def energy_and_bead_gradient(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    ligand_coords: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, np.ndarray]:
    """Total energy and its gradient w.r.t. each ligand bead position.

    Returns ``(E_lj + E_elec, grad)`` with ``grad`` of shape (m, 3):
    ``grad[j] = dE / d ligand_coords[j]``.  The rigid-body minimizer chains
    this through the pose parametrization.
    """
    p = params if params is not None else _DEFAULT_PARAMS
    ligand_coords = np.asarray(ligand_coords, dtype=np.float64)
    coords_a = receptor.coords
    _check_pair_inputs(coords_a, ligand_coords, receptor.radii)

    total = 0.0
    grad = np.zeros_like(ligand_coords)
    soft2 = p.softening_a**2
    for start in range(0, ligand_coords.shape[0], _CHUNK):
        sl = slice(start, start + _CHUNK)
        delta = ligand_coords[sl, None, :] - coords_a[None, :, :]
        r2 = (delta**2).sum(axis=2) + soft2
        r = np.sqrt(r2)

        sigma = ligand.radii[sl, None] + receptor.radii[None, :]
        eps = p.lj_scale * np.sqrt(
            ligand.epsilons[sl, None] * receptor.epsilons[None, :]
        )
        s2 = sigma**2 / r2
        s6 = s2 * s2 * s2
        e_lj = eps * (s6 * s6 - 2.0 * s6)
        # dE_lj/dr2 = eps * (-6 s12 / r2 + 6 s6 / r2)
        dlj_dr2 = eps * 6.0 * (s6 - s6 * s6) / r2

        qq = ligand.charges[sl, None] * receptor.charges[None, :]
        screen = np.exp(-r / p.debye_length_a)
        e_el = COULOMB_CONSTANT / p.dielectric * qq * screen / r
        # dE_el/dr = -E * (1/r + 1/lambda);  dr/dr2 = 1/(2r)
        del_dr2 = -e_el * (1.0 / r + 1.0 / p.debye_length_a) / (2.0 * r)

        total += float(e_lj.sum() + e_el.sum())
        coeff = 2.0 * (dlj_dr2 + del_dr2)  # dE/dr2 * dr2/ddelta = coeff*delta
        grad[sl] = (coeff[:, :, None] * delta).sum(axis=1)
    return total, grad
