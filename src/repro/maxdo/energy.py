"""Simplified protein-protein interaction energy.

The quality of an interaction is "the sum of two contributions; a
Lennard-Jones term and an electrostatic term" (Section 2.1), evaluated on
the reduced protein model — the more negative, the stronger the binding.

Functional forms (standard for reduced docking models):

* Lennard-Jones with Lorentz-like combination ``sigma_ij = r_i + r_j`` and
  geometric well depths, written so the pair minimum sits at ``r = sigma``
  with depth ``eps``:  ``E = eps * ((sigma/r)^12 - 2 (sigma/r)^6)``;
* screened Coulomb with a constant reduced dielectric and a Debye
  exponential:  ``E = 332.0636 * q_i q_j * exp(-r/lambda) / (eps_r * r)``.

Distances are softened (``r^2 -> r^2 + delta^2``) so that energies and
gradients stay finite for overlapping starting configurations — the
minimizer has to be able to start anywhere on the starting grid.

Everything is vectorized over bead pairs; gradients are computed
analytically (per ligand bead) with chunking to bound peak memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..proteins.model import ReducedProtein

if TYPE_CHECKING:  # pairtable imports from this module; annotate lazily.
    from .pairtable import PairTable

__all__ = [
    "COULOMB_CONSTANT",
    "DIELECTRIC",
    "DEBYE_LENGTH_A",
    "SOFTENING_A",
    "EnergyParams",
    "pair_energies",
    "interaction_energy",
    "energy_and_bead_gradient",
    "batch_pose_coords",
    "batch_interaction_energy",
    "batch_energy_and_pose_gradient",
]

#: Coulomb constant in kcal*A/(mol*e^2).
COULOMB_CONSTANT = 332.0636

#: Reduced-model relative dielectric constant.
DIELECTRIC = 15.0

#: Debye screening length (Angstrom), implicit-solvent screening.
DEBYE_LENGTH_A = 8.0

#: Distance softening (Angstrom): r_eff^2 = r^2 + SOFTENING_A^2.
SOFTENING_A = 1.0

#: Ligand-bead chunk size for the pairwise kernels; bounds peak memory at
#: roughly ``chunk * n_receptor_beads * 8 bytes * a few arrays``.
_CHUNK = 512

#: Pair entries (pose * ligand bead * receptor bead) per chunk of the
#: batched kernels; bounds the (B_chunk, m, n) intermediates so a chunk's
#: working set streams through cache instead of thrashing it.
_BATCH_PAIR_BUDGET = 1 << 19


@dataclass(frozen=True)
class EnergyParams:
    """Tunable parameters of the reduced interaction energy.

    The module-level constants are the committed defaults; passing a
    different instance to the kernels supports energy-model ablations
    (implicit-solvent screening strength, dielectric, LJ scaling) without
    global state.
    """

    dielectric: float = DIELECTRIC
    debye_length_a: float = DEBYE_LENGTH_A
    softening_a: float = SOFTENING_A
    lj_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.dielectric <= 0 or self.debye_length_a <= 0:
            raise ValueError("dielectric and Debye length must be positive")
        if self.softening_a < 0 or self.lj_scale < 0:
            raise ValueError("softening and LJ scale must be non-negative")


_DEFAULT_PARAMS = EnergyParams()


def _check_pair_inputs(
    coords_a: np.ndarray, coords_b: np.ndarray, *vectors: np.ndarray
) -> None:
    if coords_a.ndim != 2 or coords_a.shape[1] != 3:
        raise ValueError(f"receptor coords must be (n, 3), got {coords_a.shape}")
    if coords_b.ndim != 2 or coords_b.shape[1] != 3:
        raise ValueError(f"ligand coords must be (m, 3), got {coords_b.shape}")
    for v in vectors:
        if v.ndim != 1:
            raise ValueError("per-bead arrays must be one-dimensional")


def pair_energies(
    coords_a: np.ndarray,
    radii_a: np.ndarray,
    eps_a: np.ndarray,
    charges_a: np.ndarray,
    coords_b: np.ndarray,
    radii_b: np.ndarray,
    eps_b: np.ndarray,
    charges_b: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, float]:
    """Return ``(E_lj, E_elec)`` between two bead sets (kcal/mol).

    Group ``a`` is the receptor, ``b`` the ligand (already transformed into
    the receptor frame).  Pure function of the coordinates: calling it twice
    gives bit-identical results, which mirrors the paper's "reproducible
    computing time/result" property.
    """
    p = params if params is not None else _DEFAULT_PARAMS
    coords_a = np.asarray(coords_a, dtype=np.float64)
    coords_b = np.asarray(coords_b, dtype=np.float64)
    _check_pair_inputs(coords_a, coords_b, radii_a, eps_a, charges_a)

    e_lj = 0.0
    e_elec = 0.0
    soft2 = p.softening_a**2
    for start in range(0, coords_b.shape[0], _CHUNK):
        sl = slice(start, start + _CHUNK)
        delta = coords_b[sl, None, :] - coords_a[None, :, :]
        r2 = (delta**2).sum(axis=2) + soft2
        r = np.sqrt(r2)

        sigma = radii_b[sl, None] + radii_a[None, :]
        eps = np.sqrt(eps_b[sl, None] * eps_a[None, :])
        s2 = sigma**2 / r2
        s6 = s2 * s2 * s2
        e_lj += p.lj_scale * float((eps * (s6 * s6 - 2.0 * s6)).sum())

        qq = charges_b[sl, None] * charges_a[None, :]
        e_elec += float(
            (
                COULOMB_CONSTANT / p.dielectric * qq
                * np.exp(-r / p.debye_length_a) / r
            ).sum()
        )
    return e_lj, e_elec


def interaction_energy(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    rotation: np.ndarray,
    translation: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, float]:
    """``(E_lj, E_elec)`` with the ligand posed by ``R x + t`` in the
    receptor frame."""
    ligand_coords = ligand.transformed(rotation, translation)
    return pair_energies(
        receptor.coords,
        receptor.radii,
        receptor.epsilons,
        receptor.charges,
        ligand_coords,
        ligand.radii,
        ligand.epsilons,
        ligand.charges,
        params=params,
    )


def energy_and_bead_gradient(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    ligand_coords: np.ndarray,
    params: EnergyParams | None = None,
) -> tuple[float, np.ndarray]:
    """Total energy and its gradient w.r.t. each ligand bead position.

    Returns ``(E_lj + E_elec, grad)`` with ``grad`` of shape (m, 3):
    ``grad[j] = dE / d ligand_coords[j]``.  The rigid-body minimizer chains
    this through the pose parametrization.
    """
    p = params if params is not None else _DEFAULT_PARAMS
    ligand_coords = np.asarray(ligand_coords, dtype=np.float64)
    coords_a = receptor.coords
    _check_pair_inputs(coords_a, ligand_coords, receptor.radii)

    total = 0.0
    grad = np.zeros_like(ligand_coords)
    soft2 = p.softening_a**2
    for start in range(0, ligand_coords.shape[0], _CHUNK):
        sl = slice(start, start + _CHUNK)
        delta = ligand_coords[sl, None, :] - coords_a[None, :, :]
        r2 = (delta**2).sum(axis=2) + soft2
        r = np.sqrt(r2)

        sigma = ligand.radii[sl, None] + receptor.radii[None, :]
        eps = p.lj_scale * np.sqrt(
            ligand.epsilons[sl, None] * receptor.epsilons[None, :]
        )
        s2 = sigma**2 / r2
        s6 = s2 * s2 * s2
        e_lj = eps * (s6 * s6 - 2.0 * s6)
        # dE_lj/dr2 = eps * (-6 s12 / r2 + 6 s6 / r2)
        dlj_dr2 = eps * 6.0 * (s6 - s6 * s6) / r2

        qq = ligand.charges[sl, None] * receptor.charges[None, :]
        screen = np.exp(-r / p.debye_length_a)
        e_el = COULOMB_CONSTANT / p.dielectric * qq * screen / r
        # dE_el/dr = -E * (1/r + 1/lambda);  dr/dr2 = 1/(2r)
        del_dr2 = -e_el * (1.0 / r + 1.0 / p.debye_length_a) / (2.0 * r)

        total += float(e_lj.sum() + e_el.sum())
        coeff = 2.0 * (dlj_dr2 + del_dr2)  # dE/dr2 * dr2/ddelta = coeff*delta
        grad[sl] = (coeff[:, :, None] * delta).sum(axis=1)
    return total, grad


def _check_poses(poses: np.ndarray) -> np.ndarray:
    poses = np.asarray(poses, dtype=np.float64)
    if poses.ndim != 2 or poses.shape[1] != 6:
        raise ValueError(f"poses must be (B, 6), got {poses.shape}")
    return poses


def batch_pose_coords(ligand: ReducedProtein, poses: np.ndarray) -> np.ndarray:
    """Ligand bead coordinates for a ``(B, 6)`` batch of rigid poses.

    A pose is ``(x, y, z, alpha, beta, gamma)``: mass-center translation
    followed by ZYZ Euler angles.  Returns ``(B, m, 3)``.  The rotations
    are composed by the same left-associated matrix products as the scalar
    path (``Rz(a) @ Ry(b) @ Rz(g)``), keeping coordinates bit-identical to
    :meth:`~repro.proteins.model.ReducedProtein.transformed`.
    """
    from .orientations import _ry_batch, _rz_batch

    poses = _check_poses(poses)
    rot = _rz_batch(poses[:, 3]) @ _ry_batch(poses[:, 4]) @ _rz_batch(poses[:, 5])
    return np.matmul(ligand.coords, rot.transpose(0, 2, 1)) + poses[:, None, :3]


def _batch_chunks(n_poses: int, pairs_per_pose: int):
    """Yield batch slices keeping ``chunk * pairs_per_pose`` bounded."""
    step = max(1, _BATCH_PAIR_BUDGET // max(1, pairs_per_pose))
    for start in range(0, n_poses, step):
        yield slice(start, min(start + step, n_poses))


#: Reusable (A, m, n) scratch buffers for the fused kernels, keyed by
#: ``(m, n)`` and grown to the largest pose-chunk seen.  Reusing them
#: avoids first-touch page faults on multi-MB allocations every minimizer
#: round.  Kernel calls are single-threaded per process (parallelism is
#: process-based), and every element is overwritten before it is read.
_SCRATCH: dict[tuple[int, int], tuple[int, list[np.ndarray]]] = {}


def _scratch_buffers(n_chunk: int, m: int, n: int, count: int) -> list[np.ndarray]:
    key = (m, n)
    entry = _SCRATCH.get(key)
    if entry is None or entry[0] < n_chunk or len(entry[1]) < count:
        _SCRATCH.clear()  # keep at most one couple's worth of scratch
        bufs = [np.empty((n_chunk, m, n)) for _ in range(count)]
        _SCRATCH[key] = (n_chunk, bufs)
        entry = _SCRATCH[key]
    return [buf[:n_chunk] for buf in entry[1][:count]]


def _fused_ready(n_lig: int) -> bool:
    """Fused C kernels apply when compiled and the ligand fits one chunk.

    The scalar kernels accumulate per ligand chunk of ``_CHUNK`` beads;
    the fused path has no ligand chunking, so beyond one chunk its
    summation order would no longer mirror the reference.  Every protein
    in the reduced-model library is far below that bound.
    """
    from . import _fused

    return n_lig <= _CHUNK and _fused.load() is not None


def batch_interaction_energy(
    table: "PairTable", poses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pose ``(E_lj, E_elec)`` for a ``(B, 6)`` pose batch, kcal/mol.

    The batched counterpart of :func:`pair_energies`, evaluated over the
    precomputed :class:`~repro.maxdo.pairtable.PairTable` combination
    arrays in pose chunks of shape ``(B_chunk, m, n)`` — through the fused
    C kernels when available, otherwise a numpy broadcast with the scalar
    kernel's exact accumulation order.  Both paths are bit-identical to
    the reference kernel.  Returns two ``(B,)`` arrays.
    """
    from . import _fused

    poses = _check_poses(poses)
    p = table.params
    coords = batch_pose_coords(table.ligand, poses)
    rec = np.ascontiguousarray(table.receptor.coords)
    n_poses, n_lig = poses.shape[0], coords.shape[1]
    n_rec = rec.shape[0]
    e_lj = np.zeros(n_poses)
    e_elec = np.zeros(n_poses)
    soft2 = p.softening_a**2

    if _fused_ready(n_lig):
        for sl in _batch_chunks(n_poses, table.sigma2.size):
            chunk = np.ascontiguousarray(coords[sl])
            r2, targ, lj_arr, el_arr = _scratch_buffers(
                chunk.shape[0], n_lig, n_rec, 4
            )
            _fused.phase_a(chunk, rec, soft2, p.debye_length_a, r2, targ)
            screen = np.exp(targ, out=targ)
            _fused.phase_energy(
                r2, screen, table.sigma2, table.eps_geom, table.q_coef,
                lj_arr, el_arr,
            )
            e_lj[sl] += p.lj_scale * lj_arr.sum(axis=(1, 2))
            e_elec[sl] += el_arr.sum(axis=(1, 2))
        return e_lj, e_elec

    for sl in _batch_chunks(n_poses, table.sigma2.size):
        for start in range(0, n_lig, _CHUNK):
            ls = slice(start, start + _CHUNK)
            delta = coords[sl, ls, None, :] - rec[None, None, :, :]
            r2 = (delta**2).sum(axis=3) + soft2
            r = np.sqrt(r2)
            s2 = table.sigma2[None, ls, :] / r2
            s6 = s2 * s2 * s2
            e_lj[sl] += p.lj_scale * (
                table.eps_geom[None, ls, :] * (s6 * s6 - 2.0 * s6)
            ).sum(axis=(1, 2))
            e_elec[sl] += (
                table.q_coef[None, ls, :] * np.exp(-r / p.debye_length_a) / r
            ).sum(axis=(1, 2))
    return e_lj, e_elec


def batch_energy_and_pose_gradient(
    table: "PairTable", poses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pose total energy and analytic 6-DoF gradient for a pose batch.

    Returns ``(energy, grad)`` with shapes ``(B,)`` and ``(B, 6)``:
    ``grad[b, :3]`` is ``dE/d translation`` and ``grad[b, 3:]`` the Euler
    chain rule of :func:`repro.maxdo.minimize.pose_gradient`, vectorized
    over the batch.  Bit-identical to the scalar
    ``pose_gradient``/:func:`energy_and_bead_gradient` composition: same
    chunk accumulation order, same operation association — which is what
    lets the batched minimizer reproduce the reference trajectories
    exactly.
    """
    from .orientations import _ry_batch, _rz_batch

    poses = _check_poses(poses)
    p = table.params
    coords = batch_pose_coords(table.ligand, poses)
    rec = table.receptor.coords
    lig_local = table.ligand.coords
    n_poses, n_lig = poses.shape[0], coords.shape[1]
    energy = np.zeros(n_poses)
    grad = np.empty((n_poses, 6))
    soft2 = p.softening_a**2

    # dR/d(alpha,beta,gamma) per pose, composed exactly as the scalar path.
    alpha, beta, gamma = poses[:, 3], poses[:, 4], poses[:, 5]
    rz_a, ry_b, rz_g = _rz_batch(alpha), _ry_batch(beta), _rz_batch(gamma)
    drot = (
        _rz_batch(alpha, derivative=True) @ ry_b @ rz_g,
        rz_a @ _ry_batch(beta, derivative=True) @ rz_g,
        rz_a @ ry_b @ _rz_batch(gamma, derivative=True),
    )

    fused = _fused_ready(n_lig)
    n_rec = rec.shape[0]
    if fused:
        rec = np.ascontiguousarray(rec)
    for sl in _batch_chunks(n_poses, table.sigma2.size):
        if fused:
            from . import _fused

            chunk = np.ascontiguousarray(coords[sl])
            r2, targ, lj_arr, el_arr = _scratch_buffers(
                chunk.shape[0], n_lig, n_rec, 4
            )
            _fused.phase_a(chunk, rec, soft2, p.debye_length_a, r2, targ)
            screen = np.exp(targ, out=targ)
            bead_grad = np.empty_like(chunk)
            _fused.phase_grad(
                chunk, rec, r2, screen,
                table.sigma2, table.eps_lj, table.q_coef,
                p.debye_length_a, lj_arr, el_arr, bead_grad,
            )
            energy[sl] += lj_arr.sum(axis=(1, 2)) + el_arr.sum(axis=(1, 2))
        else:
            bead_grad = np.empty_like(coords[sl])
            for start in range(0, n_lig, _CHUNK):
                ls = slice(start, start + _CHUNK)
                delta = coords[sl, ls, None, :] - rec[None, None, :, :]
                r2 = (delta**2).sum(axis=3) + soft2
                r = np.sqrt(r2)
                s2 = table.sigma2[None, ls, :] / r2
                s6 = s2 * s2 * s2
                eps = table.eps_lj[None, ls, :]
                e_lj = eps * (s6 * s6 - 2.0 * s6)
                dlj_dr2 = eps * 6.0 * (s6 - s6 * s6) / r2

                screen = np.exp(-r / p.debye_length_a)
                e_el = table.q_coef[None, ls, :] * screen / r
                del_dr2 = -e_el * (
                    1.0 / r + 1.0 / p.debye_length_a
                ) / (2.0 * r)

                energy[sl] += e_lj.sum(axis=(1, 2)) + e_el.sum(axis=(1, 2))
                coeff = 2.0 * (dlj_dr2 + del_dr2)
                bead_grad[:, ls] = (coeff[:, :, :, None] * delta).sum(axis=2)
        grad[sl, :3] = bead_grad.sum(axis=1)
        for k in range(3):
            rotated = np.matmul(lig_local, drot[k][sl].transpose(0, 2, 1))
            grad[sl, 3 + k] = (bead_grad * rotated).sum(axis=(1, 2))
    return energy, grad
