"""Rigid-body interaction-energy minimization.

MAXDo searches optimal interaction geometries "using multiple energy
minimizations with a regular array of starting positions and orientations"
(Section 2).  The minimization runs over the six rigid-body degrees of
freedom of the ligand: the mass-center translation ``(x, y, z)`` and the
ZYZ Euler orientation ``(alpha, beta, gamma)``.

The objective gradient is analytic: per-bead energy gradients from
:func:`repro.maxdo.energy.energy_and_bead_gradient` are chained through the
pose parametrization (``d pose / d translation`` is the identity;
``d pose / d angle`` uses the analytic Euler-derivative matrices), then fed
to scipy's L-BFGS-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from ..proteins.model import ReducedProtein
from .energy import (
    EnergyParams,
    batch_energy_and_pose_gradient,
    batch_interaction_energy,
    energy_and_bead_gradient,
    interaction_energy,
)
from .orientations import rotation_matrix
from .pairtable import pair_table

__all__ = [
    "MinimizationResult",
    "BatchMinimizationResult",
    "minimize_rigid",
    "minimize_rigid_batch",
    "pose_gradient",
]


def _rz(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def _ry(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def _drz(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[-s, -c, 0.0], [c, -s, 0.0], [0.0, 0.0, 0.0]])


def _dry(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[-s, 0.0, c], [0.0, 0.0, 0.0], [-c, 0.0, -s]])


def pose_gradient(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    params: np.ndarray,
    energy_params: EnergyParams | None = None,
) -> tuple[float, np.ndarray]:
    """Energy and gradient w.r.t. the 6 pose parameters ``(t, euler)``."""
    t = params[:3]
    alpha, beta, gamma = params[3:]
    rz_a, ry_b, rz_g = _rz(alpha), _ry(beta), _rz(gamma)
    rot = rz_a @ ry_b @ rz_g
    coords = ligand.coords @ rot.T + t
    energy, bead_grad = energy_and_bead_gradient(
        receptor, ligand, coords, params=energy_params
    )

    grad = np.empty(6)
    grad[:3] = bead_grad.sum(axis=0)
    for k, drot in enumerate(
        (
            _drz(alpha) @ ry_b @ rz_g,
            rz_a @ _dry(beta) @ rz_g,
            rz_a @ ry_b @ _drz(gamma),
        )
    ):
        # dE/dtheta = sum_j bead_grad[j] . (dR/dtheta x_j)
        grad[3 + k] = float((bead_grad * (ligand.coords @ drot.T)).sum())
    return energy, grad


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one rigid-body minimization."""

    energy_lj: float
    energy_elec: float
    translation: np.ndarray  #: optimal mass-center position (3,)
    euler: np.ndarray  #: optimal ZYZ angles (3,)
    n_evaluations: int  #: objective evaluations spent
    converged: bool

    @property
    def energy_total(self) -> float:
        """Total interaction energy ``E_lj + E_elec`` (kcal/mol)."""
        return self.energy_lj + self.energy_elec


def minimize_rigid(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    start_translation: np.ndarray,
    start_euler: np.ndarray,
    max_iterations: int = 200,
    translation_window: float = 15.0,
    energy_params: EnergyParams | None = None,
) -> MinimizationResult:
    """Minimize the interaction energy from one starting pose.

    ``translation_window`` bounds how far (Angstrom, per axis) the mass
    center may drift from its starting position — each starting position
    explores its own basin, as intended by the regular-array search; without
    the bound every run would escape to infinity whenever the local basin is
    repulsive (net energy ~ 0 at large separation).
    """
    start_translation = np.asarray(start_translation, dtype=np.float64)
    start_euler = np.asarray(start_euler, dtype=np.float64)
    if start_translation.shape != (3,) or start_euler.shape != (3,):
        raise ValueError("start_translation and start_euler must have shape (3,)")

    x0 = np.concatenate([start_translation, start_euler])
    bounds = [
        (x0[i] - translation_window, x0[i] + translation_window) for i in range(3)
    ] + [(None, None)] * 3

    evaluations = 0

    def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal evaluations
        evaluations += 1
        return pose_gradient(receptor, ligand, params, energy_params)

    result = scipy_minimize(
        objective,
        x0,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": max_iterations},
    )
    rot = rotation_matrix(*result.x[3:])
    e_lj, e_elec = interaction_energy(
        receptor, ligand, rot, result.x[:3], params=energy_params
    )
    return MinimizationResult(
        energy_lj=e_lj,
        energy_elec=e_elec,
        translation=result.x[:3].copy(),
        euler=result.x[3:].copy(),
        n_evaluations=evaluations,
        converged=bool(result.success),
    )


@dataclass(frozen=True)
class BatchMinimizationResult:
    """Outcome of a batch of rigid-body minimizations (one pose per row)."""

    energy_lj: np.ndarray  #: (B,) final Lennard-Jones energies
    energy_elec: np.ndarray  #: (B,) final electrostatic energies
    translations: np.ndarray  #: (B, 3) optimal mass-center positions
    eulers: np.ndarray  #: (B, 3) optimal ZYZ angles
    n_iterations: int  #: outer batch iterations performed
    n_evaluations: int  #: pose evaluations spent, summed over the batch
    converged: np.ndarray  #: (B,) bool, per-pose convergence flags

    @property
    def energy_total(self) -> np.ndarray:
        """Total interaction energies ``E_lj + E_elec`` (kcal/mol)."""
        return self.energy_lj + self.energy_elec

    def __len__(self) -> int:
        return self.energy_lj.shape[0]


# scipy's minimize(method="L-BFGS-B") defaults, mirrored so the lockstep
# driver below follows the reference algorithm parameter-for-parameter.
_LBFGS_M = 10
_FACTR = 1e7
_PGTOL = 1e-5
_MAXLS = 20
_MAXFUN = 15000

try:  # the reverse-communication core scipy's own driver loop wraps
    from scipy.optimize import _lbfgsb as _lbfgsb_core
except ImportError:  # pragma: no cover - scipy internals moved
    _lbfgsb_core = None


class _LockstepState:
    """Per-pose ``setulb`` reverse-communication workspace.

    One instance drives one pose through the same L-BFGS-B state machine
    that :func:`minimize_rigid` delegates to scipy — identical algorithm,
    identical defaults — but yields control whenever the routine asks for
    an objective evaluation, so the batch driver can answer every pending
    request with a single fused kernel dispatch.
    """

    __slots__ = (
        "x", "f", "g", "low", "up", "nbd", "wa", "iwa", "task", "ln_task",
        "lsave", "isave", "dsave", "n_iterations", "nfev", "done", "success",
    )

    def __init__(self, x0: np.ndarray, lower: np.ndarray, upper: np.ndarray):
        n = x0.shape[0]
        m = _LBFGS_M
        self.x = np.array(x0, dtype=np.float64)
        self.f = np.array(0.0, dtype=np.float64)
        self.g = np.zeros(n, dtype=np.float64)
        self.low = np.where(np.isfinite(lower), lower, 0.0)
        self.up = np.where(np.isfinite(upper), upper, 0.0)
        nbd = np.zeros(n, dtype=np.int32)
        nbd[np.isfinite(lower) & np.isfinite(upper)] = 2
        nbd[np.isfinite(lower) & ~np.isfinite(upper)] = 1
        nbd[~np.isfinite(lower) & np.isfinite(upper)] = 3
        self.nbd = nbd
        self.wa = np.zeros(2 * m * n + 5 * n + 11 * m * m + 8 * m, np.float64)
        self.iwa = np.zeros(3 * n, dtype=np.int32)
        self.task = np.zeros(2, dtype=np.int32)
        self.ln_task = np.zeros(2, dtype=np.int32)
        self.lsave = np.zeros(4, dtype=np.int32)
        self.isave = np.zeros(44, dtype=np.int32)
        self.dsave = np.zeros(29, dtype=np.float64)
        self.n_iterations = 0
        self.nfev = 0
        self.done = False
        self.success = False

    def advance(self, max_iterations: int) -> bool:
        """Run the state machine until it wants ``(f, g)`` or finishes.

        Returns True when the pose is requesting an evaluation at
        ``self.x``; False when it has terminated (``self.done``).  Mirrors
        the reference driver loop in ``scipy.optimize._lbfgsb_py``,
        including the iteration/evaluation stop conditions.
        """
        while True:
            _lbfgsb_core.setulb(
                _LBFGS_M, self.x, self.low, self.up, self.nbd, self.f,
                self.g, _FACTR, _PGTOL, self.wa, self.iwa, self.task,
                self.lsave, self.isave, self.dsave, _MAXLS, self.ln_task,
            )
            if self.task[0] == 3:  # FG request
                self.nfev += 1
                return True
            if self.task[0] == 1:  # new iteration
                self.n_iterations += 1
                if self.n_iterations >= max_iterations:
                    self.task[0] = 5
                    self.task[1] = 504
                elif self.nfev > _MAXFUN:
                    self.task[0] = 5
                    self.task[1] = 502
                continue
            self.done = True
            self.success = bool(self.task[0] == 4)
            return False



def minimize_rigid_batch(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    start_translations: np.ndarray,
    start_eulers: np.ndarray,
    max_iterations: int = 200,
    translation_window: float = 15.0,
    energy_params: EnergyParams | None = None,
) -> BatchMinimizationResult:
    """Minimize a batch of rigid poses simultaneously (the batched engine).

    The batched counterpart of :func:`minimize_rigid`: every pose runs the
    *same* L-BFGS-B state machine as the scalar reference (scipy's
    reverse-communication ``setulb`` core with scipy's defaults), but all
    poses advance in lockstep and every round of pending objective requests
    is answered by one fused
    :func:`repro.maxdo.energy.batch_energy_and_pose_gradient` dispatch over
    the couple's cached :class:`~repro.maxdo.pairtable.PairTable`.  Poses
    that converge drop out of the evaluation batch (active-set freezing),
    so late stragglers don't pay for the whole batch.

    One starting position's 210 orientations thus cost a few hundred large
    numpy dispatches instead of ~10^4 tiny ones, while final poses agree
    with the scalar oracle to optimizer tolerance (same algorithm, same
    analytic gradients — see ``tests/test_maxdo_batched.py``).

    ``start_translations`` and ``start_eulers`` are ``(B, 3)`` arrays; the
    per-axis ``translation_window`` box is identical to the scalar path's.
    """
    start_t = np.atleast_2d(np.asarray(start_translations, dtype=np.float64))
    start_e = np.atleast_2d(np.asarray(start_eulers, dtype=np.float64))
    if start_t.shape[1:] != (3,) or start_e.shape[1:] != (3,):
        raise ValueError("start translations and eulers must have shape (B, 3)")
    if start_t.shape[0] != start_e.shape[0]:
        raise ValueError(
            f"batch size mismatch: {start_t.shape[0]} translations vs "
            f"{start_e.shape[0]} orientations"
        )
    n_poses = start_t.shape[0]
    x0 = np.hstack([start_t, start_e])

    if _lbfgsb_core is None:  # pragma: no cover - scipy internals moved
        results = [
            minimize_rigid(
                receptor, ligand, x0[b, :3], x0[b, 3:],
                max_iterations=max_iterations,
                translation_window=translation_window,
                energy_params=energy_params,
            )
            for b in range(n_poses)
        ]
        return BatchMinimizationResult(
            energy_lj=np.array([r.energy_lj for r in results]),
            energy_elec=np.array([r.energy_elec for r in results]),
            translations=np.array([r.translation for r in results]),
            eulers=np.array([r.euler for r in results]),
            n_iterations=max_iterations,
            n_evaluations=sum(r.n_evaluations for r in results),
            converged=np.array([r.converged for r in results]),
        )

    table = pair_table(receptor, ligand, energy_params)
    lower = np.full(6, -np.inf)
    upper = np.full(6, np.inf)
    states = []
    for b in range(n_poses):
        lower[:3] = x0[b, :3] - translation_window
        upper[:3] = x0[b, :3] + translation_window
        states.append(_LockstepState(x0[b], lower, upper))

    rounds = 0
    active = [s for s in states if s.advance(max_iterations)]
    while active:
        rounds += 1
        batch_x = np.stack([s.x for s in active])
        energy, grad = batch_energy_and_pose_gradient(table, batch_x)
        for i, state in enumerate(active):
            state.f = np.float64(energy[i])
            state.g = grad[i].copy()
        active = [s for s in active if s.advance(max_iterations)]

    x = np.stack([s.x for s in states])
    e_lj, e_elec = batch_interaction_energy(table, x)
    return BatchMinimizationResult(
        energy_lj=e_lj,
        energy_elec=e_elec,
        translations=x[:, :3].copy(),
        eulers=x[:, 3:].copy(),
        n_iterations=rounds,
        n_evaluations=sum(s.nfev for s in states) + n_poses,
        converged=np.array([s.success for s in states], dtype=bool),
    )
