"""Rigid-body interaction-energy minimization.

MAXDo searches optimal interaction geometries "using multiple energy
minimizations with a regular array of starting positions and orientations"
(Section 2).  The minimization runs over the six rigid-body degrees of
freedom of the ligand: the mass-center translation ``(x, y, z)`` and the
ZYZ Euler orientation ``(alpha, beta, gamma)``.

The objective gradient is analytic: per-bead energy gradients from
:func:`repro.maxdo.energy.energy_and_bead_gradient` are chained through the
pose parametrization (``d pose / d translation`` is the identity;
``d pose / d angle`` uses the analytic Euler-derivative matrices), then fed
to scipy's L-BFGS-B.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from ..proteins.model import ReducedProtein
from .energy import EnergyParams, energy_and_bead_gradient, interaction_energy
from .orientations import rotation_matrix

__all__ = ["MinimizationResult", "minimize_rigid", "pose_gradient"]


def _rz(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def _ry(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def _drz(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[-s, -c, 0.0], [c, -s, 0.0], [0.0, 0.0, 0.0]])


def _dry(a: float) -> np.ndarray:
    c, s = np.cos(a), np.sin(a)
    return np.array([[-s, 0.0, c], [0.0, 0.0, 0.0], [-c, 0.0, -s]])


def pose_gradient(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    params: np.ndarray,
    energy_params: EnergyParams | None = None,
) -> tuple[float, np.ndarray]:
    """Energy and gradient w.r.t. the 6 pose parameters ``(t, euler)``."""
    t = params[:3]
    alpha, beta, gamma = params[3:]
    rz_a, ry_b, rz_g = _rz(alpha), _ry(beta), _rz(gamma)
    rot = rz_a @ ry_b @ rz_g
    coords = ligand.coords @ rot.T + t
    energy, bead_grad = energy_and_bead_gradient(
        receptor, ligand, coords, params=energy_params
    )

    grad = np.empty(6)
    grad[:3] = bead_grad.sum(axis=0)
    for k, drot in enumerate(
        (
            _drz(alpha) @ ry_b @ rz_g,
            rz_a @ _dry(beta) @ rz_g,
            rz_a @ ry_b @ _drz(gamma),
        )
    ):
        # dE/dtheta = sum_j bead_grad[j] . (dR/dtheta x_j)
        grad[3 + k] = float((bead_grad * (ligand.coords @ drot.T)).sum())
    return energy, grad


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one rigid-body minimization."""

    energy_lj: float
    energy_elec: float
    translation: np.ndarray  #: optimal mass-center position (3,)
    euler: np.ndarray  #: optimal ZYZ angles (3,)
    n_evaluations: int  #: objective evaluations spent
    converged: bool

    @property
    def energy_total(self) -> float:
        """Total interaction energy ``E_lj + E_elec`` (kcal/mol)."""
        return self.energy_lj + self.energy_elec


def minimize_rigid(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    start_translation: np.ndarray,
    start_euler: np.ndarray,
    max_iterations: int = 200,
    translation_window: float = 15.0,
    energy_params: EnergyParams | None = None,
) -> MinimizationResult:
    """Minimize the interaction energy from one starting pose.

    ``translation_window`` bounds how far (Angstrom, per axis) the mass
    center may drift from its starting position — each starting position
    explores its own basin, as intended by the regular-array search; without
    the bound every run would escape to infinity whenever the local basin is
    repulsive (net energy ~ 0 at large separation).
    """
    start_translation = np.asarray(start_translation, dtype=np.float64)
    start_euler = np.asarray(start_euler, dtype=np.float64)
    if start_translation.shape != (3,) or start_euler.shape != (3,):
        raise ValueError("start_translation and start_euler must have shape (3,)")

    x0 = np.concatenate([start_translation, start_euler])
    bounds = [
        (x0[i] - translation_window, x0[i] + translation_window) for i in range(3)
    ] + [(None, None)] * 3

    evaluations = 0

    def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal evaluations
        evaluations += 1
        return pose_gradient(receptor, ligand, params, energy_params)

    result = scipy_minimize(
        objective,
        x0,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": max_iterations},
    )
    rot = rotation_matrix(*result.x[3:])
    e_lj, e_elec = interaction_energy(
        receptor, ligand, rot, result.x[:3], params=energy_params
    )
    return MinimizationResult(
        energy_lj=e_lj,
        energy_elec=e_elec,
        translation=result.x[:3].copy(),
        euler=result.x[3:].copy(),
        n_evaluations=evaluations,
        converged=bool(result.success),
    )
