"""Pose-invariant pair tables for the batched docking kernels.

Every term of the reduced interaction energy factors into a part that
depends only on *which* beads interact (the Lorentz combination
``sigma = r_i + r_j``, the geometric well depth ``sqrt(eps_i eps_j)``, the
charge product ``k q_i q_j / eps_r``) and a part that depends on the pose
(the distances).  The reference kernels recombine the bead part on every
call — ~10^4–10^5 times per workunit, once per minimizer line-search step.
A :class:`PairTable` precomputes those combination arrays once per
``(receptor, ligand, EnergyParams)`` and the batched kernels in
:mod:`repro.maxdo.energy` reuse them across every pose of every starting
position of the couple.

Tables are served through a small identity-keyed LRU cache
(:func:`pair_table`): a couple docked across many positions — or resumed
from a checkpoint — builds its table exactly once.  The cache holds strong
references to the proteins it keys on, so the ``id``-based keys can never
alias a dead object.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from ..proteins.model import ReducedProtein
from .energy import COULOMB_CONSTANT, EnergyParams

__all__ = ["PairTable", "pair_table", "cache_info", "cache_clear"]

#: Maximum number of cached tables; a workunit touches one couple, the
#: science sweeps a handful at a time.
_CACHE_MAX = 8


@dataclass(frozen=True, eq=False)
class PairTable:
    """Precomputed per-couple combination arrays, ligand-major ``(m, n)``.

    ``sigma2[j, i] = (r_j + r_i)^2``, ``eps_lj = lj_scale * sqrt(e_j e_i)``
    and ``q_coef = k q_j q_i / eps_r`` for ligand bead ``j`` against
    receptor bead ``i`` — everything the pairwise kernels need besides the
    pose-dependent distances.
    """

    receptor: ReducedProtein
    ligand: ReducedProtein
    params: EnergyParams
    sigma2: np.ndarray  #: (m, n) squared Lorentz radii sums
    eps_geom: np.ndarray  #: (m, n) geometric-mean well depths (unscaled)
    eps_lj: np.ndarray  #: (m, n) ``lj_scale``-scaled well depths
    q_coef: np.ndarray  #: (m, n) Coulomb prefactor * charge products

    @classmethod
    def build(
        cls,
        receptor: ReducedProtein,
        ligand: ReducedProtein,
        params: EnergyParams | None = None,
    ) -> "PairTable":
        """Compute the combination arrays for one couple (uncached).

        Operation association mirrors the scalar kernels exactly (e.g.
        ``(k/eps_r) * qq`` with ``qq`` the charge outer product), so the
        batched kernels are bit-identical to the reference path, not merely
        close — the batched minimizer then follows the very same descent
        trajectories.  Both the unscaled well depths (the energy kernel
        applies ``lj_scale`` after summation, as :func:`pair_energies`
        does) and the pre-scaled ones (the gradient kernel applies it per
        element, as :func:`energy_and_bead_gradient` does) are kept.
        """
        p = params if params is not None else EnergyParams()
        sigma = ligand.radii[:, None] + receptor.radii[None, :]
        sigma2 = sigma * sigma
        eps_geom = np.sqrt(ligand.epsilons[:, None] * receptor.epsilons[None, :])
        eps_lj = p.lj_scale * eps_geom
        qq = ligand.charges[:, None] * receptor.charges[None, :]
        q_coef = COULOMB_CONSTANT / p.dielectric * qq
        for arr in (sigma2, eps_geom, eps_lj, q_coef):
            arr.setflags(write=False)
        return cls(
            receptor=receptor,
            ligand=ligand,
            params=p,
            sigma2=sigma2,
            eps_geom=eps_geom,
            eps_lj=eps_lj,
            q_coef=q_coef,
        )

    @property
    def shape(self) -> tuple[int, int]:
        """(n_ligand_beads, n_receptor_beads)."""
        return self.sigma2.shape  # type: ignore[return-value]


class CacheInfo(NamedTuple):
    """Hit/miss statistics of the module-level table cache."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


_cache: "OrderedDict[tuple[int, int, EnergyParams], PairTable]" = OrderedDict()
_hits = 0
_misses = 0


def pair_table(
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    params: EnergyParams | None = None,
) -> PairTable:
    """Return the (cached) :class:`PairTable` for a couple.

    Keyed on the *identity* of the protein objects plus the (hashable)
    :class:`EnergyParams` — proteins hold numpy arrays and are not
    themselves hashable.  Cached tables keep their proteins alive, so an
    ``id`` collision with a garbage-collected protein is impossible; the
    identity check below makes the key exact rather than probabilistic.
    """
    global _hits, _misses
    p = params if params is not None else EnergyParams()
    key = (id(receptor), id(ligand), p)
    entry = _cache.get(key)
    if entry is not None and entry.receptor is receptor and entry.ligand is ligand:
        _hits += 1
        _cache.move_to_end(key)
        return entry
    _misses += 1
    table = PairTable.build(receptor, ligand, p)
    _cache[key] = table
    _cache.move_to_end(key)
    while len(_cache) > _CACHE_MAX:
        _cache.popitem(last=False)
    return table


def cache_info() -> CacheInfo:
    """Current cache statistics (mirrors ``functools.lru_cache``)."""
    return CacheInfo(_hits, _misses, _CACHE_MAX, len(_cache))


def cache_clear() -> None:
    """Drop all cached tables and reset the statistics."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
