"""Clustering of docking minima into binding modes.

A MAXDo energy map contains thousands of minimized poses; the scientific
reading groups them into distinct *binding modes* — basins whose optima
converged to nearby ligand placements.  The standard greedy leader
algorithm (energy-ordered: the strongest pose founds a mode, later poses
join the first mode within ``radius``) is deterministic and linear-ish,
which matters when post-processing whole receptor batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .docking import DockingResult

__all__ = ["BindingMode", "cluster_minima"]


@dataclass(frozen=True)
class BindingMode:
    """One cluster of docking minima."""

    representative: np.ndarray  #: (3,) mass-center position of the best pose
    best_energy: float  #: kcal/mol of the founding pose
    n_members: int  #: poses assigned to this mode
    member_indices: np.ndarray  #: flat indices into the (pos, cpl, gam) grid

    @property
    def occupancy(self) -> int:
        return self.n_members


def cluster_minima(
    result: DockingResult,
    radius: float = 5.0,
    energy_cutoff: float | None = None,
    max_modes: int | None = None,
) -> list[BindingMode]:
    """Greedy leader clustering of a docking map's minima.

    Poses are processed by increasing energy; each founds a new mode
    unless its final mass-center position lies within ``radius`` Angstrom
    of an existing mode's representative.  ``energy_cutoff`` drops weak
    poses first (e.g. only attractive minima); ``max_modes`` truncates the
    output to the strongest modes (membership is still counted for all
    processed poses).

    Returns modes sorted by their best energy, strongest first.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    energies = result.e_total.ravel()
    positions = result.positions.reshape(-1, 3)
    keep = np.arange(len(energies))
    if energy_cutoff is not None:
        keep = keep[energies[keep] <= energy_cutoff]
    if keep.size == 0:
        return []
    order = keep[np.argsort(energies[keep], kind="stable")]

    reps: list[np.ndarray] = []
    best: list[float] = []
    members: list[list[int]] = []
    radius_sq = radius * radius
    for idx in order:
        pos = positions[idx]
        assigned = False
        for m, rep in enumerate(reps):
            d = pos - rep
            if float(d @ d) <= radius_sq:
                members[m].append(int(idx))
                assigned = True
                break
        if not assigned:
            reps.append(pos.copy())
            best.append(float(energies[idx]))
            members.append([int(idx)])
    modes = [
        BindingMode(
            representative=reps[m],
            best_energy=best[m],
            n_members=len(members[m]),
            member_indices=np.asarray(members[m], dtype=np.int64),
        )
        for m in range(len(reps))
    ]
    modes.sort(key=lambda mode: mode.best_energy)
    if max_modes is not None:
        if max_modes < 1:
            raise ValueError("max_modes must be at least 1")
        modes = modes[:max_modes]
    return modes
