"""MAXDo — Molecular Association via Cross-Docking simulations (reproduction).

The original MAXDo program (Sacquin-Mora et al.) systematically docks couples
of rigid reduced proteins: for every starting position ``isep`` of the ligand
around the receptor and every starting orientation ``irot``, it minimizes a
simplified interaction energy (Lennard-Jones + electrostatics) over the six
rigid-body degrees of freedom and records the optimum.

This subpackage reimplements that pipeline on the synthetic substrate of
:mod:`repro.proteins`:

* :mod:`repro.maxdo.orientations` — the 21 (alpha, beta) starting-orientation
  couples x 10 gamma values of the paper (footnote 1);
* :mod:`repro.maxdo.energy` — vectorized interaction energy and bead forces,
  both the scalar reference kernels and their pose-batched counterparts;
* :mod:`repro.maxdo.pairtable` — cached pose-invariant per-couple arrays
  feeding the batched kernels;
* :mod:`repro.maxdo.minimize` — rigid-body 6-DOF minimization, scalar and
  lockstep-batched;
* :mod:`repro.maxdo.docking` — the isep x irot energy-map driver with
  engine selection (``"batched"``/``"reference"``), optional process-pool
  fan-out over starting positions, checkpointing
  (:mod:`repro.maxdo.checkpoint`) and the text result format
  (:mod:`repro.maxdo.resultfile`);
* :mod:`repro.maxdo.cost_model` — the computing-time model of Section 4.1:
  a calibrated 168 x 168 ``Mct`` matrix with the paper's linearity
  properties, which the packaging/scheduling layers consume.
"""

from .cost_model import CostModel
from .docking import DockingResult, MaxDoRun, dock_couple
from .energy import (
    batch_energy_and_pose_gradient,
    batch_interaction_energy,
    interaction_energy,
    pair_energies,
)
from .minimize import minimize_rigid, minimize_rigid_batch
from .orientations import gamma_values, orientation_couples, rotation_matrix
from .pairtable import PairTable, pair_table

__all__ = [
    "CostModel",
    "DockingResult",
    "MaxDoRun",
    "PairTable",
    "dock_couple",
    "interaction_energy",
    "pair_energies",
    "pair_table",
    "batch_interaction_energy",
    "batch_energy_and_pose_gradient",
    "minimize_rigid",
    "minimize_rigid_batch",
    "gamma_values",
    "orientation_couples",
    "rotation_matrix",
]
