/* Fused pairwise kernels for the batched docking engine.
 *
 * Compiled on demand by repro.maxdo._fused (plain `cc -O3 -shared`); the
 * batched numpy kernels in repro.maxdo.energy fall back to pure numpy when
 * no compiler is available, so this file is an accelerator, never a
 * dependency.
 *
 * CONTRACT: every arithmetic expression below reproduces, operation for
 * operation and in the same association, the scalar numpy kernels
 * `pair_energies` / `energy_and_bead_gradient` in repro/maxdo/energy.py.
 * All operations used here (+,-,*,/ and sqrt) are IEEE-754 correctly
 * rounded, so identical association means bit-identical doubles; the one
 * transcendental (exp) is NOT correctly rounded and therefore stays on the
 * numpy side: phase A emits the exp *argument*, the caller applies
 * np.exp, and the later phases receive the screened values back.  That is
 * what lets the batched minimizer retrace the reference trajectories
 * exactly instead of diverging chaotically on the rugged LJ landscape.
 *
 * Keep -ffp-contract=off in the build flags: a fused multiply-add rounds
 * once where the numpy kernels round twice.  Loops are split into
 * elementwise passes (auto-vectorizable: independent lanes, correctly
 * rounded per element) and sequential reduction passes (the bead-gradient
 * accumulation order over receptor beads is part of the parity contract,
 * so it must NOT be reassociated/vectorized).
 */

#include <stdlib.h>

/* Copy (n, 3) interleaved receptor coordinates into planar x/y/z rows so
 * the hot loops read contiguously.  Returns a malloc'd 3*n block. */
static double *planar_rec(const double *rec, long n)
{
    double *buf = (double *)malloc((size_t)(3 * n) * sizeof(double));
    if (!buf)
        return 0;
    for (long i = 0; i < n; ++i) {
        buf[i] = rec[3 * i];
        buf[n + i] = rec[3 * i + 1];
        buf[2 * n + i] = rec[3 * i + 2];
    }
    return buf;
}

/* Phase A: softened squared distances and the Debye exp argument.
 *
 * coords: (B, m, 3) posed ligand beads, rec: (n, 3) receptor beads.
 * Writes r2[b,j,i] = ((dx*dx + dy*dy) + dz*dz) + soft2   (numpy:
 * (delta**2).sum(axis=-1) + soft2) and targ[b,j,i] = (-sqrt(r2)) / lam
 * (numpy: -r / lam).
 */
void maxdo_phase_a(const double *coords, const double *rec,
                   long n_poses, long m, long n,
                   double soft2, double lam,
                   double *restrict r2, double *restrict targ)
{
    double *planar = planar_rec(rec, n);
    const double *rx = planar, *ry = planar + n, *rz = planar + 2 * n;
    for (long row = 0; row < n_poses * m; ++row) {
        const double *cb = coords + row * 3;
        const double bx = cb[0], by = cb[1], bz = cb[2];
        double *restrict r2row = r2 + row * n;
        double *restrict trow = targ + row * n;
        for (long i = 0; i < n; ++i) {
            const double dx = bx - rx[i];
            const double dy = by - ry[i];
            const double dz = bz - rz[i];
            const double v = ((dx * dx + dy * dy) + dz * dz) + soft2;
            r2row[i] = v;
            trow[i] = (-__builtin_sqrt(v)) / lam;
        }
    }
    free(planar);
}

/* Phase B (gradient path): per-pair LJ/electrostatic energies and the
 * per-bead gradient, given phase-A distances and numpy-screened exps.
 *
 * Emits the full e_lj / e_el pair arrays so the caller can reduce them
 * with numpy's pairwise summation (summation order is part of the
 * bit-parity contract); the bead gradient reduction over receptor beads
 * is sequential, matching numpy's non-last-axis add.reduce.
 */
void maxdo_phase_grad(const double *coords, const double *rec,
                      const double *r2, const double *screen,
                      const double *sigma2, const double *eps_lj,
                      const double *q_coef,
                      long n_poses, long m, long n, double lam,
                      double *restrict e_lj, double *restrict e_el,
                      double *restrict bead_grad)
{
    const double inv_lam = 1.0 / lam;
    double *planar = planar_rec(rec, n);
    const double *rx = planar, *ry = planar + n, *rz = planar + 2 * n;
    double *coeff = (double *)malloc((size_t)n * sizeof(double));
    for (long row = 0; row < n_poses * m; ++row) {
        const long j = row % m;
        const double *cb = coords + row * 3;
        const double bx = cb[0], by = cb[1], bz = cb[2];
        const double *r2row = r2 + row * n;
        const double *srow = screen + row * n;
        const double *sig = sigma2 + j * n;
        const double *eps = eps_lj + j * n;
        const double *qc = q_coef + j * n;
        double *restrict ljrow = e_lj + row * n;
        double *restrict elrow = e_el + row * n;
        /* Elementwise pass: independent lanes, safe to vectorize. */
        for (long i = 0; i < n; ++i) {
            const double r2v = r2row[i];
            const double rv = __builtin_sqrt(r2v);
            const double s2 = sig[i] / r2v;
            const double s6 = (s2 * s2) * s2;
            const double s12 = s6 * s6;
            ljrow[i] = eps[i] * (s12 - 2.0 * s6);
            const double dlj = (eps[i] * 6.0) * (s6 - s12) / r2v;
            const double eel = qc[i] * srow[i] / rv;
            elrow[i] = eel;
            const double del =
                (-eel) * ((1.0 / rv) + inv_lam) / (2.0 * rv);
            coeff[i] = 2.0 * (dlj + del);
        }
        /* Reduction pass: sequential by contract (numpy accumulation
         * order); three independent chains pipeline well regardless. */
        double gx = 0.0, gy = 0.0, gz = 0.0;
        for (long i = 0; i < n; ++i) {
            gx += coeff[i] * (bx - rx[i]);
            gy += coeff[i] * (by - ry[i]);
            gz += coeff[i] * (bz - rz[i]);
        }
        bead_grad[row * 3] = gx;
        bead_grad[row * 3 + 1] = gy;
        bead_grad[row * 3 + 2] = gz;
    }
    free(coeff);
    free(planar);
}

/* Phase B (energy-only path): pair arrays for batch_interaction_energy.
 * e_lj holds the *unscaled* well-depth products (eps_geom), mirroring
 * pair_energies, which applies lj_scale after the pairwise sum.
 */
void maxdo_phase_energy(const double *r2, const double *screen,
                        const double *sigma2, const double *eps_geom,
                        const double *q_coef,
                        long n_poses, long m, long n,
                        double *restrict e_lj, double *restrict e_el)
{
    for (long row = 0; row < n_poses * m; ++row) {
        const long j = row % m;
        const double *r2row = r2 + row * n;
        const double *srow = screen + row * n;
        const double *sig = sigma2 + j * n;
        const double *eps = eps_geom + j * n;
        const double *qc = q_coef + j * n;
        double *restrict ljrow = e_lj + row * n;
        double *restrict elrow = e_el + row * n;
        for (long i = 0; i < n; ++i) {
            const double r2v = r2row[i];
            const double rv = __builtin_sqrt(r2v);
            const double s2 = sig[i] / r2v;
            const double s6 = (s2 * s2) * s2;
            ljrow[i] = eps[i] * (s6 * s6 - 2.0 * s6);
            elrow[i] = qc[i] * srow[i] / rv;
        }
    }
}
