"""Checkpoint-restart between starting positions.

"The MAXDo program can be stopped at any time and restarted from the last
checkpoint. [...] the checkpoint occurs only between starting positions. If
the program is stopped during the computation of one starting position, the
MAXDo program has to be relaunched from this position." (Section 4.3)

A checkpoint records the workunit identity and how many starting positions
have been fully committed to the partial result file.  Loading a checkpoint
verifies that the partial file is consistent (the right number of data
lines); a file truncated mid-position is rolled back to the last committed
position boundary — exactly the semantics above.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["Checkpoint", "rollback_partial_results"]


@dataclass(frozen=True)
class Checkpoint:
    """State persisted after each completed starting position."""

    receptor: str
    ligand: str
    isep_start: int
    nsep: int
    n_couples: int
    n_gamma: int
    positions_done: int  #: starting positions fully committed

    @property
    def lines_committed(self) -> int:
        """Data lines the partial result file must contain (one line per
        position and orientation couple — the best-of-gamma optimum)."""
        return self.positions_done * self.n_couples

    @property
    def complete(self) -> bool:
        """True once every starting position of the workunit is done."""
        return self.positions_done >= self.nsep

    def save(self, path: Path | str) -> None:
        """Atomically persist the checkpoint as JSON."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(asdict(self), indent=1), encoding="ascii")
        tmp.replace(path)

    @classmethod
    def load(cls, path: Path | str) -> "Checkpoint":
        """Load a checkpoint written by :meth:`save`."""
        raw = json.loads(Path(path).read_text(encoding="ascii"))
        ckpt = cls(**raw)
        if not 0 <= ckpt.positions_done <= ckpt.nsep:
            raise ValueError(
                f"corrupt checkpoint: positions_done={ckpt.positions_done} "
                f"outside [0, {ckpt.nsep}]"
            )
        return ckpt

    def advanced(self, positions: int = 1) -> "Checkpoint":
        """A new checkpoint with ``positions`` more positions committed."""
        done = self.positions_done + positions
        if done > self.nsep:
            raise ValueError(f"cannot advance past nsep={self.nsep}")
        return Checkpoint(
            receptor=self.receptor,
            ligand=self.ligand,
            isep_start=self.isep_start,
            nsep=self.nsep,
            n_couples=self.n_couples,
            n_gamma=self.n_gamma,
            positions_done=done,
        )


def rollback_partial_results(partial_path: Path | str, checkpoint: Checkpoint) -> int:
    """Truncate a partial result file to the checkpoint's position boundary.

    Volunteers can kill the agent mid-position; any data lines beyond the
    last committed boundary are discarded.  Returns the number of data lines
    dropped.  Header lines (``#``) are preserved.
    """
    partial_path = Path(partial_path)
    lines = partial_path.read_text(encoding="ascii").splitlines(keepends=True)
    header = [ln for ln in lines if ln.startswith("#")]
    data = [ln for ln in lines if not ln.startswith("#") and ln.strip()]
    keep = checkpoint.lines_committed
    if len(data) < keep:
        raise ValueError(
            f"partial file has {len(data)} lines, checkpoint claims {keep}"
        )
    dropped = len(data) - keep
    if dropped:
        partial_path.write_text("".join(header + data[:keep]), encoding="ascii")
    return dropped
