"""Fleet forensics: a streaming per-host behavioral ledger.

The paper's campaign paid a fixed 1.37x redundancy because the server was
blind to which of its ~100k volunteer hosts were reliable.  The ROADMAP's
trust-based adaptive replication needs per-host behavioral history — and
today corrupted/sabotaged/timed-out results, availability sessions and
the :class:`~repro.boinc.validator.AdaptiveReplication` trust trajectory
all vanish into aggregate counters.  This module keeps them.

A :class:`HostLedger` rides the trace stream during a simulation exactly
like the health monitor does — attached as a :class:`LedgerSink` tee
around the tracer's sink, near-zero cost when disabled — and folds the
lifecycle/fault events into one :class:`HostRecord` per host:

* issue/result/validate/invalid/late counters, deadline timeouts,
  refused RPCs, reported CPU seconds and claimed credit;
* injected-fault exposure (crashes, corruption, sabotage, lost reports,
  retries) plus the *observable* consequences — ``sabotage_caught``
  (a quorum partner exposed the host's plausible-but-wrong result) and
  ``bad_validated`` (the host's sabotage validated a workunit);
* the adaptive-replication trust trajectory replayed from the
  ``host.*`` events: current/peak streaks, promotions, demotions and
  deterministic spot checks;
* availability: first/last seen, active compute seconds, checkpoint
  sessions and the derived uptime fraction (event-derived estimates);
* a per-host issue→result turnaround :class:`QuantileSketch` (exact
  below the warm-up bound, streaming P² beyond).

:meth:`HostLedger.finalize` derives per-host **behavioral classes** —
``suspect-saboteur`` > ``flaky`` > ``straggler`` > ``reliable`` in
precedence order — and renders a :class:`FleetReport` with class
histograms, top-N offender/straggler tables, a per-campaign breakdown
(from the ``campaign=`` stamps a multi-campaign grid adds) and fleet
totals that reconcile **exactly** against :class:`ValidationStats`,
campaign telemetry and the fault report (pinned by
``tests/test_ledger.py``).

Like the health monitor, the ledger never touches simulation state or
RNG streams: a ledger-enabled campaign is bit-identical in outcome to an
unobserved one (golden-digest pinned).  Records are **shard-mergeable**:
shards number their hosts from disjoint id blocks, so
:func:`repro.boinc.sharding.run_sharded` recombines per-shard records
into one fleet view identical for every worker count.

Caveat: a ledger teed onto a *user-supplied* tracer only hears the
channels that tracer records — include ``"host"`` (and the lifecycle
channels) in its channel filter, or pass no tracer and let the
simulation build its internal ledger-only tracer, to get credit and
trust-trajectory data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .quantiles import QuantileSketch
from .tracer import TraceEvent

__all__ = ["HostRecord", "HostLedger", "LedgerSink", "FleetReport"]

#: behavioral classes, in classification precedence order
HOST_CLASSES = ("suspect-saboteur", "flaky", "straggler", "reliable")


class HostRecord:
    """Everything the ledger knows about one volunteer host."""

    #: per-host turnaround quantiles tracked by the sketch
    TURNAROUND_QUANTILES = (0.5, 0.9, 0.99)

    #: the additive counters (merged by summation across shards)
    COUNTERS = (
        "issued", "results", "validated", "invalid", "late", "timed_out",
        "refused", "abandoned", "checkpoints", "kills", "completes",
        "retries", "crashes", "corrupted", "sabotaged", "sabotage_caught",
        "bad_validated", "report_lost", "demotions", "spot_checks",
    )

    def __init__(self, host: int) -> None:
        self.host = host
        self.first_seen: float | None = None
        self.last_seen: float | None = None
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.active_s = 0.0
        self.cpu_s = 0.0
        self.credit = 0.0
        #: adaptive-replication trust trajectory (replayed from events)
        self.streak = 0
        self.peak_streak = 0
        self.trusted = False
        self.turnaround = QuantileSketch(
            f"host.turnaround_s.{host}",
            quantiles=self.TURNAROUND_QUANTILES,
            help="issue -> result turnaround, seconds",
        )

    # -- derived views -----------------------------------------------------

    @property
    def sessions(self) -> int:
        """Availability sessions (event-derived: checkpoints + 1)."""
        if self.first_seen is None:
            return 0
        return self.checkpoints + 1

    @property
    def uptime_fraction(self) -> float:
        """Active compute time over the host's observed lifespan."""
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        span = self.last_seen - self.first_seen
        if span <= 0.0:
            return 1.0 if self.active_s > 0.0 else 0.0
        return min(1.0, self.active_s / span)

    @property
    def invalid_fraction(self) -> float:
        return self.invalid / self.results if self.results else 0.0

    def merge(self, other: "HostRecord") -> None:
        """Fold another shard's record for the same host into this one.

        Counters add, seen-spans union and the turnaround sketches merge
        exactly (warm-up replay).  The trust trajectory is stream-order
        state; merging two streams of one host takes the later shard's
        streak and the max peak — shards number hosts from disjoint id
        blocks, so this path only matters for hand-built ledgers.
        """
        for name in self.COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        if other.first_seen is not None:
            if self.first_seen is None or other.first_seen < self.first_seen:
                self.first_seen = other.first_seen
        if other.last_seen is not None:
            if self.last_seen is None or other.last_seen > self.last_seen:
                self.last_seen = other.last_seen
        self.active_s += other.active_s
        self.cpu_s += other.cpu_s
        self.credit += other.credit
        self.streak = other.streak
        self.peak_streak = max(self.peak_streak, other.peak_streak)
        self.trusted = other.trusted
        self.turnaround.merge(other.turnaround)

    def as_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"host": self.host}
        doc.update({name: getattr(self, name) for name in self.COUNTERS})
        doc.update(
            first_seen=self.first_seen,
            last_seen=self.last_seen,
            sessions=self.sessions,
            uptime_fraction=self.uptime_fraction,
            active_s=self.active_s,
            cpu_s=self.cpu_s,
            credit=self.credit,
            streak=self.streak,
            peak_streak=self.peak_streak,
            trusted=self.trusted,
            turnaround=self.turnaround.as_dict(),
        )
        return doc


class HostLedger:
    """Fold the lifecycle/fault event stream into per-host records."""

    #: ``flaky``: invalid results exceed this fraction of all results
    FLAKY_INVALID_FRACTION = 0.1
    #: ``straggler``: deadline timeouts exceed this fraction of issues
    STRAGGLER_TIMEOUT_FRACTION = 0.25
    #: ``straggler``: median turnaround exceeds this multiple of the
    #: fleet median
    STRAGGLER_TURNAROUND_FACTOR = 3.0
    #: rows kept in the offender/straggler tables
    TOP_N = 10

    def __init__(self) -> None:
        self.records: dict[int, HostRecord] = {}
        self.by_campaign: dict[str, dict[str, int]] = {}
        self.n_observed = 0
        # correlation state, bounded by in-flight work (packed issue keys
        # like the health monitor: ``wu * 2**20 + copy``)
        self._t_issue: dict[int, float] = {}
        #: sabotaged results awaiting their server.result: (wu, host) -> n
        self._sab_pending: dict[tuple[int, int], int] = {}
        #: per-workunit hosts whose sabotage entered the quorum unexposed
        self._pending_bad: dict[int, list[int]] = {}
        self._sink: "LedgerSink | None" = None
        self._dispatch = {
            "server.issue": self._on_issue,
            "server.result": self._on_result,
            "server.validate": self._on_validate,
            "server.reissue": self._on_reissue,
            "server.refuse": self._on_refuse,
            "server.workunit_failed": self._on_workunit_failed,
            "agent.fetch": self._on_fetch,
            "agent.abandon": self._on_abandon,
            "agent.checkpoint": self._on_checkpoint,
            "agent.complete": self._on_complete,
            "agent.retry": self._on_retry,
            "fault.crash": self._on_crash,
            "fault.corrupt": self._on_corrupt,
            "fault.sabotage": self._on_sabotage,
            "fault.report_lost": self._on_report_lost,
            "host.trusted": self._on_trusted,
            "host.demoted": self._on_demoted,
            "host.spot_check": self._on_spot_check,
            "host.credit": self._on_credit,
        }

    def attach_sink(self, sink: "LedgerSink") -> None:
        """Register the tee so :meth:`finalize` can drain its buffer."""
        self._sink = sink

    # -- event fold ----------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Fold one event (the per-event path; campaigns use the sink)."""
        if event.t_sim is None:
            return
        handler = self._dispatch.get(event.etype)
        if handler is not None:
            self.n_observed += 1
            handler(event.t_sim, event.fields)

    def observe_batch(self, events) -> None:
        """Fold a batch of events (the :class:`LedgerSink` stride)."""
        dispatch = self._dispatch
        batch = [
            e for e in events if e.etype in dispatch and e.t_sim is not None
        ]
        if batch:
            self._fold_filtered(batch)

    def _fold_filtered(self, events: list[TraceEvent]) -> None:
        """Fold events already known to dispatch and carry a ``t_sim``."""
        dispatch = self._dispatch
        for event in events:
            dispatch[event.etype](event.t_sim, event.fields)
        self.n_observed += len(events)

    def _rec(self, host: int, t: float) -> HostRecord:
        rec = self.records.get(host)
        if rec is None:
            rec = self.records[host] = HostRecord(host)
        if rec.first_seen is None:
            rec.first_seen = t
        rec.last_seen = t  # the stream is non-decreasing in t_sim
        return rec

    def _campaign(self, name: str) -> dict[str, int]:
        agg = self.by_campaign.get(name)
        if agg is None:
            agg = self.by_campaign[name] = {
                "results": 0, "validated": 0, "invalid": 0, "late": 0,
            }
        return agg

    # -- handlers (one per dispatched event type) ---------------------------

    def _on_issue(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).issued += 1
        self._t_issue[f["wu"] * 1_048_576 + f.get("copy", 0)] = t

    def _on_result(self, t: float, f: dict) -> None:
        host = f["host"]
        rec = self._rec(host, t)
        rec.results += 1
        rec.cpu_s += f.get("accounted_cpu_s", 0.0)
        issued = self._t_issue.pop(f["wu"] * 1_048_576 + f.get("copy", 0), None)
        if issued is not None:
            rec.turnaround.observe(t - issued)
        wu = f["wu"]
        key = (wu, host)
        pending = self._sab_pending.get(key, 0)
        campaign = f.get("campaign")
        agg = self._campaign(campaign) if campaign is not None else None
        if agg is not None:
            agg["results"] += 1
        if f.get("late"):
            rec.late += 1
            if agg is not None:
                agg["late"] += 1
            if pending:
                # A late sabotaged result never entered the quorum: it can
                # be neither caught nor validated.
                self._drop_pending(key, pending)
        elif not f.get("valid"):
            rec.invalid += 1
            rec.streak = 0  # mirrors AdaptiveReplication.record_invalid
            if agg is not None:
                agg["invalid"] += 1
        else:
            rec.streak += 1  # mirrors AdaptiveReplication.record_valid
            if rec.streak > rec.peak_streak:
                rec.peak_streak = rec.streak
            if pending:
                # The sabotage passed the range check and now sits in the
                # quorum; server.validate decides caught vs validated.
                self._drop_pending(key, pending)
                self._pending_bad.setdefault(wu, []).append(host)

    def _drop_pending(self, key: tuple[int, int], pending: int) -> None:
        if pending <= 1:
            del self._sab_pending[key]
        else:
            self._sab_pending[key] = pending - 1

    def _on_validate(self, t: float, f: dict) -> None:
        host = f.get("host")
        rec = self._rec(host, t) if host is not None else None
        if rec is not None:
            rec.validated += 1
        wu = f["wu"]
        if f.get("tainted"):
            # Wrong-but-agreeing results closed the workunit: the event's
            # host is the saboteur whose copy tipped the quorum; the other
            # contributors' sabotage is moot once the workunit closes.
            if rec is not None:
                rec.bad_validated += 1
            self._pending_bad.pop(wu, None)
        else:
            # An untainted close exposes every unexposed sabotaged copy
            # of this workunit (stats.sabotage_caught += n_valid_bad).
            for bad_host in self._pending_bad.pop(wu, ()):
                self._rec(bad_host, t).sabotage_caught += 1
        campaign = f.get("campaign")
        if campaign is not None:
            self._campaign(campaign)["validated"] += 1

    def _on_reissue(self, t: float, f: dict) -> None:
        if f.get("reason") == "deadline":
            self._rec(f["host"], t).timed_out += 1

    def _on_refuse(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).refused += 1

    def _on_workunit_failed(self, t: float, f: dict) -> None:
        # Terminal failure: pending sabotage on this workunit was neither
        # caught nor validated.
        self._pending_bad.pop(f["wu"], None)

    def _on_fetch(self, t: float, f: dict) -> None:
        self._rec(f["host"], t)

    def _on_abandon(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).abandoned += 1

    def _on_checkpoint(self, t: float, f: dict) -> None:
        rec = self._rec(f["host"], t)
        rec.checkpoints += 1
        if f.get("killed"):
            rec.kills += 1

    def _on_complete(self, t: float, f: dict) -> None:
        rec = self._rec(f["host"], t)
        rec.completes += 1
        rec.active_s += f.get("active_s", 0.0)

    def _on_retry(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).retries += 1

    def _on_crash(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).crashes += 1

    def _on_corrupt(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).corrupted += 1

    def _on_sabotage(self, t: float, f: dict) -> None:
        rec = self._rec(f["host"], t)
        rec.sabotaged += 1
        key = (f["wu"], f["host"])
        self._sab_pending[key] = self._sab_pending.get(key, 0) + 1

    def _on_report_lost(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).report_lost += 1

    def _on_trusted(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).trusted = True

    def _on_demoted(self, t: float, f: dict) -> None:
        rec = self._rec(f["host"], t)
        rec.demotions += 1
        rec.trusted = False

    def _on_spot_check(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).spot_checks += 1

    def _on_credit(self, t: float, f: dict) -> None:
        self._rec(f["host"], t).credit += f.get("points", 0.0)

    # -- shard merge ---------------------------------------------------------

    def absorb(
        self,
        records: dict[int, HostRecord],
        by_campaign: dict[str, dict[str, int]] | None = None,
    ) -> None:
        """Fold one shard's records into this ledger (shard order).

        Hosts from different shards come from disjoint id blocks
        (:data:`repro.boinc.sharding.HOST_ID_STRIDE`), so this is a pure
        union; a colliding host id falls back to
        :meth:`HostRecord.merge`.
        """
        for host, rec in records.items():
            mine = self.records.get(host)
            if mine is None:
                self.records[host] = rec
            else:
                mine.merge(rec)
        if by_campaign:
            for name, agg in by_campaign.items():
                dst = self._campaign(name)
                for key, value in agg.items():
                    dst[key] = dst.get(key, 0) + value

    # -- classification and the fleet report --------------------------------

    def fleet_median_turnaround(self) -> float | None:
        """The median of the per-host median turnarounds (the straggler
        baseline), or None before any turnaround sample exists."""
        medians = sorted(
            rec.turnaround.estimate(0.5)
            for rec in self.records.values()
            if rec.turnaround.count > 0
        )
        if not medians:
            return None
        return medians[len(medians) // 2]

    def classify(
        self, rec: HostRecord, fleet_median: float | None = None
    ) -> str:
        """The host's behavioral class (precedence: suspect-saboteur >
        flaky > straggler > reliable; thresholds are class attributes)."""
        if rec.sabotage_caught + rec.bad_validated > 0:
            return "suspect-saboteur"
        if rec.crashes > 0 or (
            rec.results > 0
            and rec.invalid_fraction > self.FLAKY_INVALID_FRACTION
        ):
            return "flaky"
        if rec.issued > 0 and rec.results == 0:
            return "straggler"
        if (
            rec.issued > 0
            and rec.timed_out >= self.STRAGGLER_TIMEOUT_FRACTION * rec.issued
            and rec.timed_out > 0
        ):
            return "straggler"
        if (
            fleet_median is not None
            and fleet_median > 0.0
            and rec.turnaround.count > 0
            and rec.turnaround.estimate(0.5)
            > self.STRAGGLER_TURNAROUND_FACTOR * fleet_median
        ):
            return "straggler"
        return "reliable"

    def finalize(self, t_end: float | None = None) -> "FleetReport":
        """Drain the tee and render the final :class:`FleetReport`."""
        if self._sink is not None:
            self._sink.flush()
        fleet_median = self.fleet_median_turnaround()
        classes = {name: 0 for name in HOST_CLASSES}
        hosts: list[dict[str, Any]] = []
        totals: dict[str, float] = {name: 0 for name in HostRecord.COUNTERS}
        totals["active_s"] = 0.0
        totals["cpu_s"] = 0.0
        totals["credit"] = 0.0
        last_seen = 0.0
        for host in sorted(self.records):
            rec = self.records[host]
            cls = self.classify(rec, fleet_median)
            classes[cls] += 1
            doc = rec.as_dict()
            doc["class"] = cls
            hosts.append(doc)
            for name in HostRecord.COUNTERS:
                totals[name] += getattr(rec, name)
            totals["active_s"] += rec.active_s
            totals["cpu_s"] += rec.cpu_s
            totals["credit"] += rec.credit
            if rec.last_seen is not None and rec.last_seen > last_seen:
                last_seen = rec.last_seen

        def _offense(doc: dict[str, Any]) -> float:
            return (
                doc["sabotage_caught"] + doc["bad_validated"]
                + doc["invalid"] + doc["crashes"] + doc["corrupted"]
            )

        offenders = [
            dict(doc) for doc in sorted(
                (d for d in hosts if _offense(d) > 0),
                key=lambda d: (-_offense(d), d["host"]),
            )[: self.TOP_N]
        ]
        stragglers = [
            dict(doc) for doc in sorted(
                (
                    d for d in hosts
                    if d["timed_out"] > 0 or d["class"] == "straggler"
                ),
                key=lambda d: (-d["timed_out"], d["host"]),
            )[: self.TOP_N]
        ]
        return FleetReport(
            t_end=t_end if t_end is not None else last_seen,
            n_hosts=len(self.records),
            n_observed=self.n_observed,
            fleet_median_turnaround_s=fleet_median,
            classes=classes,
            totals=totals,
            hosts=hosts,
            offenders=offenders,
            stragglers=stragglers,
            by_campaign={
                name: dict(self.by_campaign[name])
                for name in sorted(self.by_campaign)
            },
        )


@dataclass
class FleetReport:
    """The final per-host forensics of one campaign (JSON-safe)."""

    t_end: float
    n_hosts: int
    n_observed: int
    fleet_median_turnaround_s: float | None
    classes: dict[str, int] = field(default_factory=dict)
    totals: dict[str, float] = field(default_factory=dict)
    hosts: list[dict[str, Any]] = field(default_factory=list)
    offenders: list[dict[str, Any]] = field(default_factory=list)
    stragglers: list[dict[str, Any]] = field(default_factory=list)
    by_campaign: dict[str, dict[str, int]] = field(default_factory=dict)

    def host(self, host_id: int) -> dict[str, Any]:
        """One host's record (KeyError when the ledger never saw it)."""
        for doc in self.hosts:
            if doc["host"] == host_id:
                return doc
        raise KeyError(f"host {host_id} does not appear in the ledger")

    def as_dict(self) -> dict[str, Any]:
        return {
            "t_end": self.t_end,
            "n_hosts": self.n_hosts,
            "n_observed": self.n_observed,
            "fleet_median_turnaround_s": self.fleet_median_turnaround_s,
            "classes": self.classes,
            "totals": self.totals,
            "hosts": self.hosts,
            "offenders": self.offenders,
            "stragglers": self.stragglers,
            "by_campaign": self.by_campaign,
        }

    def render(self, top: int = 10) -> str:
        """A compact terminal fleet summary."""
        lines = [
            f"fleet: {self.n_hosts} hosts, "
            + ", ".join(
                f"{n} {name}" for name, n in self.classes.items() if n
            )
        ]
        t = self.totals
        lines.append(
            f"  issued={t['issued']:.0f} results={t['results']:.0f} "
            f"validated={t['validated']:.0f} invalid={t['invalid']:.0f} "
            f"late={t['late']:.0f} timed_out={t['timed_out']:.0f} "
            f"credit={t['credit']:,.0f}"
        )
        if self.fleet_median_turnaround_s is not None:
            lines.append(
                "  fleet median turnaround: "
                f"{self.fleet_median_turnaround_s / 3600.0:,.1f} h"
            )
        header = (
            f"  {'host':>10} {'class':<16} {'issued':>6} {'valid':>6} "
            f"{'inval':>6} {'t/out':>6} {'caught':>6} {'uptime':>7} "
            f"{'streak':>6} {'credit':>10}"
        )
        lines.append(header)
        for doc in self.hosts[:top]:
            lines.append(
                f"  {doc['host']:>10} {doc['class']:<16} "
                f"{doc['issued']:>6} {doc['validated']:>6} "
                f"{doc['invalid']:>6} {doc['timed_out']:>6} "
                f"{doc['sabotage_caught']:>6} "
                f"{doc['uptime_fraction']:>6.1%} {doc['streak']:>6} "
                f"{doc['credit']:>10,.0f}"
            )
        if len(self.hosts) > top:
            lines.append(f"  ... {len(self.hosts) - top} more hosts")
        if self.by_campaign:
            lines.append("  per-campaign:")
            for name, agg in self.by_campaign.items():
                lines.append(
                    f"    {name:<20} results={agg['results']} "
                    f"validated={agg['validated']} invalid={agg['invalid']}"
                )
        return "\n".join(lines)

    def render_markdown(self, top: int = 10) -> str:
        """The fleet summary as a GitHub-flavoured markdown table."""
        classes = ", ".join(
            f"{n} {name}" for name, n in self.classes.items() if n
        )
        lines = [
            "## Fleet forensics",
            "",
            f"**{self.n_hosts} hosts** ({classes or 'no hosts observed'}); "
            f"{self.n_observed:,} events folded.",
            "",
            "| host | class | issued | valid | inval | t/out | caught "
            "| uptime | streak | credit |",
            "| ---: | :--- | ---: | ---: | ---: | ---: | ---: "
            "| ---: | ---: | ---: |",
        ]
        for doc in self.hosts[:top]:
            lines.append(
                f"| {doc['host']} | {doc['class']} | {doc['issued']} "
                f"| {doc['validated']} | {doc['invalid']} "
                f"| {doc['timed_out']} | {doc['sabotage_caught']} "
                f"| {doc['uptime_fraction']:.1%} | {doc['streak']} "
                f"| {doc['credit']:,.0f} |"
            )
        if len(self.hosts) > top:
            lines.append("")
            lines.append(f"... {len(self.hosts) - top} more hosts")
        if self.by_campaign:
            lines += [
                "",
                "| campaign | results | validated | invalid |",
                "| :--- | ---: | ---: | ---: |",
            ]
            for name, agg in self.by_campaign.items():
                lines.append(
                    f"| {name} | {agg['results']} | {agg['validated']} "
                    f"| {agg['invalid']} |"
                )
        return "\n".join(lines)


class LedgerSink:
    """Tee a tracer's event stream into a :class:`HostLedger`.

    The exact :class:`~repro.obs.health.HealthSink` contract: every event
    forwards to the inner sink immediately; only dispatchable,
    timestamped events enter the drain buffer; the buffer drains into the
    ledger's guard-free batched fold every ``stride`` events (and on
    flush/close; :meth:`HostLedger.finalize` drains it too).
    """

    #: drain stride, matched to the health sink's
    STRIDE = 64

    def __init__(self, ledger: HostLedger, inner, stride: int = STRIDE) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.ledger = ledger
        self.inner = inner
        self.stride = stride
        self._buffer: list[TraceEvent] = []
        self._inner_append = inner.append
        self._relevant = frozenset(ledger._dispatch)
        ledger.attach_sink(self)

    def append(self, event: TraceEvent) -> None:
        self._inner_append(event)
        if event.etype in self._relevant and event.t_sim is not None:
            buffer = self._buffer
            buffer.append(event)
            if len(buffer) >= self.stride:
                self.flush()

    def flush(self) -> None:
        """Drain the buffer into the ledger's batched fold."""
        buffer = self._buffer
        if buffer:
            # Swap before draining: a fold hook may re-enter append().
            self._buffer = []
            self.ledger._fold_filtered(buffer)

    def close(self) -> None:
        self.flush()
        self.inner.close()
