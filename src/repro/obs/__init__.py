"""Campaign observability: event tracing, metrics, profiling hooks.

The paper's evaluation is read off operational telemetry — consumed-CPU
series, daily result arrivals, redundancy, per-workunit run times — and
this subpackage is the shared substrate every layer records it through:

* :mod:`repro.obs.tracer` — structured, typed trace events with both
  simulation time and wall time, streamed to a ring buffer or a JSONL
  file, emitted by the DES kernel, the grid server, the volunteer agents
  and the docking engine (~zero cost when disabled);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, histograms
  and daily series; campaign telemetry is built on it, so every recorded
  quantity is uniformly exportable;
* :mod:`repro.obs.profile` — opt-in per-subsystem wall-time aggregation;
* :mod:`repro.obs.replay` — trace summaries and timelines behind the
  ``repro-hcmd trace`` subcommand;
* :mod:`repro.obs.events` — the versioned event taxonomy, enforced at
  emit time and kept consistent with docs/observability.md by a test.

Enable tracing on a campaign::

    from repro.boinc import scaled_phase1
    from repro.obs import Tracer

    tracer = Tracer.to_jsonl("campaign.jsonl")
    result = scaled_phase1(scale=400, n_proteins=8, tracer=tracer).run()
    tracer.close()          # then: repro-hcmd trace campaign.jsonl

See docs/observability.md for the taxonomy, the trace schema and worked
examples.
"""

from .events import CHANNELS, EVENT_TYPES, TRACE_SCHEMA_VERSION, channel_of
from .metrics import Counter, DailySeries, Gauge, Histogram, MetricsRegistry
from .profile import Profiler
from .replay import TraceSummary, format_timeline, summarize_trace
from .tracer import (
    JsonlSink,
    RingSink,
    TraceEvent,
    Tracer,
    global_tracer,
    read_trace,
    set_global_tracer,
    tracing,
)

__all__ = [
    "CHANNELS",
    "EVENT_TYPES",
    "TRACE_SCHEMA_VERSION",
    "channel_of",
    "Counter",
    "DailySeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "TraceSummary",
    "format_timeline",
    "summarize_trace",
    "JsonlSink",
    "RingSink",
    "TraceEvent",
    "Tracer",
    "global_tracer",
    "read_trace",
    "set_global_tracer",
    "tracing",
]
