"""Campaign observability: event tracing, metrics, profiling hooks.

The paper's evaluation is read off operational telemetry — consumed-CPU
series, daily result arrivals, redundancy, per-workunit run times — and
this subpackage is the shared substrate every layer records it through:

* :mod:`repro.obs.tracer` — structured, typed trace events with both
  simulation time and wall time, streamed to a ring buffer or a JSONL
  file, emitted by the DES kernel, the grid server, the volunteer agents
  and the docking engine (~zero cost when disabled);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, histograms
  and daily series; campaign telemetry is built on it, so every recorded
  quantity is uniformly exportable;
* :mod:`repro.obs.profile` — opt-in per-subsystem wall-time aggregation;
* :mod:`repro.obs.replay` — trace summaries and timelines behind the
  ``repro-hcmd trace`` subcommand;
* :mod:`repro.obs.events` — the versioned event taxonomy, enforced at
  emit time and kept consistent with docs/observability.md by a test;
* :mod:`repro.obs.spans` — causal span reconstruction: the flat trace
  folded into one lifecycle tree per workunit, with critical-path
  extraction and straggler analysis;
* :mod:`repro.obs.health` — a streaming health monitor (P² latency
  sketches + SLO rules with breach/clear hysteresis) riding the trace
  stream during a simulation;
* :mod:`repro.obs.quantiles` — the P² (Jain–Chlamtac) streaming
  quantile estimator behind the health sketches;
* :mod:`repro.obs.ledger` — a per-host behavioral ledger folding the
  same stream into availability, validity, trust-trajectory and credit
  records per volunteer, rendered as a fleet post-mortem
  (``repro-hcmd hosts``);
* :mod:`repro.obs.postmortem` — campaign report rendering and
  ``trace diff`` run alignment behind the CLI.

Enable tracing on a campaign::

    from repro.boinc import scaled_phase1
    from repro.obs import Tracer

    tracer = Tracer.to_jsonl("campaign.jsonl")
    result = scaled_phase1(scale=400, n_proteins=8, tracer=tracer).run()
    tracer.close()          # then: repro-hcmd trace campaign.jsonl

See docs/observability.md for the taxonomy, the trace schema and worked
examples.
"""

from .events import CHANNELS, EVENT_TYPES, TRACE_SCHEMA_VERSION, channel_of
from .health import HealthMonitor, HealthSink, SLOConfig, SLOReport
from .ledger import FleetReport, HostLedger, HostRecord, LedgerSink
from .metrics import (
    Counter,
    DailySeries,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from .profile import Profiler
from .quantiles import P2Quantile
from .replay import TraceSummary, format_timeline, summarize_trace
from .spans import SpanCampaign, SpanReconstructor, reconstruct, reconstruct_file
from .tracer import (
    JsonlSink,
    RingSink,
    TraceEvent,
    Tracer,
    global_tracer,
    iter_trace,
    read_trace,
    set_global_tracer,
    tracing,
)

__all__ = [
    "CHANNELS",
    "EVENT_TYPES",
    "TRACE_SCHEMA_VERSION",
    "channel_of",
    "HealthMonitor",
    "HealthSink",
    "SLOConfig",
    "SLOReport",
    "FleetReport",
    "HostLedger",
    "HostRecord",
    "LedgerSink",
    "Counter",
    "DailySeries",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "P2Quantile",
    "Profiler",
    "TraceSummary",
    "format_timeline",
    "summarize_trace",
    "SpanCampaign",
    "SpanReconstructor",
    "reconstruct",
    "reconstruct_file",
    "JsonlSink",
    "RingSink",
    "TraceEvent",
    "Tracer",
    "global_tracer",
    "iter_trace",
    "read_trace",
    "set_global_tracer",
    "tracing",
]
