"""Opt-in profiling hooks: per-subsystem wall-time aggregation.

A :class:`Profiler` accumulates (calls, total seconds) per named section.
Sections are either timed inline with :meth:`Profiler.timed` or recorded
after the fact with :meth:`Profiler.record`.  The DES kernel can time every
fired callback (pass ``profiler=`` to :class:`repro.grid.des.Simulator`),
which attributes simulated-campaign wall time to agent/server callbacks by
qualified name; :class:`repro.boinc.simulator.VolunteerGridSimulation`
times its own setup phases the same way.

The disabled cost follows the tracer convention: hot paths hold a profiler
reference that is ``None`` when profiling is off, so the check is one
identity comparison.  See docs/observability.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Profiler"]


class Profiler:
    """Accumulate wall-time per named section."""

    def __init__(self) -> None:
        #: section name -> [n_calls, total_seconds]
        self._sections: dict[str, list[float]] = {}

    def record(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall time to section ``name``."""
        entry = self._sections.get(name)
        if entry is None:
            self._sections[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into section ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    @property
    def total_seconds(self) -> float:
        return sum(total for _, total in self._sections.values())

    def stats(self) -> dict[str, tuple[int, float]]:
        """Section name -> (calls, total seconds)."""
        return {
            name: (int(calls), total)
            for name, (calls, total) in self._sections.items()
        }

    def summary_rows(self) -> list[tuple[str, int, float, float]]:
        """(section, calls, total_s, mean_s) rows, heaviest first."""
        rows = [
            (name, int(calls), total, total / calls if calls else 0.0)
            for name, (calls, total) in self._sections.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows

    def to_dict(self) -> dict:
        """Machine-readable dump (the ``profile.json`` artifact shape).

        Sections are sorted heaviest-first to match :meth:`render`, so the
        JSON artifact and the terminal table agree line for line.
        """
        return {
            "total_seconds": self.total_seconds,
            "sections": [
                {
                    "section": name,
                    "calls": calls,
                    "total_s": total,
                    "mean_ms": mean * 1e3,
                }
                for name, calls, total, mean in self.summary_rows()
            ],
        }

    def render(self) -> str:
        """A plain-text summary table (heaviest sections first)."""
        from ..analysis.report import render_table

        return render_table(
            ["section", "calls", "total (s)", "mean (ms)"],
            [
                [name, calls, f"{total:.3f}", f"{mean * 1e3:.3f}"]
                for name, calls, total, mean in self.summary_rows()
            ],
        )
