"""Metrics registry: counters, gauges, histograms, daily series.

A :class:`MetricsRegistry` is a flat namespace of named metrics with
get-or-create accessors, so independent subsystems can share one registry
without coordinating construction order.  Metric names follow the
``subsystem.metric_name`` convention documented in docs/observability.md;
``as_dict()`` turns the whole registry into a JSON-safe document, which is
how campaign telemetry rides along in ``metrics.json`` exports.

The campaign's daily telemetry (:class:`repro.boinc.simulator.Telemetry`)
is built on this registry: the VFTP/result/useful daily series are
:class:`DailySeries` metrics, credit and clamp totals are counters and the
per-result device run times feed a :class:`Histogram` — so every quantity
the simulator records is uniformly exportable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

import numpy as np

from .quantiles import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DailySeries",
    "QuantileSketch",
    "MetricsRegistry",
    "render_prometheus",
]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can move both ways (e.g. queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """A distribution over explicit bucket upper bounds.

    ``buckets`` are finite upper bounds in increasing order; an implicit
    ``+inf`` bucket catches the tail.  ``observe(v)`` lands ``v`` in the
    first bucket with ``v <= bound`` (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Iterable[float], help: str = ""
    ) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        # plain ints, not a numpy array: observe() sits on per-result hot
        # paths where numpy scalar indexing would dominate the cost
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no observations")
        return self.sum / self.count

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class DailySeries:
    """A fixed-horizon per-day accumulation series (the telemetry shape)."""

    kind = "daily_series"

    def __init__(
        self, name: str, n_days: int, dtype: Any = np.float64, help: str = ""
    ) -> None:
        if n_days < 1:
            raise ValueError(f"daily series {name} needs n_days >= 1")
        self.name = name
        self.help = help
        self.values = np.zeros(n_days, dtype=dtype)

    @property
    def n_days(self) -> int:
        return len(self.values)

    def add(self, day: int, amount: float = 1.0) -> None:
        """Accumulate into an in-range day (callers own clamping policy)."""
        if not 0 <= day < len(self.values):
            raise IndexError(
                f"day {day} outside [0, {len(self.values)}) for {self.name}"
            )
        self.values[day] += amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": self.values.tolist(),
        }


class MetricsRegistry:
    """A flat namespace of named metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, buckets: Iterable[float], help: str = ""
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def daily_series(
        self, name: str, n_days: int, dtype: Any = np.float64, help: str = ""
    ) -> DailySeries:
        return self._get_or_create(
            name, DailySeries, lambda: DailySeries(name, n_days, dtype, help)
        )

    def quantiles(
        self,
        name: str,
        quantiles: Iterable[float] = QuantileSketch.DEFAULT_QUANTILES,
        help: str = "",
    ) -> QuantileSketch:
        """A streaming P² quantile sketch (see :mod:`repro.obs.quantiles`)."""
        return self._get_or_create(
            name, QuantileSketch, lambda: QuantileSketch(name, quantiles, help)
        )

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Mapping[str, Any]]:
        """JSON-safe dump of every registered metric, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}


def _prom_name(name: str) -> str:
    """``service.rpc_wall_s.report_result`` → a legal Prometheus name."""
    return "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    ).strip("_")


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return f"{value:g}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format (0.0.4).

    Counters and gauges become single samples; histograms expose the
    classic cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple; P² quantile sketches become ``{quantile=...}`` summaries;
    daily series are folded to a ``_total`` sample plus a ``days``
    gauge (per-day vectors do not fit the flat sample model).  Dots in
    registry names map to underscores, so ``service.rpc_wall_s.status``
    scrapes as ``service_rpc_wall_s_status``.
    """
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        pname = _prom_name(name)
        if metric.help:
            lines.append(f"# HELP {pname} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {_prom_value(metric.sum)}")
            lines.append(f"{pname}_count {metric.count}")
        elif isinstance(metric, QuantileSketch):
            lines.append(f"# TYPE {pname} summary")
            if metric.count:
                for q in metric.quantiles:
                    lines.append(
                        f'{pname}{{quantile="{q:g}"}} '
                        f"{_prom_value(metric.estimate(q))}"
                    )
            lines.append(f"{pname}_sum {_prom_value(metric.sum)}")
            lines.append(f"{pname}_count {metric.count}")
        elif isinstance(metric, DailySeries):
            lines.append(f"# TYPE {pname}_total gauge")
            lines.append(f"{pname}_total {_prom_value(float(metric.values.sum()))}")
            lines.append(f"# TYPE {pname}_days gauge")
            lines.append(f"{pname}_days {metric.n_days}")
    return "\n".join(lines) + "\n"
