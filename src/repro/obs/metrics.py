"""Metrics registry: counters, gauges, histograms, daily series.

A :class:`MetricsRegistry` is a flat namespace of named metrics with
get-or-create accessors, so independent subsystems can share one registry
without coordinating construction order.  Metric names follow the
``subsystem.metric_name`` convention documented in docs/observability.md;
``as_dict()`` turns the whole registry into a JSON-safe document, which is
how campaign telemetry rides along in ``metrics.json`` exports.

The campaign's daily telemetry (:class:`repro.boinc.simulator.Telemetry`)
is built on this registry: the VFTP/result/useful daily series are
:class:`DailySeries` metrics, credit and clamp totals are counters and the
per-result device run times feed a :class:`Histogram` — so every quantity
the simulator records is uniformly exportable.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

import numpy as np

from .quantiles import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DailySeries",
    "QuantileSketch",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can move both ways (e.g. queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """A distribution over explicit bucket upper bounds.

    ``buckets`` are finite upper bounds in increasing order; an implicit
    ``+inf`` bucket catches the tail.  ``observe(v)`` lands ``v`` in the
    first bucket with ``v <= bound`` (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Iterable[float], help: str = ""
    ) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        # plain ints, not a numpy array: observe() sits on per-result hot
        # paths where numpy scalar indexing would dominate the cost
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no observations")
        return self.sum / self.count

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class DailySeries:
    """A fixed-horizon per-day accumulation series (the telemetry shape)."""

    kind = "daily_series"

    def __init__(
        self, name: str, n_days: int, dtype: Any = np.float64, help: str = ""
    ) -> None:
        if n_days < 1:
            raise ValueError(f"daily series {name} needs n_days >= 1")
        self.name = name
        self.help = help
        self.values = np.zeros(n_days, dtype=dtype)

    @property
    def n_days(self) -> int:
        return len(self.values)

    def add(self, day: int, amount: float = 1.0) -> None:
        """Accumulate into an in-range day (callers own clamping policy)."""
        if not 0 <= day < len(self.values):
            raise IndexError(
                f"day {day} outside [0, {len(self.values)}) for {self.name}"
            )
        self.values[day] += amount

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": self.values.tolist(),
        }


class MetricsRegistry:
    """A flat namespace of named metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, buckets: Iterable[float], help: str = ""
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def daily_series(
        self, name: str, n_days: int, dtype: Any = np.float64, help: str = ""
    ) -> DailySeries:
        return self._get_or_create(
            name, DailySeries, lambda: DailySeries(name, n_days, dtype, help)
        )

    def quantiles(
        self,
        name: str,
        quantiles: Iterable[float] = QuantileSketch.DEFAULT_QUANTILES,
        help: str = "",
    ) -> QuantileSketch:
        """A streaming P² quantile sketch (see :mod:`repro.obs.quantiles`)."""
        return self._get_or_create(
            name, QuantileSketch, lambda: QuantileSketch(name, quantiles, help)
        )

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Mapping[str, Any]]:
        """JSON-safe dump of every registered metric, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}
