"""Trace replay: turn a JSONL trace back into human-readable views.

Backs the ``repro-hcmd trace`` subcommand: :func:`summarize_trace`
aggregates a trace into per-type/per-channel counts and time spans;
:func:`format_timeline` renders events as one-line timeline entries with
simulation timestamps; :func:`filter_events` restricts a stream to one
channel / workunit / host.  Every entry point takes an event *iterable*
and consumes it in one streaming pass with bounded memory (a
``--limit``-ed timeline keeps only its head and a tail ring), so replay
scales to traces far larger than RAM — feed them straight from
:func:`repro.obs.tracer.iter_trace`.  See docs/observability.md for a
worked example.
"""

from __future__ import annotations

from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..units import SECONDS_PER_DAY
from .events import channel_of
from .tracer import TraceEvent

__all__ = ["TraceSummary", "summarize_trace", "format_timeline", "filter_events"]


@dataclass
class TraceSummary:
    """Aggregate view of one trace."""

    n_events: int = 0
    by_type: _Counter = field(default_factory=_Counter)
    by_channel: _Counter = field(default_factory=_Counter)
    t_sim_min: float | None = None
    t_sim_max: float | None = None
    t_wall_min: float | None = None
    t_wall_max: float | None = None

    @property
    def sim_span_days(self) -> float | None:
        """Simulated span covered by the trace, in days (None if untimed)."""
        if self.t_sim_min is None or self.t_sim_max is None:
            return None
        return (self.t_sim_max - self.t_sim_min) / SECONDS_PER_DAY

    @property
    def wall_span_s(self) -> float | None:
        if self.t_wall_min is None or self.t_wall_max is None:
            return None
        return self.t_wall_max - self.t_wall_min

    def rows(self) -> list[tuple[str, str, int]]:
        """(event type, channel, count) rows sorted by channel then type."""
        return [
            (etype, channel_of(etype), self.by_type[etype])
            for etype in sorted(self.by_type, key=lambda e: (channel_of(e), e))
        ]


def summarize_trace(events: Iterable[TraceEvent]) -> TraceSummary:
    """Aggregate an event stream into counts and time spans (one pass)."""
    summary = TraceSummary()
    for event in events:
        summary.n_events += 1
        summary.by_type[event.etype] += 1
        summary.by_channel[event.channel] += 1
        if event.t_sim is not None:
            if summary.t_sim_min is None or event.t_sim < summary.t_sim_min:
                summary.t_sim_min = event.t_sim
            if summary.t_sim_max is None or event.t_sim > summary.t_sim_max:
                summary.t_sim_max = event.t_sim
        if summary.t_wall_min is None or event.t_wall < summary.t_wall_min:
            summary.t_wall_min = event.t_wall
        if summary.t_wall_max is None or event.t_wall > summary.t_wall_max:
            summary.t_wall_max = event.t_wall
    return summary


def filter_events(
    events: Iterable[TraceEvent],
    channel: str | None = None,
    workunit: int | None = None,
    host: int | None = None,
    campaign: str | None = None,
) -> Iterator[TraceEvent]:
    """Restrict an event stream (lazily) to a channel / workunit / host /
    campaign.

    The workunit, host and campaign filters match on the ``wu`` /
    ``host`` / ``campaign`` correlation fields; events that do not carry
    the field (e.g. DES kernel events under a ``workunit`` filter, or
    single-campaign traces under a ``campaign`` filter) are dropped.
    The ``campaign`` stamp is added by the multi-campaign grid
    (:mod:`repro.multi`).
    """
    for event in events:
        if channel is not None and event.channel != channel:
            continue
        if workunit is not None and event.fields.get("wu") != workunit:
            continue
        if host is not None and event.fields.get("host") != host:
            continue
        if campaign is not None and event.fields.get("campaign") != campaign:
            continue
        yield event


def _format_sim_time(t_sim: float | None) -> str:
    """``day 12 06:41:02``-style simulation timestamps (``-`` if untimed)."""
    if t_sim is None:
        return "           -"
    day, rem = divmod(t_sim, SECONDS_PER_DAY)
    hours, rem = divmod(rem, 3600.0)
    minutes, seconds = divmod(rem, 60.0)
    return f"day {int(day):3d} {int(hours):02d}:{int(minutes):02d}:{int(seconds):02d}"


def format_event(event: TraceEvent) -> str:
    """One timeline line: ``[day ...] type key=value ...``."""
    parts = [f"[{_format_sim_time(event.t_sim)}]", event.etype.ljust(22)]
    for key in sorted(event.fields):
        value = event.fields[key]
        if isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def format_timeline(
    events: Iterable[TraceEvent],
    limit: int | None = None,
    channel: str | None = None,
) -> list[str]:
    """Render events as timeline lines, optionally filtered and truncated.

    With ``limit``, the head and tail of the (filtered) stream are kept
    and an ellipsis line reports how many events were elided; only
    ``limit`` formatted lines are ever resident, regardless of trace size.
    """
    if channel is not None:
        events = filter_events(events, channel=channel)
    if limit is None:
        return [format_event(e) for e in events]
    head_n = (limit + 1) // 2
    tail_n = limit - head_n
    head: list[str] = []
    tail: deque[TraceEvent] = deque(maxlen=max(tail_n, 1))
    total = 0
    for event in events:
        total += 1
        if len(head) < head_n:
            head.append(format_event(event))
        else:
            tail.append(event)
    if total <= limit:
        return head + [format_event(e) for e in tail]
    lines = head
    kept_tail = min(tail_n, len(tail))
    lines.append(f"... {total - len(head) - kept_tail} events elided ...")
    if tail_n > 0:
        lines.extend(format_event(e) for e in tail)
    return lines
