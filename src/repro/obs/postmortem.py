"""Post-mortem surfaces: campaign reports and trace diffing.

Two CLI-facing views over reconstructed span campaigns
(:mod:`repro.obs.spans`):

* :class:`CampaignReport` — a phase-by-phase campaign post-mortem
  (throughput per paper phase, redundancy, fault error budget, latency
  percentile tables, top critical-path couples) rendered as a fixed-width
  terminal report or GitHub-flavoured markdown.  Build it from a recorded
  trace (``repro-hcmd report --trace campaign.jsonl``) or from a live
  run's events; both paths go through the same reconstruction, so a
  post-mortem read off a file and one read off the in-memory ring agree.
* :func:`diff_traces` — align two runs workunit by workunit and report
  every divergence in lifecycle shape (attempt counts, outcomes, hosts,
  makespans) plus global event-count drift.  Two identically-seeded runs
  diff clean (pinned by ``tests/test_obs_spans.py``); a nonzero diff
  localizes *where* two campaigns parted ways, not just that they did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..analysis.report import render_markdown_table, render_table
from ..grid.population import hcmd_share_schedule
from ..units import SECONDS_PER_DAY, SECONDS_PER_WEEK
from .spans import SpanCampaign, reconstruct, reconstruct_file
from .tracer import TraceEvent

__all__ = ["CampaignReport", "TraceDiff", "diff_traces"]


def _fmt_days(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    return f"{seconds / SECONDS_PER_DAY:.1f} d"


@dataclass
class CampaignReport:
    """A rendered-on-demand campaign post-mortem over one span campaign."""

    campaign: SpanCampaign
    #: the live run's SLO report, when a health monitor rode the campaign
    health: Any = None
    #: optional fault error-budget rows from ``FaultReport.rows()``
    fault_rows: list | None = None
    #: optional :class:`repro.validation.DatasetVolume` — the campaign's
    #: merged result dataset, priced in both result formats
    volume: Any = None
    source: str = "trace"

    @classmethod
    def from_trace(cls, path: Path | str) -> "CampaignReport":
        """Reconstruct a report from a recorded JSONL trace (streaming)."""
        return cls(campaign=reconstruct_file(path), source=str(path))

    @classmethod
    def from_events(
        cls, events: Iterable[TraceEvent], health: Any = None,
        fault_rows: list | None = None, source: str = "live run",
    ) -> "CampaignReport":
        """Reconstruct a report from an in-memory event stream."""
        return cls(
            campaign=reconstruct(events), health=health,
            fault_rows=fault_rows, source=source,
        )

    # -- section builders (data rows; rendering picks the table style) ------

    def phase_rows(self) -> list[list[Any]]:
        """Throughput per paper phase (control / prioritization / full power)."""
        schedule = hcmd_share_schedule()
        weekly = self.campaign.weekly_throughput()
        phases: dict[str, dict[str, int]] = {}
        order: list[str] = []
        for week in sorted(weekly):
            label = schedule.phase_of_week(float(week))
            if label not in phases:
                phases[label] = {"weeks": 0, "released": 0, "validated": 0,
                                 "attempts": 0, "failed": 0}
                order.append(label)
            agg = phases[label]
            agg["weeks"] += 1
            for key in ("released", "validated", "attempts", "failed"):
                agg[key] += weekly[week][key]
        rows = []
        for label in order:
            agg = phases[label]
            rows.append([
                label, agg["weeks"], agg["released"], agg["attempts"],
                agg["validated"],
                f"{agg['validated'] / agg['weeks']:.1f}" if agg["weeks"] else "-",
            ])
        return rows

    def summary_rows(self) -> list[list[Any]]:
        c = self.campaign.counts()
        redundancy = c["results"] / c["validated"] if c["validated"] else float("nan")
        rows = [
            ["workunits traced", c["workunits"]],
            ["validated / failed / open",
             f"{c['validated']} / {c['failed']} / {c['open']}"],
            ["attempts issued", c["attempts"]],
            ["results reported", c["results"]],
            ["redundancy (results / validated)", f"{redundancy:.3f}"],
            ["late / invalid / timed-out / abandoned",
             f"{c['late']} / {c['invalid']} / {c['timed_out']} / "
             f"{c['abandoned']}"],
            ["trace span", _fmt_days(self.campaign.t_end)],
        ]
        return rows

    def error_budget_rows(self) -> list[list[Any]]:
        """Fault error budget: the live ``FaultReport`` rows when given,
        else the trace-derived counts."""
        if self.fault_rows is not None:
            return [list(row) for row in self.fault_rows]
        c = self.campaign.counts()
        return [
            ["injected crashes (traced)", c["crashes"]],
            ["lost result reports (traced)", c["report_retries"]],
            ["invalid results rejected", c["invalid"]],
            ["workunits terminally failed", c["failed"]],
            ["tainted validations", c["tainted"]],
        ]

    def dataset_rows(self) -> list[list[Any]]:
        """Merged result-dataset size, text vs columnar (when a
        :class:`~repro.validation.DatasetVolume` was attached)."""
        v = self.volume
        if v is None:
            return []
        from ..units import format_bytes

        return [
            ["merged result files", f"{v.n_files:,}"],
            ["result rows", f"{v.total_lines:,}"],
            ["text format",
             f"{format_bytes(v.raw_bytes)} "
             f"({format_bytes(v.compressed_bytes)} compressed)"],
            ["columnar store", format_bytes(v.columnar_bytes)],
            ["text / columnar ratio", f"{v.columnar_ratio:.2f}x"],
        ]

    def latency_rows(self) -> list[list[Any]]:
        """Exact offline percentiles of the reconstructed span latencies."""
        rows = []
        for name, samples in sorted(self.campaign.latency_samples().items()):
            if not samples:
                continue
            arr = np.asarray(samples)
            unit = 1.0 if name == "active_hours" else 3600.0
            rows.append([
                name, len(samples),
                *(f"{float(np.quantile(arr, q)) / unit:,.1f}"
                  for q in (0.5, 0.9, 0.99)),
                f"{float(arr.max()) / unit:,.1f}",
            ])
        return rows

    def straggler_rows(self, n: int = 10) -> list[list[Any]]:
        """Top-``n`` critical-path couples: who gated the campaign and why."""
        rows = []
        for r in self.campaign.critical_couples(n):
            receptor, ligand = r["couple"]
            rows.append([
                f"{receptor}x{ligand}", r["n_workunits"], r["attempts"],
                _fmt_days(r["worst_makespan_s"]), _fmt_days(r["mean_makespan_s"]),
                f"{r['dominant']} ({_fmt_days(r['dominant_s'])})",
            ])
        return rows

    # -- rendering -----------------------------------------------------------

    def render(self, markdown: bool = False) -> str:
        """The full post-mortem, terminal fixed-width or markdown."""
        table = render_markdown_table if markdown else render_table

        def heading(text: str) -> str:
            return f"## {text}" if markdown else f"{text}\n{'-' * len(text)}"

        sections = [
            ("# Campaign post-mortem" if markdown else "CAMPAIGN POST-MORTEM")
            + f"\nsource: {self.source}",
            heading("Summary") + "\n"
            + table(["quantity", "value"], self.summary_rows()),
        ]
        phase = self.phase_rows()
        if phase:
            sections.append(
                heading("Throughput by paper phase") + "\n"
                + table(
                    ["phase", "weeks", "released", "attempts", "validated",
                     "validated/week"],
                    phase,
                )
            )
        latency = self.latency_rows()
        if latency:
            sections.append(
                heading("Span latencies (exact offline percentiles)") + "\n"
                + table(
                    ["span", "n", "p50", "p90", "p99", "max"], latency,
                )
                + "\n(makespan/latency/report columns in hours; "
                  "active_hours in hours of device compute)"
            )
        dataset = self.dataset_rows()
        if dataset:
            sections.append(
                heading("Result dataset (both formats)") + "\n"
                + table(["quantity", "value"], dataset)
            )
        sections.append(
            heading("Fault error budget") + "\n"
            + table(["quantity", "value"], self.error_budget_rows())
        )
        stragglers = self.straggler_rows()
        if stragglers:
            sections.append(
                heading("Top critical-path couples") + "\n"
                + table(
                    ["couple", "wus", "attempts", "worst makespan",
                     "mean makespan", "dominant critical-path cost"],
                    stragglers,
                )
            )
        if self.health is not None:
            body = self.health.render()
            if markdown:
                body = "```\n" + body + "\n```"
            sections.append(heading("Live SLO report") + "\n" + body)
        return "\n\n".join(sections)


# -- trace diff -------------------------------------------------------------


@dataclass
class TraceDiff:
    """Workunit-aligned divergence between two traces."""

    label_a: str
    label_b: str
    #: per-workunit divergences: (wu, field, value_a, value_b)
    divergences: list[tuple[int, str, Any, Any]] = field(default_factory=list)
    #: event-type count drift: etype -> (count_a, count_b)
    count_drift: dict[str, tuple[int, int]] = field(default_factory=dict)
    only_in_a: list[int] = field(default_factory=list)
    only_in_b: list[int] = field(default_factory=list)
    n_workunits: int = 0

    @property
    def identical(self) -> bool:
        return not (
            self.divergences or self.count_drift
            or self.only_in_a or self.only_in_b
        )

    def render(self) -> str:
        if self.identical:
            return (
                f"traces agree: {self.n_workunits} workunits aligned, "
                "0 divergences"
            )
        lines = [
            f"traces diverge ({self.label_a} vs {self.label_b}): "
            f"{len(self.divergences)} workunit-level, "
            f"{len(self.count_drift)} event-count, "
            f"{len(self.only_in_a) + len(self.only_in_b)} membership"
        ]
        if self.only_in_a:
            lines.append(f"  workunits only in A: {self.only_in_a[:20]}")
        if self.only_in_b:
            lines.append(f"  workunits only in B: {self.only_in_b[:20]}")
        if self.count_drift:
            rows = [
                [etype, a, b, b - a]
                for etype, (a, b) in sorted(self.count_drift.items())
            ]
            lines.append(render_table(["event type", "A", "B", "delta"], rows))
        if self.divergences:
            rows = [
                [wu, fieldname, str(va), str(vb)]
                for wu, fieldname, va, vb in self.divergences[:50]
            ]
            lines.append(render_table(["wu", "field", "A", "B"], rows))
            if len(self.divergences) > 50:
                lines.append(
                    f"  ... {len(self.divergences) - 50} more divergences"
                )
        return "\n".join(lines)


def _wu_signature(tree) -> dict[str, Any]:
    """The comparable lifecycle shape of one workunit tree."""
    return {
        "outcome": tree.outcome,
        "attempts": len(tree.attempts),
        "results": tree.n_results,
        "hosts": tuple(a.host for a in tree.attempts),
        "outcomes": tuple(a.outcome for a in tree.attempts),
        "t_release": tree.t_release,
        "makespan_s": tree.makespan_s,
    }


def diff_traces(
    a: SpanCampaign | Path | str, b: SpanCampaign | Path | str,
    label_a: str = "A", label_b: str = "B",
) -> TraceDiff:
    """Align two runs by workunit id and report every divergence.

    Accepts reconstructed campaigns or trace file paths.  Two runs of the
    same seed and configuration must diff clean; any nonzero diff names
    the first workunits whose lifecycles parted ways.
    """
    if not isinstance(a, SpanCampaign):
        label_a = str(a)
        a = reconstruct_file(a)
    if not isinstance(b, SpanCampaign):
        label_b = str(b)
        b = reconstruct_file(b)
    diff = TraceDiff(label_a=label_a, label_b=label_b)
    keys_a, keys_b = set(a.trees), set(b.trees)
    diff.only_in_a = sorted(keys_a - keys_b)
    diff.only_in_b = sorted(keys_b - keys_a)
    shared = sorted(keys_a & keys_b)
    diff.n_workunits = len(shared)
    for wu in shared:
        sig_a = _wu_signature(a.trees[wu])
        sig_b = _wu_signature(b.trees[wu])
        for key in sig_a:
            if sig_a[key] != sig_b[key]:
                diff.divergences.append((wu, key, sig_a[key], sig_b[key]))
    # Global drift: per-event-type counts over the lifecycle channels the
    # reconstruction consumed (cheap, already folded into the trees).
    counts_a, counts_b = a.counts(), b.counts()
    for key in counts_a:
        if counts_a[key] != counts_b[key]:
            diff.count_drift[key] = (counts_a[key], counts_b[key])
    return diff
