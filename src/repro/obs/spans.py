"""Causal span reconstruction: workunit lifecycles out of a flat trace.

The flat JSONL event stream (docs/observability.md) answers "what
happened" but not "where did this workunit's 10 days go?".  This module
folds the stream — no new emit sites required; the server's correlation
fields (`copy` on issue/result, `receptor`/`ligand` on release, `host` on
validate) disambiguate the lifecycle edges — into one causal **span
tree** per workunit:

.. code-block:: text

    workunit 17 (couple 3x9, batch 0) ..... release -> validated
    ├── attempt copy=0 host=12 [fresh] .... issue -> reported valid
    │   ├── compute ....................... fetch -> complete
    │   │   ├── segment (suspended) ....... fetch -> checkpoint
    │   │   └── segment (killed, -1.2h) ... checkpoint -> complete
    │   └── report ........................ complete -> result
    └── attempt copy=1 host=40 [replica] .. issue -> timed out

plus **critical-path extraction** — the single causal chain of intervals
(queue wait, compute, deadline losses, reissue hops, report delays) whose
durations sum exactly to the workunit's makespan — and campaign-level
straggler/tail analysis over every tree.

Reconstruction is *total and lossless*: every traced workunit yields
exactly one tree, and span-derived aggregates reconcile with
:class:`~repro.core.metrics.CampaignMetrics` and the fault error budget
(pinned by ``tests/test_obs_spans.py``).  The fold is streaming — events
arrive one at a time in trace order — so it applies equally to a recorded
file (:func:`reconstruct_file`) and to a live campaign.

Spans require the ``server`` and ``agent`` channels (``fault`` enriches
crash/corruption attribution); a trace recorded with those channels
filtered out reconstructs what it can and reports the gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..units import SECONDS_PER_WEEK
from .tracer import TraceEvent

__all__ = [
    "Span",
    "AttemptSpan",
    "WorkunitSpanTree",
    "SpanCampaign",
    "SpanReconstructor",
    "reconstruct",
    "reconstruct_file",
]


@dataclass
class Span:
    """One timed interval of a workunit's life (a tree node leaf)."""

    kind: str  #: ``dispatch`` | ``compute`` | ``segment`` | ``report`` | ``retry``
    t_start: float
    t_end: float | None = None  #: None while the span is still open
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float | None:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start


@dataclass
class AttemptSpan:
    """One issued copy of a workunit on one host (a mid-level tree node)."""

    copy: int
    host: int
    t_issue: float
    #: why this copy went out: ``fresh`` | ``replica`` | ``deadline`` |
    #: ``invalid`` | ``quorum-stall``
    reason: str = "fresh"
    t_end: float | None = None
    #: ``valid`` | ``invalid`` | ``late`` | ``timed-out`` | ``abandoned`` |
    #: ``in-flight``
    outcome: str = "in-flight"
    #: the server's deadline reclaimed this copy at this time (it may still
    #: report late afterwards)
    deadline_missed_at: float | None = None
    spans: list[Span] = field(default_factory=list)
    #: report attempts that never reached the server (lost / refused)
    report_retries: int = 0
    #: injected crashes suffered while computing this copy
    crashes: int = 0
    #: the result carried detectable corruption / sabotage ground truth
    fault_kinds: list[str] = field(default_factory=list)

    @property
    def duration_s(self) -> float | None:
        if self.t_end is None:
            return None
        return self.t_end - self.t_issue

    def open_span(self, kind: str) -> Span | None:
        for span in reversed(self.spans):
            if span.kind == kind and span.t_end is None:
                return span
        return None


@dataclass
class WorkunitSpanTree:
    """The complete causal lifecycle of one workunit."""

    wu: int
    batch: int | None = None
    receptor: int | None = None
    ligand: int | None = None
    replication: int | None = None
    t_release: float | None = None
    t_close: float | None = None
    #: ``validated`` | ``failed`` | ``open``
    outcome: str = "open"
    regime: str | None = None  #: validation regime at close
    tainted: bool = False  #: validated on sabotaged (plausible-wrong) results
    attempts: list[AttemptSpan] = field(default_factory=list)
    #: pending reissue causes not yet consumed by a new issue:
    #: ``(t, reason, triggering attempt index | None)``
    _pending: list[tuple[float, str, int | None]] = field(default_factory=list)

    @property
    def couple(self) -> tuple[int, int] | None:
        if self.receptor is None or self.ligand is None:
            return None
        return (self.receptor, self.ligand)

    @property
    def makespan_s(self) -> float | None:
        """Release-to-close duration (the workunit's wall-clock cost)."""
        if self.t_release is None or self.t_close is None:
            return None
        return self.t_close - self.t_release

    @property
    def n_results(self) -> int:
        return sum(
            1 for a in self.attempts if a.outcome in ("valid", "invalid", "late")
        )

    # -- critical path ------------------------------------------------------

    def critical_path(self) -> list[tuple[str, float, float, dict[str, Any]]]:
        """The causal chain release -> close as ``(category, t0, t1, attrs)``.

        Walks backwards from the closing attempt through the reissue hops
        that gated it; the returned intervals are contiguous and their
        durations sum exactly to :attr:`makespan_s`.  Categories:
        ``queue-wait`` (release to issue of the chain's first copy),
        ``reissue-hop`` (a prior copy's failure to the next issue — the
        deadline/invalid/quorum-stall cost), ``dispatch``, ``compute``,
        ``report`` and ``validation-wait`` (a result arrived but the
        quorum was still open).
        """
        if self.t_release is None or self.t_close is None:
            return []
        closing = self._closing_attempt()
        if closing is None:
            return [("queue-wait", self.t_release, self.t_close, {})]
        # Chase reissue causality backwards: attempt -> the reissue that
        # spawned it -> the attempt whose failure triggered that reissue.
        chain: list[AttemptSpan] = [closing]
        seen = {id(closing)}
        current = closing
        while current.reason not in ("fresh", "replica"):
            trigger = self._trigger_of(current)
            if trigger is None or id(trigger) in seen:
                break
            chain.append(trigger)
            seen.add(id(trigger))
            current = trigger
        chain.reverse()

        path: list[tuple[str, float, float, dict[str, Any]]] = []
        cursor = self.t_release
        for attempt in chain:
            if attempt.t_issue > cursor:
                category = (
                    "queue-wait"
                    if attempt.reason in ("fresh", "replica")
                    else "reissue-hop"
                )
                path.append((
                    category, cursor, attempt.t_issue,
                    {"reason": attempt.reason},
                ))
            cursor = max(cursor, attempt.t_issue)
            stop = attempt.t_end if attempt.t_end is not None else self.t_close
            stop = min(stop, self.t_close)
            for span in attempt.spans:
                if span.t_end is None or span.t_end > stop or span.t_start < cursor:
                    continue
                if span.t_start > cursor:
                    path.append(("dispatch", cursor, span.t_start, {}))
                path.append((
                    span.kind, span.t_start, span.t_end,
                    {"host": attempt.host, "copy": attempt.copy, **span.attrs},
                ))
                cursor = span.t_end
            if stop > cursor:
                label = (
                    "deadline-wait"
                    if attempt.outcome in ("timed-out", "abandoned")
                    else "compute"
                )
                path.append((label, cursor, stop,
                             {"host": attempt.host, "copy": attempt.copy}))
                cursor = stop
        if self.t_close > cursor:
            path.append(("validation-wait", cursor, self.t_close, {}))
        return path

    def time_by_category(self) -> dict[str, float]:
        """Critical-path seconds aggregated per category."""
        totals: dict[str, float] = {}
        for category, t0, t1, _ in self.critical_path():
            totals[category] = totals.get(category, 0.0) + (t1 - t0)
        return totals

    def _closing_attempt(self) -> AttemptSpan | None:
        """The attempt whose result closed (or would close) the workunit."""
        best: AttemptSpan | None = None
        for attempt in self.attempts:
            if attempt.outcome != "valid":
                continue
            if best is None or (attempt.t_end or 0.0) > (best.t_end or 0.0):
                best = attempt
        if best is not None:
            return best
        # Failed / open workunits: fall back to the last terminated attempt.
        for attempt in reversed(self.attempts):
            if attempt.t_end is not None:
                return attempt
        return self.attempts[-1] if self.attempts else None

    def _trigger_of(self, attempt: AttemptSpan) -> AttemptSpan | None:
        """The earlier attempt whose failure caused ``attempt``'s reissue."""
        candidates = [
            a for a in self.attempts
            if a is not attempt and a.t_issue < attempt.t_issue and (
                (a.deadline_missed_at is not None
                 and a.deadline_missed_at <= attempt.t_issue)
                or (a.outcome == "invalid" and a.t_end is not None
                    and a.t_end <= attempt.t_issue)
            )
        ]
        if not candidates:
            return None
        # The most recent failure before this issue is the causal trigger
        # (the server reissues FIFO, so ties resolve to the oldest copy).
        def fail_time(a: AttemptSpan) -> float:
            if a.deadline_missed_at is not None:
                return a.deadline_missed_at
            return a.t_end if a.t_end is not None else 0.0

        return max(candidates, key=lambda a: (fail_time(a), -a.copy))


class SpanReconstructor:
    """Streaming fold of trace events into per-workunit span trees.

    Feed events in trace order via :meth:`observe`; call :meth:`finalize`
    once to close still-open spans at the trace horizon.  The fold keeps
    one tree per workunit plus an O(hosts) index of in-flight attempts —
    it never buffers raw events, so arbitrarily long traces reconstruct in
    bounded extra memory beyond the trees themselves.
    """

    def __init__(self) -> None:
        self.trees: dict[int, WorkunitSpanTree] = {}
        #: (host, wu) -> the attempt currently bound to that host
        self._active: dict[tuple[int, int], AttemptSpan] = {}
        self.n_events = 0
        #: events that carried a wu the fold could not attach (diagnostics)
        self.orphans = 0
        self.t_last: float | None = None

    # -- event routing -------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        handler = self._HANDLERS.get(event.etype)
        if handler is None:
            return
        self.n_events += 1
        if event.t_sim is not None:
            self.t_last = event.t_sim
        handler(self, event.t_sim or 0.0, event.fields)

    def _tree(self, wu: int) -> WorkunitSpanTree:
        tree = self.trees.get(wu)
        if tree is None:
            tree = WorkunitSpanTree(wu=wu)
            self.trees[wu] = tree
        return tree

    def _on_release(self, t: float, f: dict) -> None:
        tree = self._tree(f["wu"])
        tree.t_release = t
        tree.batch = f.get("batch")
        tree.replication = f.get("replication")
        tree.receptor = f.get("receptor")
        tree.ligand = f.get("ligand")

    def _on_issue(self, t: float, f: dict) -> None:
        tree = self._tree(f["wu"])
        if tree.t_release is None:
            tree.t_release = t  # release event filtered out: best effort
        reason = "fresh" if not tree.attempts else "replica"
        if tree._pending:
            _, reason, _ = tree._pending.pop(0)
        attempt = AttemptSpan(
            copy=f.get("copy", len(tree.attempts)),
            host=f["host"],
            t_issue=t,
            reason=reason,
        )
        tree.attempts.append(attempt)
        self._active[(attempt.host, tree.wu)] = attempt

    def _match(self, f: dict) -> AttemptSpan | None:
        """Resolve an event to its attempt: the ``copy`` ordinal wins (it
        disambiguates a host holding a re-issued copy of a workunit it
        already computed), falling back to the (host, wu) active index."""
        copy = f.get("copy")
        if copy is not None:
            tree = self.trees.get(f.get("wu"))
            if tree is not None:
                for attempt in tree.attempts:
                    if attempt.copy == copy:
                        return attempt
        return self._active.get((f.get("host"), f.get("wu")))

    def _on_fetch(self, t: float, f: dict) -> None:
        attempt = self._match(f)
        if attempt is None:
            self.orphans += 1
            return
        attempt.spans.append(Span("dispatch", attempt.t_issue, t))
        attempt.spans.append(Span("compute", t))

    def _on_abandon(self, t: float, f: dict) -> None:
        attempt = self._active.pop((f["host"], f["wu"]), None)
        if attempt is None:
            self.orphans += 1
            return
        attempt.outcome = "abandoned"
        attempt.t_end = t
        self._close_spans(attempt, t)

    def _on_checkpoint(self, t: float, f: dict) -> None:
        wu = f.get("wu")
        if wu is None:
            return
        attempt = self._active.get((f["host"], wu))
        if attempt is None:
            self.orphans += 1
            return
        compute = attempt.open_span("compute")
        if compute is None:
            return
        start = compute.children[-1].t_end if compute.children else compute.t_start
        compute.children.append(Span(
            "segment", start, t,
            attrs={
                "killed": f.get("killed", False),
                "lost_reference_s": f.get("lost_reference_s", 0.0),
            },
        ))

    def _on_crash(self, t: float, f: dict) -> None:
        wu = f.get("wu")
        if wu is None:
            return
        attempt = self._active.get((f["host"], wu))
        if attempt is None:
            self.orphans += 1
            return
        attempt.crashes += 1
        compute = attempt.open_span("compute")
        if compute is None:
            return
        start = compute.children[-1].t_end if compute.children else compute.t_start
        compute.children.append(Span(
            "segment", start, t,
            attrs={
                "crash": True,
                "lost_reference_s": f.get("lost_reference_s", 0.0),
            },
        ))

    def _on_complete(self, t: float, f: dict) -> None:
        attempt = self._active.get((f["host"], f["wu"]))
        if attempt is None:
            self.orphans += 1
            return
        compute = attempt.open_span("compute")
        if compute is not None:
            compute.t_end = t
            compute.attrs["active_s"] = f.get("active_s")
            if compute.children:
                start = compute.children[-1].t_end
                if start is not None and t > start:
                    compute.children.append(Span("segment", start, t))
        attempt.spans.append(Span(
            "report", t, attrs={"report_delay_s": f.get("report_delay_s")},
        ))

    def _on_report_lost(self, t: float, f: dict) -> None:
        wu = f.get("wu")
        if wu is None:
            return
        attempt = self._active.get((f["host"], wu))
        if attempt is None:
            self.orphans += 1
            return
        attempt.report_retries += 1
        report = attempt.open_span("report")
        if report is not None:
            report.children.append(Span("retry", t, t, attrs={"reason": "lost"}))

    def _on_result_fault(self, t: float, f: dict, kind: str) -> None:
        attempt = self._active.get((f.get("host"), f.get("wu")))
        if attempt is not None:
            attempt.fault_kinds.append(kind)

    def _on_result(self, t: float, f: dict) -> None:
        attempt = self._match(f)
        if attempt is None:
            self.orphans += 1
            return
        active = self._active.get((f["host"], f["wu"]))
        if active is attempt:
            del self._active[(f["host"], f["wu"])]
        report = attempt.open_span("report")
        if report is not None:
            report.t_end = t
        attempt.t_end = t
        if f.get("late"):
            attempt.outcome = "late"
        elif f.get("valid", True):
            attempt.outcome = "valid"
        else:
            attempt.outcome = "invalid"
        self._close_spans(attempt, t)

    def _on_reissue(self, t: float, f: dict) -> None:
        tree = self._tree(f["wu"])
        reason = f.get("reason", "deadline")
        trigger_idx: int | None = None
        if reason == "deadline":
            # The deadline reclaimed the triggering host's copy: mark it so
            # late reports and the critical path can tell reclaimed copies
            # from live ones.
            attempt = self._active.get((f.get("host"), f["wu"]))
            if attempt is not None and attempt.deadline_missed_at is None:
                attempt.deadline_missed_at = t
                if attempt.outcome == "in-flight":
                    attempt.outcome = "timed-out"
                trigger_idx = tree.attempts.index(attempt)
        tree._pending.append((t, reason, trigger_idx))

    def _on_validate(self, t: float, f: dict) -> None:
        tree = self._tree(f["wu"])
        tree.outcome = "validated"
        tree.t_close = t
        tree.regime = f.get("regime")
        tree.tainted = bool(f.get("tainted", False))

    def _on_failed(self, t: float, f: dict) -> None:
        tree = self._tree(f["wu"])
        tree.outcome = "failed"
        tree.t_close = t

    @staticmethod
    def _close_spans(attempt: AttemptSpan, t: float) -> None:
        for span in attempt.spans:
            if span.t_end is None:
                span.t_end = t

    _HANDLERS = {
        "server.release": _on_release,
        "server.issue": _on_issue,
        "agent.fetch": _on_fetch,
        "agent.abandon": _on_abandon,
        "agent.checkpoint": _on_checkpoint,
        "fault.crash": _on_crash,
        "agent.complete": _on_complete,
        "fault.report_lost": _on_report_lost,
        "fault.corrupt": lambda self, t, f: self._on_result_fault(t, f, "corrupt"),
        "fault.sabotage": lambda self, t, f: self._on_result_fault(t, f, "sabotage"),
        "server.result": _on_result,
        "server.reissue": _on_reissue,
        "server.validate": _on_validate,
        "server.workunit_failed": _on_failed,
    }

    # -- finalization --------------------------------------------------------

    def finalize(self, t_end: float | None = None) -> "SpanCampaign":
        """Close still-open spans at the horizon and return the campaign."""
        horizon = t_end if t_end is not None else (self.t_last or 0.0)
        for tree in self.trees.values():
            for attempt in tree.attempts:
                if attempt.t_end is None:
                    # Timed-out copies that never reported stay terminated
                    # at their deadline; truly in-flight copies end at the
                    # trace horizon.
                    if attempt.deadline_missed_at is not None:
                        attempt.t_end = attempt.deadline_missed_at
                stop = attempt.t_end if attempt.t_end is not None else horizon
                for span in attempt.spans:
                    if span.t_end is None:
                        span.t_end = stop
        return SpanCampaign(
            trees=self.trees,
            n_events=self.n_events,
            orphans=self.orphans,
            t_end=horizon,
        )


@dataclass
class SpanCampaign:
    """Every reconstructed workunit tree of one campaign, plus analysis."""

    trees: dict[int, WorkunitSpanTree]
    n_events: int = 0
    orphans: int = 0
    t_end: float = 0.0

    def __len__(self) -> int:
        return len(self.trees)

    def __iter__(self) -> Iterator[WorkunitSpanTree]:
        return iter(self.trees.values())

    # -- reconciliation (span counts vs campaign accounting) ----------------

    def counts(self) -> dict[str, int]:
        """Aggregates reconcilable against ``CampaignMetrics`` and the
        fault report: results == disclosed, validated == effective, ..."""
        c = {
            "workunits": len(self.trees),
            "validated": 0,
            "failed": 0,
            "open": 0,
            "attempts": 0,
            "results": 0,
            "late": 0,
            "invalid": 0,
            "timed_out": 0,
            "abandoned": 0,
            "tainted": 0,
            "crashes": 0,
            "report_retries": 0,
        }
        for tree in self:
            c[tree.outcome if tree.outcome in ("validated", "failed") else "open"] += 1
            c["tainted"] += int(tree.tainted)
            for a in tree.attempts:
                c["attempts"] += 1
                c["crashes"] += a.crashes
                c["report_retries"] += a.report_retries
                if a.outcome in ("valid", "invalid", "late"):
                    c["results"] += 1
                if a.outcome == "late":
                    c["late"] += 1
                elif a.outcome == "invalid":
                    c["invalid"] += 1
                elif a.outcome == "timed-out":
                    c["timed_out"] += 1
                elif a.outcome == "abandoned":
                    c["abandoned"] += 1
        return c

    # -- latency samples (exact, offline) -----------------------------------

    def latency_samples(self) -> dict[str, list[float]]:
        """Exact span-latency samples, the offline ground truth the P²
        health sketches are tested against.

        Keys: ``makespan_s`` (release -> validate), ``result_latency_s``
        (issue -> result, per reported attempt), ``active_hours``
        (device-side compute time per completed copy) and
        ``report_delay_s`` (complete -> server receipt).
        """
        makespan: list[float] = []
        result_latency: list[float] = []
        active_hours: list[float] = []
        report_delay: list[float] = []
        for tree in self:
            if tree.outcome == "validated" and tree.makespan_s is not None:
                makespan.append(tree.makespan_s)
            for a in tree.attempts:
                if a.outcome in ("valid", "invalid", "late") and a.t_end is not None:
                    result_latency.append(a.t_end - a.t_issue)
                for span in a.spans:
                    if span.kind == "compute" and span.attrs.get("active_s"):
                        active_hours.append(span.attrs["active_s"] / 3600.0)
                    if (
                        span.kind == "report"
                        and span.duration_s is not None
                        and a.outcome in ("valid", "invalid", "late")
                    ):
                        report_delay.append(span.duration_s)
        return {
            "makespan_s": makespan,
            "result_latency_s": result_latency,
            "active_hours": active_hours,
            "report_delay_s": report_delay,
        }

    # -- straggler / tail analysis ------------------------------------------

    def stragglers(self, n: int = 10) -> list[WorkunitSpanTree]:
        """The ``n`` longest-makespan workunits (the campaign tail)."""
        closed = [t for t in self if t.makespan_s is not None]
        closed.sort(key=lambda t: t.makespan_s, reverse=True)
        return closed[:n]

    def critical_couples(self, n: int = 10) -> list[dict[str, Any]]:
        """Couples ranked by their longest workunit critical path.

        The couple whose slowest workunit closed last gates its receptor
        batch (and ultimately the campaign); rows carry the dominant
        critical-path category so the report can say *why* it was slow.
        """
        by_couple: dict[tuple[int, int], list[WorkunitSpanTree]] = {}
        for tree in self:
            if tree.couple is not None and tree.makespan_s is not None:
                by_couple.setdefault(tree.couple, []).append(tree)
        rows = []
        for couple, trees in by_couple.items():
            worst = max(trees, key=lambda t: t.makespan_s)
            categories = worst.time_by_category()
            dominant = max(categories, key=categories.get) if categories else "-"
            rows.append({
                "couple": couple,
                "n_workunits": len(trees),
                "worst_wu": worst.wu,
                "worst_makespan_s": worst.makespan_s,
                "mean_makespan_s": (
                    sum(t.makespan_s for t in trees) / len(trees)
                ),
                "attempts": sum(len(t.attempts) for t in trees),
                "dominant": dominant,
                "dominant_s": categories.get(dominant, 0.0),
            })
        rows.sort(key=lambda r: r["worst_makespan_s"], reverse=True)
        return rows[:n]

    def tail_summary(self) -> dict[str, float]:
        """Straggler shape of the validated-workunit makespans."""
        import numpy as np

        spans = np.asarray([
            t.makespan_s for t in self
            if t.outcome == "validated" and t.makespan_s is not None
        ])
        if spans.size == 0:
            return {}
        p50, p90, p99 = (float(np.quantile(spans, q)) for q in (0.5, 0.9, 0.99))
        return {
            "n": int(spans.size),
            "p50_s": p50,
            "p90_s": p90,
            "p99_s": p99,
            "max_s": float(spans.max()),
            "tail_ratio_p99_p50": p99 / p50 if p50 > 0 else float("nan"),
        }

    def weekly_throughput(self) -> dict[int, dict[str, int]]:
        """Per-project-week counts: released / validated / attempts."""
        weeks: dict[int, dict[str, int]] = {}

        def bucket(t: float) -> dict[str, int]:
            w = int(t / SECONDS_PER_WEEK)
            return weeks.setdefault(
                w, {"released": 0, "validated": 0, "attempts": 0, "failed": 0}
            )

        for tree in self:
            if tree.t_release is not None:
                bucket(tree.t_release)["released"] += 1
            if tree.t_close is not None:
                bucket(tree.t_close)[
                    "validated" if tree.outcome == "validated" else "failed"
                ] += 1
            for a in tree.attempts:
                bucket(a.t_issue)["attempts"] += 1
        return weeks


def reconstruct(events: Iterable[TraceEvent]) -> SpanCampaign:
    """Fold an event iterable into a :class:`SpanCampaign`."""
    rec = SpanReconstructor()
    for event in events:
        rec.observe(event)
    return rec.finalize()


def reconstruct_file(path: Path | str) -> SpanCampaign:
    """Stream a JSONL trace file into a :class:`SpanCampaign` without
    loading the whole trace into memory."""
    from .tracer import iter_trace

    return reconstruct(iter_trace(path))
