"""Streaming quantile estimation: the P² (Jain–Chlamtac) algorithm.

The health monitor needs span-latency percentiles *during* a campaign —
"p90 workunit makespan is drifting past the deadline" — but storing every
latency sample defeats the point of streaming sinks at campaign scale
(millions of workunits).  P² [Jain & Chlamtac, CACM 1985] tracks one
quantile with five markers whose heights are adjusted by a piecewise-
parabolic interpolation on every observation: O(1) memory, O(1) update,
no buffering beyond the first five samples.

:class:`P2Quantile` is the single-quantile estimator;
:class:`QuantileSketch` bundles several (p50/p90/p99 by default) behind a
metric-like ``observe()`` interface, plus exact count/min/max, and
registers in a :class:`~repro.obs.metrics.MetricsRegistry` through
``registry.quantiles(name)`` like any other metric kind.

P² is asymptotic: on the heavily skewed latency distributions volunteer
campaigns produce, the five-marker estimate needs a few thousand samples
to settle.  :class:`QuantileSketch` therefore runs a bounded *warm-up
hybrid*: the first ``warmup`` samples (default 4096, ~32 KiB) are kept in
a buffer and estimates read off it are **exact** (same linear
interpolation as ``numpy.quantile``); once the stream outgrows the buffer
it is dropped and the P² markers — fed every sample from the very first,
in arrival order — take over.  Memory stays O(1) either way.

Hot-path contract: while the warm-up buffer is live, ``observe()`` is an
append plus running count/sum/min/max — the buffer is sorted lazily when
an estimate is actually read, and the P² marker updates are deferred and
replayed (in arrival order, so marker state is identical to per-sample
feeding) in one batch when the stream outgrows the buffer.  This keeps
the health monitor's per-event cost flat during the warm-up phase that
dominates campaign-scale streams.

Accuracy contract: tested against exact offline percentiles of the same
campaign trace to within 2% relative error (``tests/test_obs_spans.py``);
the estimate is *exact* while fewer than five samples have arrived.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """One streaming quantile via the P² algorithm (5 markers).

    >>> q = P2Quantile(0.5)
    >>> for v in range(1, 100):
    ...     q.observe(float(v))
    >>> abs(q.value - 50.0) < 2.0
    True
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "n")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.n = 0
        self._heights: list[float] = []  # marker heights (sorted)
        # 1-based marker positions, per the original paper's notation
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        value = float(value)
        self.n += 1
        heights = self._heights
        if len(heights) < 5:
            # Initialization phase: collect the first five samples sorted.
            lo, hi = 0, len(heights)
            while lo < hi:
                mid = (lo + hi) // 2
                if heights[mid] < value:
                    lo = mid + 1
                else:
                    hi = mid
            heights.insert(lo, value)
            return

        positions = self._positions
        # Locate the cell and clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]

        # Adjust the three interior markers by at most one position each.
        for i in (1, 2, 3):
            d = desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    # Parabolic prediction left the bracket: fall back to
                    # linear interpolation toward the neighbour.
                    j = i + int(step)
                    heights[i] += step * (heights[j] - heights[i]) / (
                        positions[j] - positions[i]
                    )
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def value(self) -> float:
        """The current quantile estimate (exact below five samples)."""
        if self.n == 0:
            raise ValueError("no observations yet")
        heights = self._heights
        if len(heights) < 5:
            # Exact small-sample quantile (nearest-rank on the sorted buffer).
            rank = max(0, min(len(heights) - 1, round(self.p * (len(heights) - 1))))
            return heights[rank]
        return heights[2]


class QuantileSketch:
    """A bundle of P² estimators behind one metric-style ``observe()``.

    Registered in a :class:`~repro.obs.metrics.MetricsRegistry` via
    ``registry.quantiles(name, quantiles=(0.5, 0.9, 0.99))``; dumps as a
    JSON-safe document like every other metric kind.
    """

    kind = "quantiles"

    DEFAULT_QUANTILES = (0.5, 0.9, 0.99)
    #: warm-up buffer bound: estimates are exact until this many samples
    DEFAULT_WARMUP = 4096

    def __init__(
        self,
        name: str,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        help: str = "",
        warmup: int = DEFAULT_WARMUP,
    ) -> None:
        qs = tuple(float(q) for q in quantiles)
        if not qs or sorted(qs) != list(qs) or len(set(qs)) != len(qs):
            raise ValueError(
                f"sketch {name} needs strictly increasing quantiles, got {qs}"
            )
        self.name = name
        self.help = help
        self.quantiles = qs
        self.warmup = warmup
        self._estimators = [P2Quantile(q) for q in qs]
        #: exact warm-up buffer in *arrival* order (sorted lazily for
        #: estimates), dropped once the stream outgrows ``warmup``
        self._buffer: list[float] | None = [] if warmup > 0 else None
        self._sorted: list[float] | None = None  #: lazy sorted view cache
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        buffer = self._buffer
        if buffer is not None:
            if self.count <= self.warmup:
                # Warm-up fast path: estimates read the (lazily sorted)
                # buffer, so the P² marker updates are deferred until the
                # hand-over below.
                buffer.append(value)
                self._sorted = None
                return
            # Hand over to the P² markers: replay the buffered samples in
            # arrival order — the marker state is bit-identical to having
            # fed every sample as it arrived.
            self._buffer = None
            self._sorted = None
            for est in self._estimators:
                observe = est.observe
                for buffered in buffer:
                    observe(buffered)
        for est in self._estimators:
            est.observe(value)

    def observe_many(self, values: list[float]) -> None:
        """Fold a batch of numeric samples in arrival order.

        State-identical to calling :meth:`observe` per sample: count,
        sum, min and max are order-free, and the P² markers are fed (or
        replay-deferred) in the same arrival order either way.  The
        running aggregates use the C-level ``sum``/``min``/``max``
        builtins, so amortized batch feeding is several times cheaper
        than per-sample calls — the health monitor's drain path relies
        on this.
        """
        n = len(values)
        if n == 0:
            return
        if n == 1:
            self.observe(values[0])
            return
        self.count += n
        self.sum += sum(values)
        lo = min(values)
        hi = max(values)
        if lo < self.min:
            self.min = float(lo)
        if hi > self.max:
            self.max = float(hi)
        buffer = self._buffer
        if buffer is not None:
            buffer.extend(values)
            self._sorted = None
            if self.count <= self.warmup:
                return
            # Hand over to the P² markers: replay everything buffered,
            # in arrival order (the batch was already appended above).
            self._buffer = None
            self._sorted = None
            values = buffer
        for est in self._estimators:
            observe = est.observe
            for value in values:
                observe(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch's samples into this one.

        The host ledger recombines shard-local sketches with this: the
        other sketch's warm-up buffer is replayed in its arrival order,
        so the merged state is identical to one sketch having observed
        both streams back to back.  A sketch that already outgrew its
        warm-up buffer no longer holds its samples and cannot be merged
        exactly — that raises rather than silently degrading.
        """
        if other.count == 0:
            return
        if other._buffer is None:
            raise ValueError(
                f"cannot merge sketch {other.name!r}: it outgrew its "
                f"warm-up buffer ({other.count} > {other.warmup} samples) "
                "and no longer holds its samples"
            )
        if tuple(other.quantiles) != tuple(self.quantiles):
            raise ValueError(
                f"cannot merge sketch {other.name!r} tracking "
                f"{other.quantiles} into one tracking {self.quantiles}"
            )
        self.observe_many(list(other._buffer))

    @property
    def exact(self) -> bool:
        """True while estimates are exact (warm-up buffer still live)."""
        return self._buffer is not None and self.count > 0

    def estimate(self, p: float) -> float:
        """The estimate for quantile ``p`` (must be one of the tracked).

        Exact (``numpy.quantile``-style linear interpolation over the
        warm-up buffer) until ``warmup`` samples, streaming P² beyond.
        """
        for q, est in zip(self.quantiles, self._estimators):
            if q == p:
                if self._buffer:
                    return self._interpolate(p)
                return est.value
        raise KeyError(f"sketch {self.name} does not track quantile {p}")

    def _interpolate(self, p: float) -> float:
        buf = self._sorted
        if buf is None:
            buf = self._sorted = sorted(self._buffer)
        pos = p * (len(buf) - 1)
        lo = int(pos)
        frac = pos - lo
        if frac == 0.0 or lo + 1 >= len(buf):
            return buf[lo]
        return buf[lo] * (1.0 - frac) + buf[lo + 1] * frac

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"sketch {self.name} has no observations")
        return self.sum / self.count

    def as_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            doc["min"] = self.min
            doc["max"] = self.max
            doc["exact"] = self.exact
            doc["estimates"] = {
                f"p{q * 100:g}": self.estimate(q) for q in self.quantiles
            }
        return doc
