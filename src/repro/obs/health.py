"""Streaming campaign health: quantile sketches and SLO rules.

A :class:`HealthMonitor` rides the trace stream *during* a simulation —
attached as a :class:`HealthSink` wrapped around the tracer's sink, so it
sees every ``server.*`` / ``agent.*`` / ``fault.*`` event with zero extra
emit sites — and maintains:

- **P² quantile sketches** (:mod:`repro.obs.quantiles`) over the span
  latencies the offline reconstructor measures exactly: workunit makespan
  (release → validate), result latency (issue → result), report delay and
  device active hours.  O(1) memory per sketch; within ~2 % of the exact
  offline percentiles (pinned by ``tests/test_obs_spans.py``).
- **SLO rules** with breach/clear hysteresis, each emitting
  ``health.slo_breach`` / ``health.slo_clear`` trace events on transition:

  ========================  ==============================================
  rule                      breach condition (defaults in :class:`SLOConfig`)
  ========================  ==============================================
  ``queue-starvation``      idle agent polls in a sliding day exceed a cap
  ``deadline-storm``        deadline reissues in a sliding week exceed a cap
  ``reissue-burn``          cumulative reissues burn the campaign budget
  ``validation-backlog``    workunits stuck awaiting a quorum partner
  ========================  ==============================================

The monitor owns a private :class:`MetricsRegistry` so campaign telemetry
exports stay byte-identical with the monitor attached, and it never
touches simulation state or RNG streams — a health-monitored campaign is
bit-identical in outcome to an unmonitored one (golden-digest pinned).

:meth:`HealthMonitor.finalize` closes open breaches and renders the
final :class:`SLOReport` attached to ``CampaignResult.health``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry
from .tracer import TraceEvent, Tracer

__all__ = [
    "SLOConfig",
    "SLORule",
    "SLOReport",
    "HealthMonitor",
    "HealthSink",
    "NullSink",
]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class SLOConfig:
    """Thresholds and windows for the built-in SLO rules."""

    #: ``queue-starvation``: breach when this many ``agent.idle`` polls
    #: land inside the sliding window (hosts outnumber available work)
    starvation_window_s: float = SECONDS_PER_DAY
    starvation_idle_polls: int = 200
    #: ``deadline-storm``: breach when this many deadline reissues land
    #: inside the sliding window (straggler hosts shedding copies)
    deadline_window_s: float = SECONDS_PER_WEEK
    deadline_reissues: int = 25
    #: ``reissue-burn``: breach when cumulative reissues exceed this
    #: fraction of the campaign budget (``max_reissues`` x workunits;
    #: an unbounded server falls back to ``fallback_reissues_per_wu``)
    burn_fraction: float = 0.75
    fallback_reissues_per_wu: float = 2.0
    #: ``validation-backlog``: breach when this many workunits hold a
    #: valid result but are still waiting on a quorum partner
    backlog_workunits: int = 50
    #: hysteresis: a breached rule clears once its level drops to this
    #: fraction of the breach threshold
    clear_fraction: float = 0.5


class SLORule:
    """One rule's breach/clear state machine with time accounting.

    ``update(t, level)`` compares the instantaneous level against the
    thresholds: breach at ``level >= threshold``, clear at
    ``level <= threshold * clear_fraction`` (hysteresis keeps a rule from
    flapping around the boundary).  Transitions are reported to the
    monitor, which emits the ``health.slo_breach`` / ``health.slo_clear``
    trace events; the rule accumulates breach count and breached seconds
    for the final report.
    """

    def __init__(self, name: str, threshold: float, clear_fraction: float) -> None:
        self.name = name
        self.threshold = threshold
        self.clear_level = threshold * clear_fraction
        self.breached = False
        self.t_breach: float | None = None
        self.n_breaches = 0
        self.breached_s = 0.0
        self.peak_level = 0.0

    def update(self, t: float, level: float, monitor: "HealthMonitor") -> None:
        self.peak_level = max(self.peak_level, level)
        if not self.breached and level >= self.threshold:
            self.breached = True
            self.t_breach = t
            self.n_breaches += 1
            monitor._emit_breach(t, self.name, level, self.threshold)
        elif self.breached and level <= self.clear_level:
            self.breached = False
            duration = t - (self.t_breach or t)
            self.breached_s += duration
            self.t_breach = None
            monitor._emit_clear(t, self.name, duration)

    def close(self, t_end: float) -> None:
        """Account a still-open breach at the campaign horizon."""
        if self.breached and self.t_breach is not None:
            self.breached_s += max(0.0, t_end - self.t_breach)

    def as_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "breaches": self.n_breaches,
            "breached_s": self.breached_s,
            "breached_at_end": self.breached,
            "peak_level": self.peak_level,
        }


class HealthMonitor:
    """Fold trace events into live health state (sketches + SLO rules)."""

    #: sketch-tracked latencies: registry metric name -> help string
    SKETCHES = {
        "health.makespan_s": "workunit makespan (release -> validate), seconds",
        "health.result_latency_s": "issue -> result latency per attempt, seconds",
        "health.report_delay_s": "compute-complete -> server receipt, seconds",
        "health.active_hours": "device-side active compute per result, hours",
    }

    def __init__(
        self,
        config: SLOConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        #: private registry: campaign telemetry exports must stay
        #: byte-identical with the monitor attached
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer: Tracer | None = None
        self.sketches = {
            name: self.registry.quantiles(name, help=text)
            for name, text in self.SKETCHES.items()
        }
        cfg = self.config
        self.rules = {
            "queue-starvation": SLORule(
                "queue-starvation", cfg.starvation_idle_polls, cfg.clear_fraction
            ),
            "deadline-storm": SLORule(
                "deadline-storm", cfg.deadline_reissues, cfg.clear_fraction
            ),
            "reissue-burn": SLORule(
                "reissue-burn", cfg.burn_fraction, cfg.clear_fraction
            ),
            "validation-backlog": SLORule(
                "validation-backlog", cfg.backlog_workunits, cfg.clear_fraction
            ),
        }
        # correlation state (bounded by in-flight work, not trace length)
        self._t_release: dict[int, float] = {}
        self._t_issue: dict[tuple[int, int], float] = {}
        self._pending_quorum: set[int] = set()
        self._idle_window: deque[float] = deque()
        self._deadline_window: deque[float] = deque()
        self._reissues_total = 0
        self._reissue_budget: float | None = None
        self.t_last = 0.0
        self.n_observed = 0

    def bind(self, tracer: Tracer) -> None:
        """Attach the tracer used to emit ``health.*`` transition events."""
        self.tracer = tracer

    def configure_campaign(
        self, n_workunits: int, max_reissues: int | None
    ) -> None:
        """Size the reissue-burn budget from the campaign shape."""
        per_wu = (
            float(max_reissues)
            if max_reissues is not None
            else self.config.fallback_reissues_per_wu
        )
        self._reissue_budget = max(1.0, per_wu * n_workunits)

    # -- event fold ----------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        t = event.t_sim
        if t is None:
            return
        self.n_observed += 1
        self.t_last = t
        f = event.fields
        etype = event.etype
        if etype == "server.release":
            self._t_release[f["wu"]] = t
        elif etype == "server.issue":
            self._t_issue[(f["wu"], f.get("copy", 0))] = t
        elif etype == "server.result":
            issued = self._t_issue.pop((f["wu"], f.get("copy", 0)), None)
            if issued is not None:
                self.sketches["health.result_latency_s"].observe(t - issued)
            self.registry.counter("health.results").inc()
            if f.get("valid") and not f.get("late"):
                self._pending_quorum.add(f["wu"])
                self._rule_update("validation-backlog", t)
        elif etype == "server.validate":
            released = self._t_release.pop(f["wu"], None)
            if released is not None:
                self.sketches["health.makespan_s"].observe(t - released)
            self.registry.counter("health.validated").inc()
            self._pending_quorum.discard(f["wu"])
            self._rule_update("validation-backlog", t)
        elif etype == "server.workunit_failed":
            self.registry.counter("health.workunits_failed").inc()
            self._t_release.pop(f["wu"], None)
            self._pending_quorum.discard(f["wu"])
            self._rule_update("validation-backlog", t)
        elif etype == "server.reissue":
            self._reissues_total += 1
            self.registry.counter("health.reissues").inc()
            if f.get("reason") == "deadline":
                self._deadline_window.append(t)
            self._rule_update("deadline-storm", t)
            self._rule_update("reissue-burn", t)
        elif etype == "agent.complete":
            delay = f.get("report_delay_s")
            if delay is not None:
                self.sketches["health.report_delay_s"].observe(delay)
            active = f.get("active_s")
            if active is not None:
                self.sketches["health.active_hours"].observe(active / 3600.0)
        elif etype == "agent.idle":
            self.registry.counter("health.idle_polls").inc()
            self._idle_window.append(t)
            self._rule_update("queue-starvation", t)

    def _rule_update(self, name: str, t: float) -> None:
        cfg = self.config
        if name == "queue-starvation":
            window = self._idle_window
            while window and window[0] < t - cfg.starvation_window_s:
                window.popleft()
            level: float = len(window)
        elif name == "deadline-storm":
            window = self._deadline_window
            while window and window[0] < t - cfg.deadline_window_s:
                window.popleft()
            level = len(window)
        elif name == "reissue-burn":
            if self._reissue_budget is None:
                return
            level = self._reissues_total / self._reissue_budget
        else:  # validation-backlog
            level = len(self._pending_quorum)
        self.rules[name].update(t, level, self)

    def _emit_breach(
        self, t: float, rule: str, level: float, threshold: float
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "health.slo_breach", t_sim=t,
                rule=rule, level=level, threshold=threshold,
            )

    def _emit_clear(self, t: float, rule: str, breached_s: float) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "health.slo_clear", t_sim=t, rule=rule, breached_s=breached_s,
            )

    # -- finalization --------------------------------------------------------

    def finalize(self, t_end: float | None = None) -> "SLOReport":
        horizon = t_end if t_end is not None else self.t_last
        for rule in self.rules.values():
            rule.close(horizon)
        return SLOReport(
            t_end=horizon,
            n_observed=self.n_observed,
            rules={name: rule.as_dict() for name, rule in self.rules.items()},
            latencies={
                name: sketch.as_dict() for name, sketch in self.sketches.items()
            },
            counters={
                name: self.registry.get(name).value
                for name in self.registry.names()
                if getattr(self.registry.get(name), "kind", None) == "counter"
            },
        )


@dataclass
class SLOReport:
    """The final health verdict of one campaign (JSON-safe)."""

    t_end: float
    n_observed: int
    rules: dict[str, dict[str, Any]] = field(default_factory=dict)
    latencies: dict[str, dict[str, Any]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def breached_rules(self) -> list[str]:
        """Rules that breached at least once, sorted by time in breach."""
        hit = [(r["breached_s"], name) for name, r in self.rules.items()
               if r["breaches"] > 0]
        return [name for _, name in sorted(hit, reverse=True)]

    @property
    def healthy(self) -> bool:
        return not self.breached_rules

    def as_dict(self) -> dict[str, Any]:
        return {
            "t_end": self.t_end,
            "n_observed": self.n_observed,
            "healthy": self.healthy,
            "rules": self.rules,
            "latencies": self.latencies,
            "counters": self.counters,
        }

    def render(self) -> str:
        """A compact terminal SLO summary."""
        lines = [
            "SLO report: "
            + ("healthy" if self.healthy
               else "breached (" + ", ".join(self.breached_rules) + ")")
        ]
        lines.append(
            f"  {'rule':<20} {'breaches':>8} {'in-breach':>12} {'peak':>10} "
            f"{'threshold':>10}"
        )
        for name, r in sorted(self.rules.items()):
            in_breach = r["breached_s"]
            lines.append(
                f"  {name:<20} {r['breaches']:>8d} {in_breach / 3600.0:>10.1f} h "
                f"{r['peak_level']:>10.2f} {r['threshold']:>10.2f}"
            )
        lines.append("  latency percentiles (streaming P2):")
        for name, sk in sorted(self.latencies.items()):
            if not sk.get("count"):
                continue
            est = sk.get("estimates", {})
            rendered = "  ".join(
                f"{q}={est[q]:,.1f}" for q in sorted(est)
            )
            lines.append(f"    {name:<26} n={sk['count']:<7d} {rendered}")
        return "\n".join(lines)


class NullSink:
    """Discard every event (health-only tracing keeps no trace buffer)."""

    def append(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class HealthSink:
    """Tee a tracer's event stream into a :class:`HealthMonitor`.

    Wraps the tracer's real sink: every event is forwarded to the inner
    sink unchanged, and non-``health`` events additionally feed the
    monitor.  The ``health`` channel is excluded from monitoring because
    the monitor itself emits on it (through the same tracer) while
    handling an event — forwarding those without re-entering
    :meth:`HealthMonitor.observe` keeps the fold from recursing.
    """

    def __init__(self, monitor: HealthMonitor, inner) -> None:
        self.monitor = monitor
        self.inner = inner

    def append(self, event: TraceEvent) -> None:
        self.inner.append(event)
        if event.channel != "health":
            self.monitor.observe(event)

    def close(self) -> None:
        self.inner.close()
