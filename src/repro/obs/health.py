"""Streaming campaign health: quantile sketches and SLO rules.

A :class:`HealthMonitor` rides the trace stream *during* a simulation —
attached as a :class:`HealthSink` wrapped around the tracer's sink, so it
sees every ``server.*`` / ``agent.*`` / ``fault.*`` event with zero extra
emit sites — and maintains:

- **P² quantile sketches** (:mod:`repro.obs.quantiles`) over the span
  latencies the offline reconstructor measures exactly: workunit makespan
  (release → validate), result latency (issue → result), report delay and
  device active hours.  O(1) memory per sketch; within ~2 % of the exact
  offline percentiles (pinned by ``tests/test_obs_spans.py``).
- **SLO rules** with breach/clear hysteresis, each emitting
  ``health.slo_breach`` / ``health.slo_clear`` trace events on transition:

  ========================  ==============================================
  rule                      breach condition (defaults in :class:`SLOConfig`)
  ========================  ==============================================
  ``queue-starvation``      idle agent polls in a sliding day exceed a cap
  ``deadline-storm``        deadline reissues in a sliding week exceed a cap
  ``reissue-burn``          cumulative reissues burn the campaign budget
  ``validation-backlog``    workunits stuck awaiting a quorum partner
  ========================  ==============================================

The monitor owns a private :class:`MetricsRegistry` so campaign telemetry
exports stay byte-identical with the monitor attached, and it never
touches simulation state or RNG streams — a health-monitored campaign is
bit-identical in outcome to an unmonitored one (golden-digest pinned).

:meth:`HealthMonitor.finalize` closes open breaches and renders the
final :class:`SLOReport` attached to ``CampaignResult.health``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry
from .tracer import TraceEvent, Tracer

__all__ = [
    "SLOConfig",
    "SLORule",
    "SLOReport",
    "HealthMonitor",
    "HealthSink",
    "NullSink",
]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


@dataclass(frozen=True)
class SLOConfig:
    """Thresholds and windows for the built-in SLO rules."""

    #: ``queue-starvation``: breach when this many ``agent.idle`` polls
    #: land inside the sliding window (hosts outnumber available work)
    starvation_window_s: float = SECONDS_PER_DAY
    starvation_idle_polls: int = 200
    #: ``deadline-storm``: breach when this many deadline reissues land
    #: inside the sliding window (straggler hosts shedding copies)
    deadline_window_s: float = SECONDS_PER_WEEK
    deadline_reissues: int = 25
    #: ``reissue-burn``: breach when cumulative reissues exceed this
    #: fraction of the campaign budget (``max_reissues`` x workunits;
    #: an unbounded server falls back to ``fallback_reissues_per_wu``)
    burn_fraction: float = 0.75
    fallback_reissues_per_wu: float = 2.0
    #: ``validation-backlog``: breach when this many workunits hold a
    #: valid result but are still waiting on a quorum partner
    backlog_workunits: int = 50
    #: hysteresis: a breached rule clears once its level drops to this
    #: fraction of the breach threshold
    clear_fraction: float = 0.5


class SLORule:
    """One rule's breach/clear state machine with time accounting.

    ``update(t, level)`` compares the instantaneous level against the
    thresholds: breach at ``level >= threshold``, clear at
    ``level <= threshold * clear_fraction`` (hysteresis keeps a rule from
    flapping around the boundary).  Transitions are reported to the
    monitor, which emits the ``health.slo_breach`` / ``health.slo_clear``
    trace events; the rule accumulates breach count and breached seconds
    for the final report.
    """

    def __init__(self, name: str, threshold: float, clear_fraction: float) -> None:
        self.name = name
        self.threshold = threshold
        self.clear_level = threshold * clear_fraction
        self.breached = False
        self.t_breach: float | None = None
        self.n_breaches = 0
        self.breached_s = 0.0
        self.peak_level = 0.0

    def update(self, t: float, level: float, monitor: "HealthMonitor") -> None:
        self.peak_level = max(self.peak_level, level)
        if not self.breached and level >= self.threshold:
            self.breached = True
            self.t_breach = t
            self.n_breaches += 1
            monitor._emit_breach(t, self.name, level, self.threshold)
        elif self.breached and level <= self.clear_level:
            self.breached = False
            duration = t - (self.t_breach or t)
            self.breached_s += duration
            self.t_breach = None
            monitor._emit_clear(t, self.name, duration)

    def close(self, t_end: float) -> None:
        """Account a still-open breach at the campaign horizon."""
        if self.breached and self.t_breach is not None:
            self.breached_s += max(0.0, t_end - self.t_breach)

    def as_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "breaches": self.n_breaches,
            "breached_s": self.breached_s,
            "breached_at_end": self.breached,
            "peak_level": self.peak_level,
        }


class HealthMonitor:
    """Fold trace events into live health state (sketches + SLO rules)."""

    #: sketch sample lists hand over to the sketches in chunks of this
    #: many samples (and at finalize) — memory stays bounded while the
    #: per-sample fold cost drops to a list append
    SKETCH_CHUNK = 4096

    #: sketch-tracked latencies: registry metric name -> help string
    SKETCHES = {
        "health.makespan_s": "workunit makespan (release -> validate), seconds",
        "health.result_latency_s": "issue -> result latency per attempt, seconds",
        "health.report_delay_s": "compute-complete -> server receipt, seconds",
        "health.active_hours": "device-side active compute per result, hours",
    }

    def __init__(
        self,
        config: SLOConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else SLOConfig()
        #: private registry: campaign telemetry exports must stay
        #: byte-identical with the monitor attached
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer: Tracer | None = None
        self.sketches = {
            name: self.registry.quantiles(name, help=text)
            for name, text in self.SKETCHES.items()
        }
        cfg = self.config
        self.rules = {
            "queue-starvation": SLORule(
                "queue-starvation", cfg.starvation_idle_polls, cfg.clear_fraction
            ),
            "deadline-storm": SLORule(
                "deadline-storm", cfg.deadline_reissues, cfg.clear_fraction
            ),
            "reissue-burn": SLORule(
                "reissue-burn", cfg.burn_fraction, cfg.clear_fraction
            ),
            "validation-backlog": SLORule(
                "validation-backlog", cfg.backlog_workunits, cfg.clear_fraction
            ),
        }
        # correlation state (bounded by in-flight work, not trace length).
        # ``_t_issue`` keys pack ``(wu, copy)`` into one int — copy
        # ordinals are tiny (reissue budgets are single digits), so
        # ``wu * 2**20 + copy`` is collision-free and hashes ~2x faster
        # than a tuple on the fold hot path.
        self._t_release: dict[int, float] = {}
        self._t_issue: dict[int, float] = {}
        self._pending_quorum: set[int] = set()
        self._idle_window: deque[float] = deque()
        self._deadline_window: deque[float] = deque()
        self._reissues_total = 0
        self._reissue_budget: float | None = None
        self.t_last = 0.0
        self.n_observed = 0
        # -- hot-path caches -------------------------------------------------
        # The fold runs once per lifecycle event; counters are plain ints
        # synced into the registry at finalize() (lazily, like the live
        # registry counters: a zero count never materializes a metric),
        # sketches and rules are bound to locals-friendly attributes, and
        # event types dispatch through one dict lookup — a miss skips
        # irrelevant channels (fault.*, telemetry.*, docking.*) outright.
        self._n_results = 0
        self._n_validated = 0
        self._n_wu_failed = 0
        self._n_reissues = 0
        self._n_idle = 0
        # sketch samples buffer in plain lists (a 60 ns append on the
        # fold path) and feed the sketches chunk-wise through
        # ``QuantileSketch.observe_many`` — state-identical to per-event
        # feeding, several times cheaper (see that method's docstring)
        self._lat_samples: list[float] = []
        self._mk_samples: list[float] = []
        self._rep_samples: list[float] = []
        self._act_samples: list[float] = []
        self._sk_makespan = self.sketches["health.makespan_s"]
        self._sk_latency = self.sketches["health.result_latency_s"]
        self._sk_report = self.sketches["health.report_delay_s"]
        self._sk_active = self.sketches["health.active_hours"]
        self._rule_starvation = self.rules["queue-starvation"]
        self._rule_deadline = self.rules["deadline-storm"]
        self._rule_burn = self.rules["reissue-burn"]
        self._rule_backlog = self.rules["validation-backlog"]
        self._dispatch = {
            "server.release": self._on_release,
            "server.issue": self._on_issue,
            "server.result": self._on_result,
            "server.validate": self._on_validate,
            "server.workunit_failed": self._on_workunit_failed,
            "server.reissue": self._on_reissue,
            "agent.complete": self._on_complete,
            "agent.idle": self._on_idle,
        }
        self._sink: "HealthSink | None" = None

    def bind(self, tracer: Tracer) -> None:
        """Attach the tracer used to emit ``health.*`` transition events."""
        self.tracer = tracer

    def attach_sink(self, sink: "HealthSink") -> None:
        """Register the tee so :meth:`finalize` can drain its buffer."""
        self._sink = sink

    def configure_campaign(
        self, n_workunits: int, max_reissues: int | None
    ) -> None:
        """Size the reissue-burn budget from the campaign shape."""
        per_wu = (
            float(max_reissues)
            if max_reissues is not None
            else self.config.fallback_reissues_per_wu
        )
        self._reissue_budget = max(1.0, per_wu * n_workunits)

    # -- event fold ----------------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Fold one event and evaluate the SLO rules at its timestamp.

        The per-event path: transitions land with the exact timestamp of
        the event that tipped the level.  Campaign runs go through
        :meth:`observe_batch` instead, which amortizes the rule sweep
        over a drain stride.
        """
        t = event.t_sim
        if t is None:
            return
        handler = self._dispatch.get(event.etype)
        if handler is not None:
            self.n_observed += 1
            self.t_last = t
            handler(t, event.fields)
            self._evaluate_rules(t)
            if len(self._lat_samples) >= self.SKETCH_CHUNK or len(
                self._mk_samples
            ) >= self.SKETCH_CHUNK or len(
                self._rep_samples
            ) >= self.SKETCH_CHUNK or len(
                self._act_samples
            ) >= self.SKETCH_CHUNK:
                self._drain_sketches()

    def observe_batch(self, events) -> None:
        """Fold a batch of events (the :class:`HealthSink` stride).

        State handlers run per event; the SLO rule sweep runs **once** at
        the batch's final timestamp, so breach/clear transitions are
        detected at drain granularity (their events carry the drain-point
        ``t_sim``, which is still the simulation time of a real event —
        at the default stride that is well under the sliding-window
        resolution of every rule).
        """
        dispatch = self._dispatch
        batch = [
            e for e in events if e.etype in dispatch and e.t_sim is not None
        ]
        if batch:
            self._fold_filtered(batch)

    def _fold_filtered(self, events: list[TraceEvent]) -> None:
        """Fold events already known to dispatch and carry a ``t_sim``.

        The :class:`HealthSink` drain lands here directly — its buffer
        admits only dispatchable, timestamped events, so this loop can
        skip every per-event guard and counter update.
        """
        dispatch = self._dispatch
        for event in events:
            dispatch[event.etype](event.t_sim, event.fields)
        self.n_observed += len(events)
        last = events[-1].t_sim
        self.t_last = last
        self._evaluate_rules(last)
        if len(self._lat_samples) >= self.SKETCH_CHUNK:
            self._sk_latency.observe_many(self._lat_samples)
            self._lat_samples.clear()
        if len(self._mk_samples) >= self.SKETCH_CHUNK:
            self._sk_makespan.observe_many(self._mk_samples)
            self._mk_samples.clear()
        if len(self._rep_samples) >= self.SKETCH_CHUNK:
            self._sk_report.observe_many(self._rep_samples)
            self._rep_samples.clear()
        if len(self._act_samples) >= self.SKETCH_CHUNK:
            self._sk_active.observe_many(self._act_samples)
            self._act_samples.clear()

    # one handler per lifecycle event type, bound in ``_dispatch``.  The
    # handlers mutate correlation state only; breach levels are read off
    # that state by ``_evaluate_rules`` (per event on the direct path,
    # once per drain on the batched path) --------------------------------

    def _on_release(self, t: float, f: dict) -> None:
        self._t_release[f["wu"]] = t

    def _on_issue(self, t: float, f: dict) -> None:
        self._t_issue[f["wu"] * 1_048_576 + f.get("copy", 0)] = t

    def _on_result(self, t: float, f: dict) -> None:
        issued = self._t_issue.pop(f["wu"] * 1_048_576 + f.get("copy", 0), None)
        if issued is not None:
            self._lat_samples.append(t - issued)
        self._n_results += 1
        if f.get("valid") and not f.get("late"):
            self._pending_quorum.add(f["wu"])

    def _on_validate(self, t: float, f: dict) -> None:
        released = self._t_release.pop(f["wu"], None)
        if released is not None:
            self._mk_samples.append(t - released)
        self._n_validated += 1
        self._pending_quorum.discard(f["wu"])

    def _on_workunit_failed(self, t: float, f: dict) -> None:
        self._n_wu_failed += 1
        self._t_release.pop(f["wu"], None)
        self._pending_quorum.discard(f["wu"])

    def _on_reissue(self, t: float, f: dict) -> None:
        self._reissues_total += 1
        self._n_reissues += 1
        if f.get("reason") == "deadline":
            self._deadline_window.append(t)

    def _on_complete(self, t: float, f: dict) -> None:
        delay = f.get("report_delay_s")
        if delay is not None:
            self._rep_samples.append(delay)
        active = f.get("active_s")
        if active is not None:
            self._act_samples.append(active / 3600.0)

    def _on_idle(self, t: float, f: dict) -> None:
        self._n_idle += 1
        self._idle_window.append(t)

    def _evaluate_rules(self, t: float) -> None:
        """Sweep all four rules against the current state at time ``t``.

        Sliding windows are pruned here (not in the handlers), so window
        membership at evaluation time is identical whether events arrived
        one at a time or in a drained batch.
        """
        window = self._idle_window
        edge = t - self.config.starvation_window_s
        while window and window[0] < edge:
            window.popleft()
        self._rule_starvation.update(t, len(window), self)
        window = self._deadline_window
        edge = t - self.config.deadline_window_s
        while window and window[0] < edge:
            window.popleft()
        self._rule_deadline.update(t, len(window), self)
        self._rule_backlog.update(t, len(self._pending_quorum), self)
        budget = self._reissue_budget
        if budget is not None:
            self._rule_burn.update(t, self._reissues_total / budget, self)

    def _emit_breach(
        self, t: float, rule: str, level: float, threshold: float
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "health.slo_breach", t_sim=t,
                rule=rule, level=level, threshold=threshold,
            )

    def _emit_clear(self, t: float, rule: str, breached_s: float) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "health.slo_clear", t_sim=t, rule=rule, breached_s=breached_s,
            )

    def _drain_sketches(self) -> None:
        """Hand buffered samples to the sketches (arrival order)."""
        for samples, sketch in (
            (self._lat_samples, self._sk_latency),
            (self._mk_samples, self._sk_makespan),
            (self._rep_samples, self._sk_report),
            (self._act_samples, self._sk_active),
        ):
            if samples:
                sketch.observe_many(samples)
                samples.clear()

    # -- finalization --------------------------------------------------------

    def _sync_counters(self) -> None:
        """Fold the hot-path int accumulators into the registry.

        Counters are created lazily (a zero count never materializes a
        metric, matching the per-event ``registry.counter(...).inc()``
        behaviour this replaces); the accumulators reset so a second
        finalize cannot double-count.
        """
        for name, count in (
            ("health.results", self._n_results),
            ("health.validated", self._n_validated),
            ("health.workunits_failed", self._n_wu_failed),
            ("health.reissues", self._n_reissues),
            ("health.idle_polls", self._n_idle),
        ):
            if count:
                self.registry.counter(name).inc(count)
        self._n_results = self._n_validated = self._n_wu_failed = 0
        self._n_reissues = self._n_idle = 0

    def finalize(self, t_end: float | None = None) -> "SLOReport":
        if self._sink is not None:
            self._sink.flush()
        self._drain_sketches()
        self._sync_counters()
        horizon = t_end if t_end is not None else self.t_last
        for rule in self.rules.values():
            rule.close(horizon)
        return SLOReport(
            t_end=horizon,
            n_observed=self.n_observed,
            rules={name: rule.as_dict() for name, rule in self.rules.items()},
            latencies={
                name: sketch.as_dict() for name, sketch in self.sketches.items()
            },
            counters={
                name: self.registry.get(name).value
                for name in self.registry.names()
                if getattr(self.registry.get(name), "kind", None) == "counter"
            },
        )


@dataclass
class SLOReport:
    """The final health verdict of one campaign (JSON-safe)."""

    t_end: float
    n_observed: int
    rules: dict[str, dict[str, Any]] = field(default_factory=dict)
    latencies: dict[str, dict[str, Any]] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def breached_rules(self) -> list[str]:
        """Rules that breached at least once, sorted by time in breach."""
        hit = [(r["breached_s"], name) for name, r in self.rules.items()
               if r["breaches"] > 0]
        return [name for _, name in sorted(hit, reverse=True)]

    @property
    def healthy(self) -> bool:
        return not self.breached_rules

    def as_dict(self) -> dict[str, Any]:
        return {
            "t_end": self.t_end,
            "n_observed": self.n_observed,
            "healthy": self.healthy,
            "rules": self.rules,
            "latencies": self.latencies,
            "counters": self.counters,
        }

    def render(self) -> str:
        """A compact terminal SLO summary."""
        lines = [
            "SLO report: "
            + ("healthy" if self.healthy
               else "breached (" + ", ".join(self.breached_rules) + ")")
        ]
        lines.append(
            f"  {'rule':<20} {'breaches':>8} {'in-breach':>12} {'peak':>10} "
            f"{'threshold':>10}"
        )
        for name, r in sorted(self.rules.items()):
            in_breach = r["breached_s"]
            lines.append(
                f"  {name:<20} {r['breaches']:>8d} {in_breach / 3600.0:>10.1f} h "
                f"{r['peak_level']:>10.2f} {r['threshold']:>10.2f}"
            )
        lines.append("  latency percentiles (streaming P2):")
        for name, sk in sorted(self.latencies.items()):
            if not sk.get("count"):
                continue
            est = sk.get("estimates", {})
            rendered = "  ".join(
                f"{q}={est[q]:,.1f}" for q in sorted(est)
            )
            lines.append(f"    {name:<26} n={sk['count']:<7d} {rendered}")
        return "\n".join(lines)


class NullSink:
    """Discard every event (health-only tracing keeps no trace buffer)."""

    def append(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass


class HealthSink:
    """Tee a tracer's event stream into a :class:`HealthMonitor`.

    Wraps the tracer's real sink.  Hot-path contract, tuned so attaching
    the monitor costs a small fraction of lifecycle tracing itself:

    - every event is forwarded to the inner sink **immediately**, so the
      trace/ring order is exactly the arrival order — buffering never
      reorders or delays the real stream;
    - only events the monitor actually folds (its dispatch-table etypes)
      enter the drain buffer; everything else — ``agent.checkpoint``,
      ``agent.report``, the monitor's own ``health.*`` emissions — costs
      one frozenset probe and is done;
    - the buffer drains into :meth:`HealthMonitor.observe_batch` every
      ``stride`` events (and on :meth:`flush`/:meth:`close`; the monitor
      drains it from ``finalize`` too), which runs the state handlers per
      event but sweeps the SLO rules once per drain.

    Consequently ``health.slo_breach``/``health.slo_clear`` events are
    detected and appended at drain boundaries: their ``t_sim`` is the
    simulation time of the last event in the drained batch.  The monitor
    never re-enters the fold on its own emissions (``health.*`` etypes
    are not in the dispatch table, so they forward without buffering).
    """

    #: drain stride: small enough that breach events stay timely in the
    #: sink, large enough to amortize the per-event tee overhead
    STRIDE = 64

    def __init__(self, monitor: HealthMonitor, inner, stride: int = STRIDE) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.monitor = monitor
        self.inner = inner
        self.stride = stride
        self._buffer: list[TraceEvent] = []
        self._inner_append = inner.append
        self._relevant = frozenset(monitor._dispatch)
        monitor.attach_sink(self)

    def append(self, event: TraceEvent) -> None:
        self._inner_append(event)
        if event.etype in self._relevant and event.t_sim is not None:
            buffer = self._buffer
            buffer.append(event)
            if len(buffer) >= self.stride:
                self.flush()

    def flush(self) -> None:
        """Drain the buffer into the monitor's batched fold."""
        buffer = self._buffer
        if buffer:
            # Swap before draining: a fold hook may emit through the
            # tracer and re-enter append() mid-iteration.  The buffer
            # admits only dispatchable timestamped events, so the
            # guard-free fold applies.
            self._buffer = []
            self.monitor._fold_filtered(buffer)

    def close(self) -> None:
        self.flush()
        self.inner.close()
