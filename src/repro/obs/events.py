"""The trace event taxonomy (versioned).

Every event type the instrumented subsystems may emit is declared here,
once, with its channel implied by the dotted prefix.  :class:`Tracer`
rejects unknown event types at emit time, and the doc-consistency check
(``tests/test_docs_consistency.py``) keeps this registry, the emitting
code and the taxonomy table in ``docs/observability.md`` mutually
consistent — an event type cannot exist in one place and not the others.

See docs/observability.md for the schema and the full taxonomy table.
"""

from __future__ import annotations

__all__ = ["TRACE_SCHEMA_VERSION", "EVENT_TYPES", "CHANNELS", "channel_of"]

#: Version stamped into every JSONL trace line (the ``v`` key).  Bump on
#: any backwards-incompatible change to the line layout or the reserved
#: keys; readers refuse traces with a different version.
TRACE_SCHEMA_VERSION = 1

#: Every legal event type -> one-line description.  The channel is the
#: dotted prefix (``server.issue`` lives on the ``server`` channel).
EVENT_TYPES: dict[str, str] = {
    # -- discrete-event kernel (repro.grid.des) ---------------------------
    "des.schedule": "a callback was scheduled (`at` = firing time)",
    "des.fire": "a scheduled callback fired",
    "des.cancel": "a tombstoned (cancelled) event was discarded by the kernel",
    # -- grid server (repro.boinc.server) ---------------------------------
    "server.release": "a fresh workunit left the release queue for first issue",
    "server.issue": "a workunit instance was handed to a requesting host",
    "server.reissue": "a workunit re-entered the issue queue "
                      "(`reason` = deadline | invalid | quorum-stall)",
    "server.result": "a result report arrived (`valid`, `late`)",
    "server.validate": "a workunit validated (`regime` = quorum | bounds | adaptive)",
    "server.refuse": "an RPC was refused during a server outage window "
                     "(`op` = request_work | on_result)",
    "server.workunit_failed": "a workunit exhausted its reissue budget and "
                              "was terminally failed",
    "server.batch_complete": "every workunit of a receptor batch validated",
    "server.campaign_complete": "the last workunit of the campaign closed "
                                "(validated or failed)",
    # -- volunteer agent (repro.boinc.agent) -------------------------------
    "agent.fetch": "an agent fetched a workunit instance",
    "agent.idle": "no work was available; the agent backs off before repolling",
    "agent.abandon": "the volunteer walked away from a fetched workunit",
    "agent.checkpoint": "an availability interruption committed a checkpoint "
                        "(`killed` = in-memory progress was lost)",
    "agent.complete": "a workunit finished computing (report still pending)",
    "agent.report": "an agent reported a finished result to the server",
    "agent.retry": "an agent backed off (exponential, jittered) before "
                   "retrying a refused or lost RPC (`reason`, `attempt`)",
    # -- fault injection (repro.faults) ------------------------------------
    "fault.crash": "an injected host crash lost un-checkpointed progress",
    "fault.corrupt": "an injected corruption made a result detectably invalid",
    "fault.sabotage": "a sabotage host returned a plausible-but-wrong result",
    "fault.report_lost": "an injected network fault dropped a result report",
    "fault.outage": "a server outage window began or ended (`phase`)",
    # -- docking engine (repro.maxdo.docking) ------------------------------
    "docking.engine": "an execution engine was selected for a docking run",
    "docking.batch": "a lockstep batched minimization finished "
                     "(`rounds` = fused-dispatch convergence rounds)",
    "docking.fanout": "starting positions fanned out over a process pool",
    "docking.position": "one starting position's energy map completed",
    "docking.checkpoint": "MaxDoRun committed a starting-position checkpoint",
    # -- telemetry (repro.boinc.simulator) ---------------------------------
    "telemetry.clamp": "a telemetry sample fell outside the campaign horizon "
                       "and was clamped to the edge day",
    # -- streaming health monitor (repro.obs.health) ------------------------
    "health.slo_breach": "an SLO rule entered breach "
                         "(`rule` = queue-starvation | deadline-storm | "
                         "reissue-burn | validation-backlog)",
    "health.slo_clear": "a previously-breached SLO rule recovered (`rule`, "
                        "`breached_s` = simulated seconds spent in breach)",
    # -- multi-campaign grid (repro.multi) ----------------------------------
    "grid.admit": "a campaign was admitted to the grid's candidate set "
                  "(at t=0 or mid-run at its `submit_week`)",
    "grid.drain": "a campaign was drained: no new issues, outstanding "
                  "results still accepted (`validated`, `n_workunits`)",
    "grid.complete": "a campaign closed its last workunit "
                     "(`validated`, `failed`)",
    # -- per-host behavioral ledger (repro.obs.ledger) ----------------------
    "host.trusted": "a host crossed the adaptive-replication trust streak "
                    "(`streak` = consecutive valid results)",
    "host.demoted": "a trusted host returned an invalid result and lost its "
                    "streak (`streak` = the streak it forfeited)",
    "host.spot_check": "a trusted host drew a deterministic spot check: the "
                       "quorum partner was kept despite trust (`wu`)",
    "host.credit": "credit granted for a successfully reported result "
                   "(`points` = claimed credit)",
    # -- scheduler RPC service (repro.service) ------------------------------
    "service.listen": "the scheduler service bound its listening socket "
                      "(`host`, `port`, `n_workunits`)",
    "service.request": "an RPC completed (`op`, `status`, `wall_ms`)",
    "service.refuse": "an RPC was refused at the socket layer with 503 + "
                      "Retry-After (`op`, `reason` = overload | draining)",
    "service.drain": "graceful shutdown drained the write queue "
                     "(`phase` = begin | end, `pending`)",
}

#: The per-subsystem channels, in taxonomy order.
CHANNELS: tuple[str, ...] = (
    "des", "server", "agent", "fault", "docking", "telemetry", "health",
    "host", "grid", "service",
)


def channel_of(etype: str) -> str:
    """The channel an event type belongs to (its dotted prefix)."""
    return etype.partition(".")[0]
