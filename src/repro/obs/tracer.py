"""Structured event tracing.

A :class:`Tracer` turns instrumentation points scattered through the DES
kernel, the grid server, the volunteer agents and the docking engine into
typed :class:`TraceEvent` records carrying both simulation time and wall
time.  Records flow into a pluggable sink — an in-memory ring buffer
(:class:`RingSink`) or a streaming JSONL file (:class:`JsonlSink`) — and
per-event-type counts are kept regardless of sink capacity, so aggregate
reconciliation (e.g. trace counts vs :class:`~repro.core.metrics.
CampaignMetrics`) never depends on buffer size.

Cost contract: instrumented hot paths hold a tracer reference that is
``None`` when tracing is off, so the disabled cost is one identity check;
a constructed-but-disabled tracer short-circuits in :meth:`Tracer.emit`
before touching the sink, the counts or the clock.

See docs/observability.md for the trace schema and the event taxonomy.
"""

from __future__ import annotations

import json
import time
from collections import Counter as _Counter
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from .events import EVENT_TYPES, TRACE_SCHEMA_VERSION, channel_of

__all__ = [
    "TraceEvent",
    "RingSink",
    "JsonlSink",
    "Tracer",
    "read_trace",
    "iter_trace",
    "global_tracer",
    "set_global_tracer",
    "tracing",
]

#: JSONL keys owned by the schema; event fields must not collide with them.
RESERVED_KEYS = frozenset({"v", "type", "ch", "t_sim", "t_wall"})


@dataclass
class TraceEvent:
    """One structured trace record."""

    etype: str  #: taxonomy event type, e.g. ``"server.issue"``
    channel: str  #: subsystem channel (the dotted prefix of ``etype``)
    t_sim: float | None  #: simulation time (seconds), None outside a DES
    t_wall: float  #: wall-clock time (``time.time()`` epoch seconds)
    fields: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Render as one JSONL line (schema version stamped)."""
        doc: dict[str, Any] = {
            "v": TRACE_SCHEMA_VERSION,
            "type": self.etype,
            "ch": self.channel,
            "t_sim": self.t_sim,
            "t_wall": self.t_wall,
        }
        doc.update(self.fields)
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        doc = json.loads(line)
        version = doc.pop("v", None)
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema version {version!r} "
                f"(this reader understands {TRACE_SCHEMA_VERSION})"
            )
        etype = doc.pop("type")
        return cls(
            etype=etype,
            channel=doc.pop("ch", channel_of(etype)),
            t_sim=doc.pop("t_sim", None),
            t_wall=doc.pop("t_wall", 0.0),
            fields=doc,
        )


class RingSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:  # symmetry with JsonlSink
        pass

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class JsonlSink:
    """Stream events to a JSONL file, one record per line."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="ascii")
        self.n_written = 0

    def append(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json() + "\n")
        self.n_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class Tracer:
    """Typed event emitter with per-type counts and a pluggable sink.

    >>> tracer = Tracer()
    >>> tracer.emit("server.issue", t_sim=12.0, wu=3, host=7)
    >>> tracer.counts["server.issue"]
    1
    """

    def __init__(
        self,
        sink: RingSink | JsonlSink | None = None,
        enabled: bool = True,
        channels: Iterable[str] | None = None,
    ) -> None:
        self.sink = sink if sink is not None else RingSink()
        self.enabled = enabled
        #: restrict recording to these channels (None = all)
        self.channels = frozenset(channels) if channels is not None else None
        #: per-event-type record counts (kept even when the ring overflows)
        self.counts: _Counter[str] = _Counter()

    @classmethod
    def to_jsonl(
        cls, path: Path | str, channels: Iterable[str] | None = None
    ) -> "Tracer":
        """A tracer streaming to a JSONL file at ``path``."""
        return cls(sink=JsonlSink(path), channels=channels)

    @classmethod
    def disabled(cls) -> "Tracer":
        """A tracer that records nothing (the ~zero-cost null object)."""
        return cls(enabled=False)

    def emit(self, etype: str, t_sim: float | None = None, **fields: Any) -> None:
        """Record one event; a no-op when the tracer is disabled."""
        if not self.enabled:
            return
        description = EVENT_TYPES.get(etype)
        if description is None:
            raise ValueError(
                f"unknown event type {etype!r}; declare it in "
                "repro.obs.events.EVENT_TYPES (and docs/observability.md)"
            )
        channel = channel_of(etype)
        if self.channels is not None and channel not in self.channels:
            return
        if not RESERVED_KEYS.isdisjoint(fields):
            clash = sorted(RESERVED_KEYS.intersection(fields))
            raise ValueError(f"event fields collide with reserved keys: {clash}")
        self.counts[etype] += 1
        self.sink.append(
            TraceEvent(
                etype=etype,
                channel=channel,
                t_sim=t_sim,
                t_wall=time.time(),
                fields=fields,
            )
        )

    @property
    def n_events(self) -> int:
        """Total events recorded (sum over all types)."""
        return sum(self.counts.values())

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_trace(path: Path | str) -> Iterator[TraceEvent]:
    """Stream a JSONL trace one :class:`TraceEvent` at a time.

    The memory-bounded counterpart of :func:`read_trace`: the whole file
    is never resident, so replay filters and span reconstruction scale to
    multi-gigabyte campaign traces.
    """
    with Path(path).open("r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield TraceEvent.from_json(line)


def read_trace(path: Path | str) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records."""
    return list(iter_trace(path))


# -- process-global tracer -------------------------------------------------
#
# The DES layers thread an explicit tracer (one per simulation); the
# docking engine's module-level functions consult this process-global slot
# instead, so `dock_couple` / `MaxDoRun` pick up tracing without signature
# churn.  Process-pool workers (`dock_couple(n_workers=...)`) do not
# inherit it; the fan-out itself is traced in the parent.

_global_tracer: Tracer | None = None


def global_tracer() -> Tracer | None:
    """The process-global tracer used by the docking engine (or None)."""
    return _global_tracer


def set_global_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the process-global tracer.

    >>> with tracing(Tracer()) as tr:
    ...     assert global_tracer() is tr
    >>> global_tracer() is None
    True
    """
    previous = set_global_tracer(tracer)
    try:
        yield tracer
    finally:
        set_global_tracer(previous)
