"""Command-line interface.

``repro-hcmd`` exposes the pipeline stages as subcommands::

    repro-hcmd estimate                  # formula (1), Section 4.1
    repro-hcmd package --hours 10        # workunit slicing, Section 4.2
    repro-hcmd simulate --scale 200      # scaled volunteer campaign, Section 5
    repro-hcmd simulate --campaign scale=500,proteins=8 \\
        --campaign kind=screening,ligands=2000  # shared multi-campaign grid
    repro-hcmd compare                   # Table 2 equivalence, Section 6
    repro-hcmd project --weeks 40        # phase-II projection, Section 7
    repro-hcmd capacity --devices 836000 # server-capacity check, Section 3.2
    repro-hcmd results convert out/ merged.rcs  # pack text results, columnar
    repro-hcmd results check merged.rcs  # Section 5.2 checks, vectorized
    repro-hcmd trace campaign.jsonl      # replay a structured event trace
    repro-hcmd trace diff a.jsonl b.jsonl  # align two runs, report divergence
    repro-hcmd report --trace campaign.jsonl  # span-level post-mortem
    repro-hcmd serve --scale 900         # live scheduler RPC service
    repro-hcmd loadgen http://127.0.0.1:8642  # drive it over the wire

Every command prints plain-text tables via :mod:`repro.analysis.report`.
``simulate --trace PATH`` records a structured JSONL event trace,
``simulate --profile`` prints per-callback wall-time aggregation,
``simulate --health`` rides a streaming SLO monitor on the campaign and
``simulate --report`` prints the span-level post-mortem right after the
run; the ``trace`` subcommand turns a recorded trace into a summary table
and a human-readable timeline (``--workunit``/``--host`` follow one
workunit or host through its lifecycle), and ``report --trace`` renders
the full campaign post-mortem from a recorded trace (``--markdown`` for
a GitHub-flavoured report).  See docs/observability.md.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from . import constants as C
from .analysis.comparison import EquivalenceTable
from .analysis.report import render_table
from .boinc.capacity import ServerCapacityModel
from .boinc.credit import AccountingMode
from .core.projection import project_phase2
from .units import format_bytes, format_duration, seconds_to_ydhms

__all__ = ["main", "build_parser"]


def _add_campaign_flag(p: argparse.ArgumentParser, repeatable: bool) -> None:
    """The shared ``--campaign SPEC`` flag (parsed by repro.multi.spec).

    One grammar across ``simulate``/``serve``/``loadgen``: a
    comma-separated ``key=value`` spec selecting the workload kind and
    campaign knobs.  ``simulate`` accepts the flag repeatedly and runs
    the campaigns on one shared grid; ``serve``/``loadgen`` speak the
    single-campaign wire protocol and accept exactly one.
    """
    extra = (
        "; repeat the flag to share the grid between campaigns"
        if repeatable
        else "; serve/loadgen accept one cross-docking campaign "
             "(the wire protocol is single-campaign)"
    )
    p.add_argument(
        "--campaign", metavar="SPEC", action="append", default=None,
        help="campaign spec: comma-separated key=value, e.g. "
             "'name=hcmd,kind=cross-docking,scale=300,proteins=10' or "
             "'kind=screening,ligands=2000,weight=2' "
             "(overrides --scale/--proteins; see docs/multicampaign.md)"
             + extra,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hcmd",
        description="HCMD phase I on a volunteer grid — reproduction toolkit",
    )
    parser.add_argument(
        "--seed", type=int, default=C.DEFAULT_SEED, help="calibration seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    est = sub.add_parser("estimate", help="formula (1) total-work estimate")
    est.add_argument(
        "--proteins", type=int, default=C.N_PROTEINS,
        help="library size (default: the phase-I 168)",
    )

    pkg = sub.add_parser("package", help="slice the workload into workunits")
    pkg.add_argument("--hours", type=float, default=10.0, help="target duration")
    pkg.add_argument(
        "--strategy", default="floor",
        choices=("floor", "round", "merge-tail", "even"),
    )

    simu = sub.add_parser("simulate", help="run a scaled volunteer campaign")
    simu.add_argument("--scale", type=float, default=200.0)
    simu.add_argument("--proteins", type=int, default=16)
    _add_campaign_flag(simu, repeatable=True)
    simu.add_argument(
        "--policy", default="fair-share",
        choices=("fair-share", "strict-priority", "weighted-lottery"),
        help="multi-campaign scheduling policy (with --campaign; "
             "see docs/multicampaign.md)",
    )
    simu.add_argument(
        "--horizon-weeks", type=float, default=40.0,
        help="grid horizon in simulated weeks (multi-campaign mode)",
    )
    simu.add_argument(
        "--hosts-peak", type=int, default=None,
        help="fix the peak host count (multi-campaign mode; "
             "default: auto-sized from the registered work)",
    )
    simu.add_argument(
        "--accounting", default="ud", choices=[m.value for m in AccountingMode]
    )
    simu.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a structured JSONL event trace of the campaign "
             "(replay it with `repro-hcmd trace PATH`)",
    )
    simu.add_argument(
        "--trace-channels", default=None,
        help="comma-separated channels to trace (e.g. 'server,agent'; "
             "default: all; the 'des' channel is the most voluminous)",
    )
    simu.add_argument(
        "--profile", action="store_true",
        help="aggregate wall time per DES callback and print the summary",
    )
    simu.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults: comma-separated key=value spec, e.g. "
             "'crash=5,corrupt=0.05,sabotage=0.02,outage=2x12,loss=0.1,"
             "maxreissue=10' (see repro.faults.FaultPlan.from_spec); "
             "prints the campaign error budget after the metrics",
    )
    simu.add_argument(
        "--health", action="store_true",
        help="ride a streaming SLO/health monitor on the campaign "
             "(P2 latency sketches + breach/clear rules) and print the "
             "final SLO report",
    )
    simu.add_argument(
        "--report", action="store_true",
        help="print the span-level campaign post-mortem after the run "
             "(workunit lifecycles reconstructed from the event stream)",
    )
    simu.add_argument(
        "--ledger", action="store_true",
        help="ride the per-host behavioral ledger on the campaign and "
             "print the fleet report (works with --shards; "
             "see docs/observability.md)",
    )
    simu.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the campaign into K independently-simulated "
             "shards and merge the results deterministically "
             "(see repro.boinc.sharding; default: 1 = monolithic)",
    )
    simu.add_argument(
        "--shard-workers", type=int, default=None, metavar="N",
        help="run shards on a pool of N worker processes "
             "(default: min(K, cpu count); the merged result is "
             "identical for every N)",
    )

    sub.add_parser("compare", help="Table 2: volunteer vs dedicated grid")

    proj = sub.add_parser("project", help="phase-II projection (Table 3)")
    proj.add_argument("--proteins", type=int, default=C.PHASE2_N_PROTEINS)
    proj.add_argument(
        "--reduction", type=float, default=C.PHASE2_POINT_REDUCTION,
        help="docking-point reduction factor",
    )
    proj.add_argument("--weeks", type=float, default=float(C.PHASE2_WEEKS))

    cap = sub.add_parser("capacity", help="server transaction-rate check")
    cap.add_argument("--devices", type=float, default=float(C.WCG_DEVICES))
    cap.add_argument("--hours", type=float, default=3.3, help="workunit target")

    rep = sub.add_parser(
        "report", help="the whole reproduction, paper vs measured, one page "
                       "— or, with --trace, a span-level campaign post-mortem"
    )
    rep.add_argument(
        "--trace", metavar="PATH", default=None,
        help="render a campaign post-mortem (phase throughput, latency "
             "percentiles, critical-path couples) from a recorded JSONL "
             "trace instead of the paper-vs-measured page",
    )
    rep.add_argument(
        "--markdown", action="store_true",
        help="render the post-mortem as GitHub-flavoured markdown "
             "(only with --trace)",
    )

    part = sub.add_parser(
        "partners", help="partner prediction from the cross-docking matrix"
    )
    part.add_argument("--proteins", type=int, default=C.N_PROTEINS)
    part.add_argument("--top", type=int, default=5, help="partners per protein")

    sites = sub.add_parser(
        "sites", help="binding-site localization and focused docking"
    )
    sites.add_argument("--proteins", type=int, default=80)
    sites.add_argument("--positions", type=int, default=300)
    sites.add_argument(
        "--keep", type=float, default=0.01,
        help="fraction of docking points kept (phase II uses 0.01)",
    )

    res = sub.add_parser(
        "results", help="columnar result store tools: convert / check / "
                        "merge / stats (see docs/resultstore.md)"
    )
    res_sub = res.add_subparsers(dest="results_command", required=True)
    conv = res_sub.add_parser(
        "convert", help="pack a directory of text result files into a "
                        "columnar store, or expand a store back to text "
                        "(the direction follows the source's type; the "
                        "round trip is byte-identical)"
    )
    conv.add_argument(
        "source", help="a directory of text result files, or a store file"
    )
    conv.add_argument(
        "dest", help="the store file to write, or the directory to expand into"
    )
    chk = res_sub.add_parser(
        "check", help="the Section 5.2 checks (file count, line counts, "
                      "value ranges) as whole-column passes over a store"
    )
    chk.add_argument("store", help="columnar store file")
    chk.add_argument(
        "--files-expected", type=int, default=None,
        help="check 1: expected segment count (default: skip check 1)",
    )
    mrg = res_sub.add_parser(
        "merge", help="merge workunit chunk segments into one segment per "
                      "couple (validates slice tiling, sorts by "
                      "isep/irot/igamma)"
    )
    mrg.add_argument("store", help="chunked store file")
    mrg.add_argument("out", help="merged store file to write")
    st = res_sub.add_parser(
        "stats", help="rows, couples and bytes in both result formats"
    )
    st.add_argument("store", help="columnar store file")

    trace = sub.add_parser(
        "trace", help="summarize a structured JSONL campaign trace, or "
                      "diff two runs: `trace diff A.jsonl B.jsonl`"
    )
    trace.add_argument(
        "path", nargs="+",
        help="JSONL trace (from `simulate --trace`), or `diff A B` to "
             "align two traces by workunit and report divergence",
    )
    trace.add_argument(
        "--limit", type=int, default=20,
        help="max timeline lines (head + tail; default 20)",
    )
    trace.add_argument(
        "--channel", default=None,
        help="restrict the timeline to one channel (des, server, agent, "
             "fault, docking, telemetry, health)",
    )
    trace.add_argument(
        "--workunit", type=int, default=None, metavar="WU",
        help="follow one workunit id through its lifecycle "
             "(issue/fetch/compute/report/validate)",
    )
    trace.add_argument(
        "--host", type=int, default=None,
        help="restrict the timeline to one host id",
    )
    trace.add_argument(
        "--campaign", metavar="NAME", default=None,
        help="restrict the timeline to one campaign's events (matches the "
             "campaign= stamps a multi-campaign grid adds)",
    )

    hosts = sub.add_parser(
        "hosts", help="fleet forensics: fold a recorded JSONL trace into "
                      "the per-host behavioral ledger and print the fleet "
                      "report (see docs/observability.md)"
    )
    hosts.add_argument(
        "path",
        help="JSONL trace (from `simulate --trace`); lifecycle channels "
             "(server, agent, fault, host) must have been recorded",
    )
    hosts.add_argument(
        "--host", type=int, default=None,
        help="one host's full record plus its event timeline",
    )
    hosts.add_argument(
        "--format", default="table", choices=("table", "md", "json"),
        help="fleet report format (default: terminal table)",
    )
    hosts.add_argument(
        "--top", type=int, default=10,
        help="rows in the per-host table (default 10)",
    )
    hosts.add_argument(
        "--limit", type=int, default=40,
        help="max timeline lines with --host (default 40)",
    )

    def campaign_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=200.0)
        p.add_argument("--proteins", type=int, default=16)
        _add_campaign_flag(p, repeatable=False)
        p.add_argument(
            "--horizon-weeks", type=float, default=40.0,
            help="campaign horizon (simulated weeks)",
        )
        p.add_argument(
            "--faults", metavar="SPEC", default=None,
            help="fault spec, as in `simulate --faults` (serve and loadgen "
                 "must agree on it for deterministic replay)",
        )

    srv = sub.add_parser(
        "serve", help="run the live scheduler service: the campaign's "
                      "GridServer behind an HTTP/JSON RPC front-end "
                      "(request-work / report-result / heartbeat; "
                      "see docs/service.md)"
    )
    campaign_flags(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8642,
        help="listening port (0 = let the OS pick one)",
    )
    srv.add_argument(
        "--max-pending", type=int, default=1024,
        help="bounded write-queue depth; a full queue refuses RPCs with "
             "503 + Retry-After instead of buffering unboundedly",
    )
    srv.add_argument(
        "--time-scale", type=float, default=1.0,
        help="live-mode clock: simulated seconds per wall second "
             "(replay clients carry explicit timestamps instead)",
    )
    srv.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for this long, then drain and exit "
             "(default: until Ctrl-C)",
    )
    srv.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record service/server events to a JSONL trace",
    )

    lg = sub.add_parser(
        "loadgen", help="drive a running scheduler service: deterministic "
                        "campaign replay or an open-loop request storm"
    )
    lg.add_argument("url", help="service URL, e.g. http://127.0.0.1:8642")
    lg.add_argument(
        "--mode", default="replay", choices=("replay", "storm"),
        help="replay: run the seeded campaign as a wire client "
             "(reconciles exactly with the in-process run); "
             "storm: open-loop throughput/overload measurement",
    )
    campaign_flags(lg)
    lg.add_argument(
        "--reconcile", action="store_true",
        help="replay mode: also run the campaign in-process and verify "
             "the wire-driven run matches (exit 1 on divergence)",
    )
    lg.add_argument(
        "--hosts", type=int, default=10_000,
        help="storm mode: distinct host ids to sweep",
    )
    lg.add_argument(
        "--connections", type=int, default=32,
        help="storm mode: concurrent keep-alive connections",
    )
    lg.add_argument(
        "--requests-per-host", type=int, default=1,
        help="storm mode: sweep the host-id range this many times",
    )
    return parser


def _library_and_costs(n_proteins: int, seed: int):
    from .maxdo.cost_model import CostModel
    from .proteins.library import ProteinLibrary

    if n_proteins == C.N_PROTEINS:
        library = ProteinLibrary.phase1(seed=seed)
    else:
        library = ProteinLibrary.synthetic(n_proteins=n_proteins, seed=seed)
    return library, CostModel.calibrated(library)


def _cmd_estimate(args: argparse.Namespace) -> int:
    from .core.estimation import estimate_total_work

    library, cost_model = _library_and_costs(args.proteins, args.seed)
    report = estimate_total_work(library, cost_model)
    print(render_table(["quantity", "value"], [
        ["proteins", report.n_proteins],
        ["total reference CPU (y:d:h:m:s)", report.total_ydhms],
        ["maximum workunits", report.max_workunits],
        ["result dataset", format_bytes(report.result_bytes)],
    ]))
    return 0


def _cmd_package(args: argparse.Namespace) -> int:
    from .core.packaging import PackagingPolicy, WorkUnitPlan

    _, cost_model = _library_and_costs(C.N_PROTEINS, args.seed)
    plan = WorkUnitPlan(
        cost_model, PackagingPolicy(target_hours=args.hours, strategy=args.strategy)
    )
    stats = plan.duration_stats()
    print(render_table(["quantity", "value"], [
        ["target duration", f"{args.hours:g} h ({args.strategy})"],
        ["workunits", plan.total_workunits()],
        ["mean duration", format_duration(stats["mean"])],
        ["max duration", format_duration(stats["max"])],
        ["total reference CPU", str(seconds_to_ydhms(plan.total_reference_cpu()))],
    ]))
    return 0


def _cmd_simulate_multi(args: argparse.Namespace) -> int:
    """``simulate --campaign SPEC [--campaign SPEC ...]``: a shared grid."""
    from .faults import FaultPlan
    from .multi import GridConfig, MultiGridSimulation
    from .multi.spec import CampaignSpecError, parse_campaign_spec
    from .obs import Tracer

    for flag, used in (
        ("--shards", args.shards > 1),
        ("--health", args.health),
        ("--profile", args.profile),
        ("--report", args.report),
        ("--ledger", args.ledger),
    ):
        if used:
            print(f"error: {flag} needs the single-campaign engine; "
                  f"drop {flag} or --campaign", file=sys.stderr)
            return 2
    faults = (
        FaultPlan.from_spec(args.faults)
        if args.faults is not None
        else FaultPlan.none()
    )
    try:
        grid = GridConfig(
            campaigns=tuple(parse_campaign_spec(s) for s in args.campaign),
            policy=args.policy,
            seed=args.seed,
            horizon_weeks=args.horizon_weeks,
            n_hosts_peak=args.hosts_peak,
            faults=faults,
            accounting=AccountingMode(args.accounting),
        )
    except (CampaignSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = (
        Tracer.to_jsonl(args.trace) if args.trace is not None else None
    )
    try:
        result = MultiGridSimulation(grid, tracer=tracer).run()
    finally:
        if tracer is not None:
            tracer.close()
    shares = result.issued_share()
    rows = []
    for name, campaign_result in result.campaigns.items():
        kind = type(grid.campaign(name).workload).__name__
        weeks = campaign_result.completion_weeks
        stats = campaign_result.server.stats
        rows.append([
            name,
            "cross-docking" if kind == "CrossDockingWorkload" else "screening",
            campaign_result.server.n_workunits,
            stats.effective,
            f"{weeks:.1f}" if weeks else "incomplete",
            f"{shares.get(name, 0.0):.1%}",
        ])
    print(render_table(
        ["campaign", "kind", "workunits", "validated", "weeks", "share"],
        rows,
    ))
    merged = result.merged_stats()
    grid_weeks = result.completion_time
    print(f"\npolicy: {grid.policy}; hosts: {result.n_hosts}; "
          f"grid completion: "
          + (f"{grid_weeks / (7 * 86400):.1f} weeks"
             if grid_weeks is not None else "incomplete")
          + f"; validated results: {merged.effective:,}")
    if args.trace is not None:
        print(f"trace: -> {args.trace} "
              f"(summarize with `repro-hcmd trace {args.trace}`)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .boinc.config import CampaignConfig
    from .boinc.simulator import scaled_phase1
    from .faults import FaultPlan
    from .obs import Profiler, Tracer

    if args.campaign:
        return _cmd_simulate_multi(args)
    sharded = args.shards > 1
    if sharded:
        if args.health:
            print("error: --health needs the monolithic DES loop; "
                  "drop --shards or --health", file=sys.stderr)
            return 2
        if args.profile:
            print("error: --profile cannot aggregate across shard "
                  "processes; drop --shards or --profile", file=sys.stderr)
            return 2
        if args.report and args.trace is None:
            print("error: a sharded --report needs an on-disk trace; "
                  "add --trace PATH", file=sys.stderr)
            return 2

    tracer = None
    ring = None
    if args.trace is not None:
        channels = (
            [c.strip() for c in args.trace_channels.split(",") if c.strip()]
            if args.trace_channels is not None
            else None
        )
        tracer = Tracer.to_jsonl(args.trace, channels=channels)
    elif args.report:
        # The post-mortem reconstructs workunit lifecycles from the event
        # stream; without --trace, buffer the lifecycle channels in memory.
        from .obs import RingSink

        ring = RingSink(capacity=4_000_000)
        tracer = Tracer(
            sink=ring, channels=("server", "agent", "fault", "health")
        )
    profiler = Profiler() if args.profile else None
    faults = (
        FaultPlan.from_spec(args.faults)
        if args.faults is not None
        else FaultPlan.none()
    )
    shards = None
    if sharded:
        from .boinc.sharding import ShardPlan

        n_workers = (
            args.shard_workers
            if args.shard_workers is not None
            else min(args.shards, os.cpu_count() or 1)
        )
        shards = ShardPlan(n_shards=args.shards, n_workers=n_workers)
    config = CampaignConfig(
        accounting=AccountingMode(args.accounting),
        faults=faults,
        shards=shards,
    )
    sim = scaled_phase1(
        scale=args.scale,
        n_proteins=args.proteins,
        seed=args.seed,
        config=config,
        tracer=tracer,
        profiler=profiler,
        health=args.health,
        ledger=args.ledger,
    )
    try:
        result = sim.run()
    finally:
        if tracer is not None and ring is None:
            tracer.close()
    from .validation.merge import dataset_volume

    volume = dataset_volume(sim.library)
    full_library = args.proteins == C.N_PROTEINS
    metrics = result.metrics()
    weeks = result.completion_weeks
    print(render_table(["quantity", "value", "paper"], [
        ["scale", f"1/{args.scale:g}", "-"],
        ["hosts", result.n_hosts, "-"],
        ["workunits", sim.plan.total_workunits(), "-"],
        ["completion (weeks)", f"{weeks:.1f}" if weeks else "incomplete", "26"],
        ["redundancy factor", f"{metrics.redundancy:.3f}", "1.37"],
        ["useful result fraction", f"{metrics.useful_result_fraction:.3f}", "0.73"],
        ["net speed-down", f"{metrics.speed_down_net:.2f}", "3.96"],
        ["points-based VFTP / truth",
         f"{result.vftp_from_credit() / result.vftp_from_useful_work():.2f}", "-"],
        ["result dataset (text)", format_bytes(volume.raw_bytes),
         "123 GB" if full_library else "-"],
        ["result dataset (columnar)", format_bytes(volume.columnar_bytes), "-"],
        ["text / columnar ratio", f"{volume.columnar_ratio:.2f}x", "-"],
    ]))
    if sharded and result.shard_walls is not None:
        walls = ", ".join(f"{w:.2f}s" for w in result.shard_walls)
        print(f"\nshards: {args.shards} x {shards.n_workers} worker(s); "
              f"per-shard wall [{walls}]")
    if faults.enabled:
        print("\nerror budget (fault injection):")
        print(render_table(["quantity", "value"], result.fault_report().rows()))
    if args.health and result.health is not None:
        print()
        print(result.health.render())
    if args.ledger and result.ledger is not None:
        print()
        print(result.ledger.render())
    if args.report:
        from .obs.postmortem import CampaignReport

        fault_rows = result.fault_report().rows() if faults.enabled else None
        if ring is not None:
            report = CampaignReport.from_events(
                ring.events, health=result.health,
                fault_rows=fault_rows, source="live run",
            )
        else:
            tracer.close()
            report = CampaignReport.from_trace(args.trace)
            report.health = result.health
            report.fault_rows = fault_rows
        report.volume = volume
        print()
        print(report.render())
    if args.trace is not None:
        print(f"\ntrace: {tracer.n_events:,} events -> {args.trace} "
              f"(summarize with `repro-hcmd trace {args.trace}`)")
    if profiler is not None:
        print("\nwall-time profile (heaviest sections first):")
        print(profiler.render())
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    try:
        return _run_results(args)
    except (OSError, ValueError) as exc:
        # missing/corrupt store files and merge/conversion rejections are
        # user errors, not tracebacks (same convention as loadgen)
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_results(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .maxdo.resultfile import BYTES_PER_LINE
    from .store import (
        check_store,
        merge_couple_store,
        read_store,
        store_to_text,
        text_to_store,
    )

    if args.results_command == "convert":
        source, dest = Path(args.source), Path(args.dest)
        if source.is_dir():
            paths = sorted(p for p in source.iterdir() if p.is_file())
            if not paths:
                print(f"error: no result files in {source}", file=sys.stderr)
                return 2
            text_bytes = sum(p.stat().st_size for p in paths)
            n = text_to_store(paths, dest)
            store_bytes = dest.stat().st_size
            print(f"packed {n} text files ({format_bytes(text_bytes)}) -> "
                  f"{dest} ({format_bytes(store_bytes)}, "
                  f"{text_bytes / store_bytes:.2f}x smaller)")
        else:
            written = store_to_text(source, dest)
            print(f"expanded {len(written)} segments from {source} -> {dest}")
        return 0

    if args.results_command == "check":
        report = check_store(args.store, files_expected=args.files_expected)
        rows = [
            ["segments found", report.files_found],
            ["segments expected",
             report.files_expected if args.files_expected is not None else "-"],
            ["bad line counts", len(report.files_with_bad_line_count)],
            ["bad values", len(report.files_with_bad_values)],
            ["verdict", "OK" if report.ok else "REJECTED"],
        ]
        print(render_table(["check", "value"], rows))
        for name in report.files_with_bad_line_count:
            print(f"  line count: {name}")
        for name, problems in report.files_with_bad_values.items():
            print(f"  values: {name}: {', '.join(problems)}")
        return 0 if report.ok else 1

    if args.results_command == "merge":
        n_rows = merge_couple_store(args.store, args.out)
        merged = read_store(args.out)
        print(f"merged {n_rows:,} rows into {len(merged)} couple "
              f"segment(s) -> {args.out}")
        return 0

    # stats
    store = read_store(args.store)
    store_bytes = Path(args.store).stat().st_size
    header_bytes = sum(
        len("\n".join(s.header.lines())) + 1 for s in store.segments
    )
    text_bytes = header_bytes + store.n_rows * BYTES_PER_LINE
    print(render_table(["quantity", "value"], [
        ["segments", len(store)],
        ["couples", len(store.by_couple())],
        ["rows", f"{store.n_rows:,}"],
        ["store bytes", format_bytes(store_bytes)],
        ["text-equivalent bytes", format_bytes(text_bytes)],
        ["text / columnar ratio", f"{text_bytes / store_bytes:.2f}x"],
    ]))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import format_timeline, iter_trace, summarize_trace
    from .obs.replay import filter_events

    if args.path[0] == "diff":
        from .obs.postmortem import diff_traces

        if len(args.path) != 3:
            print("usage: repro-hcmd trace diff A.jsonl B.jsonl",
                  file=sys.stderr)
            return 2
        diff = diff_traces(args.path[1], args.path[2])
        print(diff.render())
        return 0 if diff.identical else 1
    if len(args.path) != 1:
        print("usage: repro-hcmd trace PATH (or: trace diff A B)",
              file=sys.stderr)
        return 2
    path = args.path[0]

    def selected():
        # Stream from disk on every pass: the trace is never resident.
        return filter_events(
            iter_trace(path), workunit=args.workunit, host=args.host,
            campaign=args.campaign,
        )

    summary = summarize_trace(selected())
    span = summary.sim_span_days
    selection = [
        f"{name}={value}"
        for name, value in (
            ("workunit", args.workunit),
            ("host", args.host),
            ("campaign", args.campaign),
        )
        if value is not None
    ]
    rows = [
        ["events", summary.n_events],
        ["event types", len(summary.by_type)],
        ["channels", ", ".join(sorted(summary.by_channel)) or "-"],
        ["simulated span", f"{span:.1f} days" if span is not None else "-"],
    ]
    if selection:
        rows.insert(0, ["selection", ", ".join(selection)])
    print(render_table(["quantity", "value"], rows))
    if summary.by_type:
        print()
        print(render_table(
            ["event type", "channel", "count"],
            [list(row) for row in summary.rows()],
        ))
    lines = format_timeline(selected(), limit=args.limit, channel=args.channel)
    if lines:
        print()
        print("\n".join(lines))
    return 0


def _cmd_hosts(args: argparse.Namespace) -> int:
    """``hosts TRACE``: the per-host behavioral ledger from a trace."""
    import json

    from .obs import format_timeline, iter_trace
    from .obs.ledger import HostLedger
    from .obs.replay import filter_events

    ledger = HostLedger()
    t_end = 0.0
    try:
        for event in iter_trace(args.path):
            ledger.observe(event)
            if event.t_sim is not None:
                t_end = event.t_sim
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fleet = ledger.finalize(t_end)
    if fleet.n_hosts == 0:
        print(
            "error: no host activity in the trace — record the lifecycle "
            "channels (server, agent, fault, host), e.g. `simulate "
            "--trace PATH` without a restrictive --trace-channels",
            file=sys.stderr,
        )
        return 2

    if args.host is not None:
        try:
            doc = fleet.host(args.host)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.format == "json":
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        turnaround = doc["turnaround"]
        rows = [
            ["class", doc["class"]],
            ["issued / results / validated",
             f"{doc['issued']} / {doc['results']} / {doc['validated']}"],
            ["invalid / late / timed out",
             f"{doc['invalid']} / {doc['late']} / {doc['timed_out']}"],
            ["crashes / corrupted / sabotaged",
             f"{doc['crashes']} / {doc['corrupted']} / {doc['sabotaged']}"],
            ["sabotage caught / bad validated",
             f"{doc['sabotage_caught']} / {doc['bad_validated']}"],
            ["sessions / uptime",
             f"{doc['sessions']} / {doc['uptime_fraction']:.1%}"],
            ["trust streak (now / peak)",
             f"{doc['streak']} / {doc['peak_streak']}"
             + (" (trusted)" if doc["trusted"] else "")],
            ["demotions / spot checks",
             f"{doc['demotions']} / {doc['spot_checks']}"],
            ["cpu / credit",
             f"{format_duration(doc['cpu_s'])} / {doc['credit']:,.0f}"],
        ]
        estimates = turnaround.get("estimates")
        if estimates:
            rows.append([
                "turnaround p50 / p90 / p99",
                " / ".join(
                    format_duration(estimates[k])
                    for k in ("p50", "p90", "p99")
                ),
            ])
        print(render_table([f"host {args.host}", "value"], rows))
        lines = format_timeline(
            filter_events(iter_trace(args.path), host=args.host),
            limit=args.limit,
        )
        if lines:
            print()
            print("\n".join(lines))
        return 0

    if args.format == "json":
        print(json.dumps(fleet.as_dict(), indent=2, sort_keys=True))
    elif args.format == "md":
        print(fleet.render_markdown(top=args.top))
    else:
        print(fleet.render(top=args.top))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core.campaign import CampaignPlan
    from .core.packaging import PackagingPolicy, WorkUnitPlan
    from .fluid import FluidCampaign

    library, cost_model = _library_and_costs(C.N_PROTEINS, args.seed)
    campaign = CampaignPlan(library, cost_model)
    plan = WorkUnitPlan(cost_model, PackagingPolicy(3.65))
    result = FluidCampaign(campaign, plan.duration_stats()["mean"]).run()
    table = EquivalenceTable.from_metrics(
        result.metrics(), result.metrics(first_week=13)
    )
    rows = table.rows()
    print(render_table(["grid", "whole period", "full power phase"], [
        ["World Community Grid (VFTP)", rows[0][1], rows[1][1]],
        ["Dedicated Grid (processors)", rows[0][2], rows[1][2]],
    ]))
    print(f"\ncompletion: {result.completion_week:.1f} weeks "
          f"(paper: 26); raw speed-down "
          f"{table.whole_period.speed_down:.2f} (paper: 5.43)")
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    proj = project_phase2(
        n_proteins_new=args.proteins,
        point_reduction=args.reduction,
        phase2_weeks=args.weeks,
    )
    print(render_table(["", "phase I", "phase II"], [
        [label, round(a), round(b)] for label, a, b in proj.rows()
    ]))
    print(f"\nweeks at phase-I rate: {proj.weeks_at_phase1_rate:.0f}; "
          f"members at 25% grid share: {proj.members_needed(0.25):,.0f}")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    model = ServerCapacityModel()
    device_s = args.hours * 3600 * C.SPEED_DOWN_NET
    print(render_table(["quantity", "value"], [
        ["devices", f"{args.devices:,.0f}"],
        ["workunit target", f"{args.hours:g} reference hours"],
        ["results per day", f"{model.results_per_day(args.devices, device_s):,.0f}"],
        ["server utilization", f"{model.utilization(args.devices, device_s):.1%}"],
        ["sustainable", "yes" if model.sustainable(args.devices, device_s) else "NO"],
        ["minimum sustainable workunit",
         f"{model.min_workunit_hours(args.devices, C.SPEED_DOWN_NET):.2f} h"],
    ]))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace is not None:
        from .obs.postmortem import CampaignReport

        print(CampaignReport.from_trace(args.trace).render(
            markdown=args.markdown
        ))
        return 0

    from .analysis.summary import full_report

    print(full_report(seed=args.seed))
    return 0


def _cmd_partners(args: argparse.Namespace) -> int:
    from .proteins.library import ProteinLibrary
    from .science import CrossDockingMatrix, predict_partners, recovery_rate
    from .science.partners import ranking_auc

    library = (
        ProteinLibrary.phase1(seed=args.seed)
        if args.proteins == C.N_PROTEINS
        else ProteinLibrary.synthetic(n_proteins=args.proteins, seed=args.seed)
    )
    matrix = CrossDockingMatrix.synthetic(library)
    pred = predict_partners(matrix)
    print(render_table(["quantity", "value"], [
        ["proteins", matrix.n_proteins],
        ["planted complexes", len(matrix.complexes)],
        [f"top-1 recovery", f"{recovery_rate(pred, matrix.complexes, 1):.0%}"],
        [f"top-{args.top} recovery",
         f"{recovery_rate(pred, matrix.complexes, args.top):.0%}"],
        ["ranking AUC", f"{ranking_auc(pred, matrix.complexes):.3f}"],
    ]))
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    from .science import SiteMaps, predict_partners, recovery_rate

    maps = SiteMaps.synthetic(
        n_proteins=args.proteins, seed=args.seed, n_positions=args.positions
    )
    pruned = maps.pruned(keep_fraction=args.keep)
    full_rec = recovery_rate(predict_partners(maps.to_matrix()), maps.complexes, 1)
    pruned_rec = recovery_rate(
        predict_partners(pruned.to_matrix()), maps.complexes, 1
    )
    print(render_table(["quantity", "value"], [
        ["proteins / positions", f"{maps.n_proteins} / {maps.n_positions}"],
        ["site recovery", f"{maps.site_recovery():.0%}"],
        ["partner recovery (full grid)", f"{full_rec:.0%}"],
        [f"partner recovery ({args.keep:.0%} of points)", f"{pruned_rec:.0%}"],
        ["compute cost of focused search",
         f"{maps.docking_cost_fraction(args.keep):.1%} of the full grid"],
    ]))
    return 0


def _service_campaign(args: argparse.Namespace):
    """The shared campaign construction for `serve` and `loadgen`.

    Both sides must build the identical campaign (same seed, scale,
    protein count, horizon and fault spec) for deterministic replay; the
    wire proxy verifies this against the service's discovery endpoint.
    Returns ``(simulation, campaign_name)``; a ``--campaign SPEC``
    overrides the ``--scale``/``--proteins`` shorthand (one cross-docking
    campaign — the wire protocol is single-campaign).
    """
    from .boinc.config import CampaignConfig
    from .boinc.simulator import scaled_phase1
    from .faults import FaultPlan

    name = "hcmd"
    scale, n_proteins = args.scale, args.proteins
    target_hours, release_policy = 3.65, "least-cost"
    if args.campaign:
        from .multi.spec import parse_campaign_spec
        from .multi.workloads import CrossDockingWorkload

        from .multi.spec import CampaignSpecError

        if len(args.campaign) > 1:
            raise CampaignSpecError(
                "serve/loadgen speak the single-campaign wire protocol; "
                "pass --campaign once (run several campaigns on one grid "
                "with `simulate --campaign ... --campaign ...`)"
            )
        campaign = parse_campaign_spec(args.campaign[0])
        if not isinstance(campaign.workload, CrossDockingWorkload):
            raise CampaignSpecError(
                "serve/loadgen front a cross-docking GridServer; use "
                "kind=cross-docking (screening campaigns run under "
                "`simulate --campaign`)"
            )
        name = campaign.name
        scale = campaign.workload.scale
        n_proteins = campaign.workload.n_proteins
        target_hours = campaign.workload.target_hours
        release_policy = campaign.workload.release_policy
    faults = (
        FaultPlan.from_spec(args.faults)
        if args.faults is not None
        else FaultPlan.none()
    )
    sim = scaled_phase1(
        scale=scale,
        n_proteins=n_proteins,
        seed=args.seed,
        target_hours=target_hours,
        horizon_weeks=args.horizon_weeks,
        config=CampaignConfig(faults=faults, release_policy=release_policy),
    )
    return sim, name


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .multi.spec import CampaignSpecError
    from .obs import Tracer
    from .service import SchedulerService, ServiceConfig

    tracer = Tracer.to_jsonl(args.trace) if args.trace is not None else None
    try:
        sim_model, campaign_name = _service_campaign(args)
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = SchedulerService(
        sim_model,
        config=ServiceConfig(
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            time_scale=args.time_scale,
        ),
        tracer=tracer,
        campaign=campaign_name,
    )

    async def _run() -> None:
        host, port = await service.start()
        print(
            f"serving campaign {campaign_name!r}: "
            f"{service.server.n_workunits} workunits at "
            f"http://{host}:{port} (drive it with `repro-hcmd loadgen "
            f"http://{host}:{port}`; Ctrl-C drains and exits)",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        if args.duration is not None:
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.duration)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
        print("draining...", flush=True)
        await service.shutdown()

    asyncio.run(_run())
    stats = service.server.stats
    print(render_table(["quantity", "value"], [
        ["requests answered", service.requests_total],
        ["results validated", stats.effective],
        ["refused (outage)", service.refused["outage"]],
        ["refused (overload)", service.refused["overload"]],
        ["refused (draining)", service.refused["draining"]],
        ["peak queue depth", service.max_queue_depth],
    ]))
    if tracer is not None:
        tracer.close()
        print(f"trace: {tracer.n_events:,} events -> {args.trace}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .multi.spec import CampaignSpecError
    from .service import replay_campaign, storm

    if args.mode == "storm":
        try:
            report = storm(
                args.url,
                n_hosts=args.hosts,
                connections=args.connections,
                requests_per_host=args.requests_per_host,
            )
        except OSError as exc:
            print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
            return 1
        latency = report.latency_quantiles()
        rows = [
            ["hosts x sweeps", f"{report.n_hosts} x {args.requests_per_host}"],
            ["connections", report.connections],
            ["requests sent", report.sent],
            ["requests answered", report.answered],
            ["dropped (no response)", report.dropped],
            ["refused (503)", report.refused_total],
            ["assignments / reports", f"{report.assignments} / {report.reports}"],
            ["sustained requests/s", f"{report.requests_per_s:,.0f}"],
            ["latency p50 / p99 (ms)",
             f"{latency.get('p50', 0) * 1e3:.2f} / {latency.get('p99', 0) * 1e3:.2f}"],
        ]
        # The service's own per-op P2 sketches (service.rpc_wall_s.<op>).
        for name in sorted(report.service_rpc_wall_s):
            sketch = report.service_rpc_wall_s[name]
            estimates = sketch.get("estimates")
            if not estimates:
                continue
            op = name.rsplit(".", 1)[-1]
            rows.append([
                f"service {op} p50 / p99 (ms)",
                f"{estimates.get('p50', 0) * 1e3:.2f} / "
                f"{estimates.get('p99', 0) * 1e3:.2f}",
            ])
        print(render_table(["quantity", "value"], rows))
        return 0 if report.dropped == 0 else 1

    try:
        result = replay_campaign(_service_campaign(args)[0], args.url)
    except CampaignSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:  # campaign identity mismatch from the proxy
        print(f"error: {exc}", file=sys.stderr)
        return 1
    metrics = result.metrics()
    weeks = result.completion_weeks
    print(render_table(["quantity", "value"], [
        ["hosts", result.n_hosts],
        ["workunits", result.server.n_workunits],
        ["completion (weeks)", f"{weeks:.1f}" if weeks else "incomplete"],
        ["results validated", result.server.stats.effective],
        ["redundancy factor", f"{metrics.redundancy:.3f}"],
        ["useful result fraction", f"{metrics.useful_result_fraction:.3f}"],
    ]))
    if args.reconcile:
        reference = _service_campaign(args)[0].run()
        match = (
            result.server.stats == reference.server.stats
            and result.completion_time == reference.completion_time
        )
        print(f"\nreconcile vs in-process run: "
              f"{'MATCH' if match else 'DIVERGED'}")
        if not match:
            print(f"  wire:       {result.server.stats}")
            print(f"  in-process: {reference.server.stats}")
            return 1
    return 0


_COMMANDS = {
    "estimate": _cmd_estimate,
    "package": _cmd_package,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "project": _cmd_project,
    "capacity": _cmd_capacity,
    "report": _cmd_report,
    "partners": _cmd_partners,
    "sites": _cmd_sites,
    "results": _cmd_results,
    "trace": _cmd_trace,
    "hosts": _cmd_hosts,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
