"""One-shot reproduction report.

``full_report()`` regenerates the paper's headline numbers — Table 1,
Figure 2/4 counts, the §4.1 totals, Table 2 (via the fluid campaign),
Figure 6b accounting and Table 3 — and renders them as a single
paper-vs-measured document.  It is what ``repro-hcmd report`` prints and a
convenient smoke test that the whole calibrated pipeline is wired.
"""

from __future__ import annotations

from .. import constants as C
from ..core.campaign import CampaignPlan
from ..core.estimation import estimate_total_work
from ..core.packaging import PackagingPolicy, WorkUnitPlan
from ..core.projection import project_phase2
from ..fluid import FluidCampaign
from ..maxdo.cost_model import CostModel
from ..proteins.library import ProteinLibrary
from ..validation.merge import dataset_volume
from .report import paper_vs_measured

__all__ = ["full_report"]


def full_report(seed: int = C.DEFAULT_SEED) -> str:
    """Render the whole reproduction as one paper-vs-measured document."""
    library = ProteinLibrary.phase1(seed=seed)
    cost_model = CostModel.calibrated(library)
    campaign = CampaignPlan(library, cost_model)
    estimate = estimate_total_work(library, cost_model)
    stats = cost_model.statistics()
    volume = dataset_volume(library)

    plan_h10 = WorkUnitPlan(cost_model, PackagingPolicy(10.0))
    plan_h4 = WorkUnitPlan(cost_model, PackagingPolicy(4.0))
    deployed = WorkUnitPlan(cost_model, PackagingPolicy(3.65))

    fluid = FluidCampaign(campaign, deployed.duration_stats()["mean"])
    result = fluid.run()
    whole = result.metrics()
    full_power = result.metrics(first_week=13)
    proj = project_phase2()
    snap = fluid.snapshot_at_week(result, 19.1)

    sections = [
        ("Section 4.1 / Table 1 — the computing-time model", [
            ("matrix mean (s)", C.MCT_MEAN_S, stats["average"]),
            ("matrix median (s)", C.MCT_MEDIAN_S, stats["median"]),
            ("matrix max (s)", C.MCT_MAX_S, stats["max"]),
            ("total reference CPU", "1,488:237:19:45:54", estimate.total_ydhms),
            ("maximum workunits", C.TOTAL_MAX_WORKUNITS, estimate.max_workunits),
            ("result dataset (GB)", 123, volume.raw_bytes / 1e9),
            ("columnar store (GB)", "-", volume.columnar_bytes / 1e9),
            ("text / columnar ratio", "-", volume.columnar_ratio),
        ]),
        ("Section 4.2 / Figure 4 — packaging", [
            ("workunits at h=10", C.N_WORKUNITS_H10, plan_h10.total_workunits()),
            ("workunits at h=4", C.N_WORKUNITS_H4, plan_h4.total_workunits()),
            ("deployed mean workunit (s)", C.DEPLOYED_WU_MEAN_S,
             deployed.duration_stats()["mean"]),
        ]),
        ("Section 5 / Figures 6-7 — execution on the volunteer grid", [
            ("completion (weeks)", 26, result.completion_week),
            ("results disclosed", C.RESULTS_DISCLOSED,
             float(result.results_disclosed.sum())),
            ("effective results", C.RESULTS_EFFECTIVE,
             float(result.results_useful.sum())),
            ("redundancy factor", C.REDUNDANCY_FACTOR, result.overall_redundancy),
            ("proteins docked on 2007-05-02", 0.85,
             snap.protein_fraction_complete),
            ("work done on 2007-05-02", 0.47, snap.work_fraction),
        ]),
        ("Section 6 / Table 2 — grid equivalence", [
            ("VFTP whole period", C.HCMD_VFTP_WHOLE_PERIOD, whole.vftp),
            ("dedicated equivalent", C.DEDICATED_EQUIV_WHOLE_PERIOD,
             whole.dedicated_equivalent),
            ("VFTP full power", C.HCMD_VFTP_FULL_POWER, full_power.vftp),
            ("raw speed-down", C.SPEED_DOWN_RAW, whole.speed_down_raw),
            ("net speed-down", C.SPEED_DOWN_NET, whole.speed_down_net),
        ]),
        ("Section 7 / Table 3 — phase II", [
            ("phase II CPU (s)", C.PHASE2_CPU_S, proj.phase2_cpu_s),
            ("phase II VFTP @40 weeks", C.PHASE2_VFTP, proj.phase2_vftp),
            ("phase II members", C.PHASE2_MEMBERS, proj.phase2_members),
            ("weeks at phase-I rate", C.PHASE2_WEEKS_AT_PHASE1_RATE,
             proj.weeks_at_phase1_rate),
        ]),
    ]
    parts = [
        "HCMD phase I reproduction — paper vs measured",
        "=" * 46,
    ]
    for title, rows in sections:
        parts.append("")
        parts.append(title)
        parts.append("-" * len(title))
        parts.append(paper_vs_measured(rows))
    return "\n".join(parts)
