"""Analysis and reporting: turning telemetry into the paper's tables/figures.

* :mod:`repro.analysis.timeseries` — CPU-time series to VFTP, weekly
  aggregation, phase segmentation (Figures 1 and 6a);
* :mod:`repro.analysis.distributions` — histogram builders for Figures 2,
  4 and 8;
* :mod:`repro.analysis.progression` — Figure 7 progression rendering and
  anchors;
* :mod:`repro.analysis.comparison` — the Table 2 equivalence;
* :mod:`repro.analysis.report` — plain-text table/histogram rendering and
  paper-vs-measured reports.
"""

from .comparison import EquivalenceTable
from .distributions import histogram, hour_bins
from .progression import progression_anchor, progression_curve
from .report import paper_vs_measured, render_histogram, render_table
from .timeseries import WeeklySeries, cpu_days_to_vftp, segment_phases

__all__ = [
    "EquivalenceTable",
    "histogram",
    "hour_bins",
    "progression_anchor",
    "progression_curve",
    "paper_vs_measured",
    "render_histogram",
    "render_table",
    "WeeklySeries",
    "cpu_days_to_vftp",
    "segment_phases",
]
