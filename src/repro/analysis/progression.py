"""Figure 7: per-protein progression rendering.

"The proteins are on the X axis, and the Y axis represents the cumulative
percentage of computation.  The green part is the percentage that has been
computed, the red part the not yet computed part.  This graphic effectively
shows that the time needed for each protein is different."  The key anchor:
on 2007-05-02, 85% of the proteins were docked but only 47% of the total
computation was done.
"""

from __future__ import annotations

import numpy as np

from ..core.campaign import CampaignPlan, ProgressionSnapshot

__all__ = ["progression_curve", "progression_anchor"]


def progression_curve(
    campaign: CampaignPlan, snapshot: ProgressionSnapshot
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Figure 7 data: per-protein cumulative percentages.

    Returns ``(x, computed_pct, total_pct)`` where ``x`` is the protein
    rank in release order (1-based), ``total_pct`` the cumulative share of
    the total computation up to that protein and ``computed_pct`` the
    completed part of it.  The gap between the two curves is the "red"
    (remaining) area of the paper's figure.
    """
    if len(snapshot.fractions) != len(campaign.library):
        raise ValueError("snapshot does not match the campaign size")
    total_pct, computed_pct = campaign.cumulative_percent_curve(
        snapshot.work_fraction * campaign.total_work
    )
    x = np.arange(1, len(campaign.library) + 1, dtype=np.float64)
    return x, computed_pct, total_pct


def progression_anchor(
    campaign: CampaignPlan, work_fraction: float
) -> tuple[float, float]:
    """Anchor extraction: ``(protein_fraction_complete, work_fraction)``.

    Given a useful-work fraction, how many proteins are fully docked?  For
    the paper's 2007-05-02 snapshot this is (0.85, 0.47).
    """
    if not 0.0 <= work_fraction <= 1.0:
        raise ValueError("work_fraction must be in [0, 1]")
    snapshot = campaign.snapshot(work_fraction * campaign.total_work)
    return snapshot.protein_fraction_complete, snapshot.work_fraction
