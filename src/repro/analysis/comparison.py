"""Table 2: equivalence between the volunteer and the dedicated grid.

"Table 2 represents the equivalence between the average number of virtual
full-time processors which were consumed during the HCMD project and the
number of processors which would be necessary on a dedicated grid such as
Grid'5000" — for the whole period and for the full-power phase, with the
caveat that the dedicated grid is supposed optimally used.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.metrics import CampaignMetrics

__all__ = ["EquivalenceRow", "EquivalenceTable"]


@dataclass(frozen=True)
class EquivalenceRow:
    """One period's equivalence entry."""

    period: str
    vftp: float
    dedicated_processors: float

    @property
    def speed_down(self) -> float:
        """VFTP per dedicated processor — the raw speed-down (5.43)."""
        return self.vftp / self.dedicated_processors


@dataclass(frozen=True)
class EquivalenceTable:
    """Table 2: whole period and full-power phase."""

    whole_period: EquivalenceRow
    full_power: EquivalenceRow

    @classmethod
    def from_metrics(
        cls, whole: CampaignMetrics, full_power: CampaignMetrics
    ) -> "EquivalenceTable":
        return cls(
            whole_period=EquivalenceRow(
                period="whole period",
                vftp=whole.vftp,
                dedicated_processors=whole.dedicated_equivalent,
            ),
            full_power=EquivalenceRow(
                period="full power working phase",
                vftp=full_power.vftp,
                dedicated_processors=full_power.dedicated_equivalent,
            ),
        )

    def rows(self) -> list[tuple[str, int, int]]:
        """Rendered rows: (period, WCG VFTP, dedicated processors)."""
        return [
            (row.period, round(row.vftp), round(row.dedicated_processors))
            for row in (self.whole_period, self.full_power)
        ]

    @staticmethod
    def current_week_equivalent(week_vftp: float, speed_down_net: float) -> float:
        """Section 6's closing estimate: dedicated processors equivalent to
        a week in which WCG delivered ``week_vftp``.

        Uses the *net* speed-down because an all-of-WCG week has no
        HCMD-specific redundancy attached (74,825 / 3.96 -> ~18,895).
        """
        if speed_down_net <= 0:
            raise ValueError("speed-down must be positive")
        return week_vftp / speed_down_net
