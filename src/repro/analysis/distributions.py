"""Histogram builders for the paper's distribution figures.

* Figure 2 — distribution of ``Nsep`` over the 168 proteins;
* Figure 4 — workunit-duration distributions for two packagings;
* Figure 8 — distribution of the real (deployed) workunit times.
"""

from __future__ import annotations

import numpy as np

from ..units import SECONDS_PER_HOUR

__all__ = ["histogram", "hour_bins", "nsep_bins", "distribution_summary"]


def hour_bins(max_hours: float, step_hours: float = 1.0) -> np.ndarray:
    """Bin edges in seconds covering ``[0, max_hours]`` hours."""
    if max_hours <= 0 or step_hours <= 0:
        raise ValueError("max_hours and step_hours must be positive")
    n = int(np.ceil(max_hours / step_hours))
    return np.arange(n + 1, dtype=np.float64) * step_hours * SECONDS_PER_HOUR


def nsep_bins(max_nsep: int = 9000, step: int = 500) -> np.ndarray:
    """The Figure 2 binning of starting-position counts."""
    if max_nsep <= 0 or step <= 0:
        raise ValueError("max_nsep and step must be positive")
    return np.arange(0, max_nsep + step, step, dtype=np.float64)


def histogram(
    values: np.ndarray,
    bin_edges: np.ndarray,
    weights: np.ndarray | None = None,
    clip: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """``numpy.histogram`` with optional clipping into the terminal bins.

    With ``clip=True`` (default), out-of-range values land in the first or
    last bin instead of silently disappearing, so the counts always sum to
    the sample size — a histogram that drops samples misreports the
    distributions the paper plots.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(bin_edges, dtype=np.float64)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    if clip:
        values = np.clip(values, edges[0], np.nextafter(edges[-1], edges[0]))
    counts, _ = np.histogram(values, bins=edges, weights=weights)
    return edges, counts


def distribution_summary(values: np.ndarray, weights: np.ndarray | None = None) -> dict[str, float]:
    """Weighted mean/std/min/max/median summary of a sample."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty sample")
    if weights is None:
        return {
            "mean": float(values.mean()),
            "std": float(values.std(ddof=0)),
            "min": float(values.min()),
            "max": float(values.max()),
            "median": float(np.median(values)),
        }
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != values.shape:
        raise ValueError("weights must match values")
    total = weights.sum()
    mean = float((values * weights).sum() / total)
    var = float((weights * (values - mean) ** 2).sum() / total)
    order = np.argsort(values)
    cumw = np.cumsum(weights[order])
    median = float(values[order][np.searchsorted(cumw, 0.5 * total)])
    return {
        "mean": mean,
        "std": float(np.sqrt(var)),
        "min": float(values.min()),
        "max": float(values.max()),
        "median": median,
    }
