"""Plain-text rendering of tables, histograms and paper-vs-measured reports.

Every benchmark prints its artifact through these helpers so the harness
output reads like the paper's tables/figures with a "measured" column next
to the published values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "render_table",
    "render_markdown_table",
    "render_histogram",
    "paper_vs_measured",
    "format_number",
]


def format_number(value: float | int | str) -> str:
    """Humane formatting: thousands separators, trimmed floats."""
    if isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    if value != value:  # NaN
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    return f"{value:.4g}"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[float | int | str]]
) -> str:
    """Fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[format_number(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[float | int | str]]
) -> str:
    """GitHub-flavoured markdown table (same cell formatting as
    :func:`render_table`, so terminal and markdown reports agree).

    >>> print(render_markdown_table(["a", "b"], [[1, 2.5]]))
    | a | b |
    | --- | --- |
    | 1 | 2.5 |
    """
    cells = [[format_number(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_histogram(
    bin_edges: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    label=lambda lo, hi: f"[{lo:g}, {hi:g})",
) -> str:
    """ASCII bar chart of a histogram (one row per bin)."""
    edges = np.asarray(bin_edges, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.float64)
    if len(edges) != len(counts) + 1:
        raise ValueError("need len(edges) == len(counts) + 1")
    peak = counts.max() if counts.size else 0.0
    lines = []
    for k, count in enumerate(counts):
        bar = "#" * (int(round(count / peak * width)) if peak > 0 else 0)
        lines.append(f"{label(edges[k], edges[k + 1]):>18} {format_number(count):>12} {bar}")
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[tuple[str, float | int | str, float | int | str]]
) -> str:
    """Three-column report: quantity, paper value, measured value."""
    table_rows = []
    for name, paper, measured in rows:
        row = [name, format_number(paper), format_number(measured)]
        if (
            isinstance(paper, (int, float, np.integer, np.floating))
            and isinstance(measured, (int, float, np.integer, np.floating))
            and float(paper) != 0
        ):
            ratio = float(measured) / float(paper)
            row.append(f"{ratio - 1:+.1%}")
        else:
            row.append("")
        table_rows.append(row)
    return render_table(["quantity", "paper", "measured", "delta"], table_rows)
