"""Artifact exporters.

The benchmark harness renders text tables; downstream users usually want
the underlying numbers.  These helpers serialize the figure/table data as
CSV (one file per artifact) and JSON (self-describing, with the paper
reference attached), with deterministic formatting so exports diff cleanly
across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["export_series_csv", "export_histogram_csv", "export_json"]


def _tolist(value: Any) -> Any:
    """JSON-safe conversion of numpy scalars/arrays."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, Mapping):
        return {k: _tolist(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_tolist(v) for v in value]
    return value


def export_series_csv(
    path: Path | str,
    columns: Mapping[str, Sequence[float]],
) -> Path:
    """Write parallel columns (e.g. week, vftp, results) as CSV.

    All columns must have equal length; the header is the column names in
    the given order.
    """
    path = Path(path)
    names = list(columns.keys())
    if not names:
        raise ValueError("need at least one column")
    arrays = [np.asarray(columns[n]).ravel() for n in names]
    length = len(arrays[0])
    if any(len(a) != length for a in arrays):
        raise ValueError("all columns must have the same length")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="ascii") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in zip(*arrays):
            writer.writerow([_format(v) for v in row])
    return path


def export_histogram_csv(
    path: Path | str, bin_edges: np.ndarray, counts: np.ndarray
) -> Path:
    """Write a histogram as (bin_low, bin_high, count) rows."""
    edges = np.asarray(bin_edges, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.float64)
    if len(edges) != len(counts) + 1:
        raise ValueError("need len(edges) == len(counts) + 1")
    return export_series_csv(
        path,
        {"bin_low": edges[:-1], "bin_high": edges[1:], "count": counts},
    )


def export_json(
    path: Path | str,
    payload: Mapping[str, Any],
    experiment: str | None = None,
) -> Path:
    """Write a self-describing JSON artifact.

    ``experiment`` (e.g. ``"Figure 6a"``) is embedded under ``_meta``
    together with the paper reference, so exported files are traceable in
    isolation.
    """
    path = Path(path)
    document = {
        "_meta": {
            "paper": (
                "Bertis, Bolze, Desprez, Reed. Large Scale Execution of a "
                "Bioinformatic Application on a Volunteer Grid. "
                "LIP RR-2007-49 / IPPS 2008."
            ),
            "experiment": experiment,
        },
        **{k: _tolist(v) for k, v in payload.items()},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n", encoding="ascii"
    )
    return path


def _format(value: float) -> str:
    """Deterministic CSV cell formatting (no float repr jitter)."""
    if float(value).is_integer():
        return str(int(value))
    return f"{float(value):.10g}"
