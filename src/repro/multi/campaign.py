"""First-class campaign and grid specifications.

The paper's HCMD run never had World Community Grid to itself: the grid
hosted several projects at once and divided volunteer capacity between
them, moving HCMD through a control period, a prioritization ramp and a
full-power phase (Section 5.1).  :class:`Campaign` and
:class:`GridConfig` make that multi-project reality first-class:

* a :class:`Campaign` is one project — a name, a workload
  (:mod:`repro.multi.workloads`), scheduling inputs (weight, priority,
  quota) and a lifecycle (submit/drain weeks);
* a :class:`GridConfig` is the shared substrate — the host population,
  the horizon, the scheduling policy — plus the campaign roster.

Both are frozen value objects; :class:`repro.multi.MultiGridSimulation`
turns a :class:`GridConfig` into a running grid.  The single-campaign
classes (:class:`repro.CampaignConfig`, :func:`repro.scaled_phase1`)
are thin adapters over this layer — a grid with exactly one registered
cross-docking campaign is the monolithic engine, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from .. import constants
from ..boinc.server import ServerConfig
from ..faults import FaultPlan
from .workloads import CrossDockingWorkload, ScreeningWorkload, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..boinc.credit import AccountingMode
    from ..grid.host import HostPopulationModel
    from ..grid.population import ShareSchedule, WCGPopulationModel

__all__ = ["Campaign", "GridConfig", "POLICIES"]

#: the pluggable scheduling policies (see :mod:`repro.multi.policies`)
POLICIES = ("fair-share", "strict-priority", "weighted-lottery")


@dataclass(frozen=True)
class Campaign:
    """One project on the grid: workload + scheduling + lifecycle.

    ``weight`` is the fair-share / lottery share; ``weight_schedule``
    optionally replaces it with a step function of the project week
    (``((0, 0.07), (9, 0.45))`` = 7% until week 9, then 45%) — exactly
    how WCG moved HCMD through its three phases.  ``priority`` only
    matters under the strict-priority policy (higher wins).
    ``quota_fraction`` caps the campaign's share of all issued reference
    work; over-quota campaigns are only served when nobody under quota
    has issuable work.  ``submit_week``/``drain_week`` bound the
    campaign's lifetime on the grid: it is admitted at ``submit_week``
    and stops receiving new issues at ``drain_week`` (outstanding
    results are still accepted and validated).
    """

    name: str
    workload: Workload
    weight: float = 1.0
    priority: int = 0
    quota_fraction: float | None = None
    submit_week: float = 0.0
    drain_week: float | None = None
    #: ``((week, weight), ...)`` steps, overriding ``weight`` when set
    weight_schedule: tuple[tuple[float, float], ...] | None = None
    #: per-campaign server policy (None = the calibrated phase-I default)
    server: ServerConfig | None = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or "," in self.name:
            raise ValueError(
                f"campaign name must be non-empty without '/' or ',': "
                f"{self.name!r}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.quota_fraction is not None and not 0 < self.quota_fraction <= 1:
            raise ValueError("quota_fraction must be in (0, 1]")
        if self.submit_week < 0:
            raise ValueError("submit_week must be non-negative")
        if self.drain_week is not None and self.drain_week <= self.submit_week:
            raise ValueError("drain_week must come after submit_week")
        if self.weight_schedule is not None:
            weeks_ = [w for w, _ in self.weight_schedule]
            if not self.weight_schedule or weeks_ != sorted(weeks_):
                raise ValueError(
                    "weight_schedule must be non-empty (week, weight) "
                    "steps in increasing week order"
                )
            if any(wt <= 0 for _, wt in self.weight_schedule):
                raise ValueError("scheduled weights must be positive")

    # -- constructors ------------------------------------------------------

    @classmethod
    def cross_docking(
        cls,
        name: str = "hcmd",
        *,
        scale: float = 200.0,
        n_proteins: int = 24,
        target_hours: float = 3.65,
        release_policy: str = "least-cost",
        **kwargs: Any,
    ) -> "Campaign":
        """An HCMD-style all-pairs cross-docking campaign."""
        return cls(
            name=name,
            workload=CrossDockingWorkload(
                scale=scale,
                n_proteins=n_proteins,
                target_hours=target_hours,
                release_policy=release_policy,
            ),
            **kwargs,
        )

    @classmethod
    def screening(
        cls,
        name: str = "screening",
        *,
        n_ligands: int = 2_000,
        mean_hours: float = 1.5,
        sigma: float = 0.6,
        batch_size: int = 100,
        **kwargs: Any,
    ) -> "Campaign":
        """A WISDOM-style ligand-database virtual-screening campaign."""
        return cls(
            name=name,
            workload=ScreeningWorkload(
                n_ligands=n_ligands,
                mean_hours=mean_hours,
                sigma=sigma,
                batch_size=batch_size,
            ),
            **kwargs,
        )

    # -- scheduling inputs -------------------------------------------------

    def weight_at(self, week: float) -> float:
        """The campaign's scheduling weight at project ``week``."""
        if self.weight_schedule is None:
            return self.weight
        current = self.weight_schedule[0][1]
        for step_week, step_weight in self.weight_schedule:
            if week >= step_week:
                current = step_weight
            else:
                break
        return current

    def with_(self, **overrides: Any) -> "Campaign":
        """A copy with fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class GridConfig:
    """The shared grid substrate plus its campaign roster.

    Grid-level fields mirror the single-campaign
    :class:`repro.CampaignConfig` knobs that belong to the *grid* rather
    than to any one project: the volunteer fleet, the horizon, the seed
    every substream derives from, and the scheduling policy dividing
    capacity between the registered campaigns.
    """

    campaigns: tuple[Campaign, ...]
    #: capacity-division policy (one of :data:`POLICIES`)
    policy: str = "fair-share"
    seed: int = constants.DEFAULT_SEED
    horizon_weeks: float = 40.0
    #: peak host count (None = auto-sized from the total registered work)
    n_hosts_peak: int | None = None
    #: grid share-of-WCG schedule (None = hcmd_share_schedule()); a fixed
    #: host population wants a constant schedule — see
    #: :func:`repro.multi.scenario.constant_share`
    share_schedule: "ShareSchedule | None" = None
    #: WCG fleet growth trend (None = WCGPopulationModel.calibrated())
    population: "WCGPopulationModel | None" = None
    #: volunteer host population model (None = calibrated default)
    host_model: "HostPopulationModel | None" = None
    #: credit accounting mode (None = phase I's UD wall-clock accounting)
    accounting: "AccountingMode | None" = None
    #: grid-level fault injection (host crashes, corruption, sabotage,
    #: server outages — shared infrastructure, so outage windows derived
    #: from the plan hit every campaign's server)
    faults: FaultPlan = field(default_factory=FaultPlan.none)

    def __post_init__(self) -> None:
        if not self.campaigns:
            raise ValueError("a grid needs at least one campaign")
        names = [c.name for c in self.campaigns]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {names}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; pick one of {POLICIES}"
            )
        if self.horizon_weeks <= 0:
            raise ValueError("horizon_weeks must be positive")
        for c in self.campaigns:
            if c.submit_week >= self.horizon_weeks:
                raise ValueError(
                    f"campaign {c.name!r} is submitted at week "
                    f"{c.submit_week}, past the {self.horizon_weeks}-week "
                    "horizon"
                )

    def campaign(self, name: str) -> Campaign:
        """The registered campaign called ``name``."""
        for c in self.campaigns:
            if c.name == name:
                return c
        raise KeyError(f"no campaign named {name!r}")

    def with_(self, **overrides: Any) -> "GridConfig":
        """A copy with fields replaced."""
        return replace(self, **overrides)
