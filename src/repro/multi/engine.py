"""The multi-campaign grid engine.

One DES substrate, one volunteer fleet, N campaigns.  Each campaign
keeps its own :class:`~repro.boinc.server.GridServer` (workunit
database, deadlines, validation, reissue — untouched), and a
:class:`CampaignRouter` stands between the fleet and the servers: it
exposes the exact agent-facing surface of a single ``GridServer``
(``all_done`` / ``request_work`` / ``on_result`` / ``config``), decides
*which campaign serves each work request* under the configured
scheduling policy, and routes results and telemetry back to the owning
campaign.  The volunteer agent code does not know the router exists.

Identity contract
-----------------

A grid with exactly one registered cross-docking campaign — no pending
admission, no drain — **is** the monolithic engine:
:meth:`MultiGridSimulation.run` delegates wholesale to
:class:`~repro.boinc.simulator.VolunteerGridSimulation`, so traces,
metrics and golden digests are bit-identical by construction.  The
router path itself adds no randomness (all substreams are the
monolithic ones; policies only reorder deterministic candidate lists),
so even ``force_router=True`` with one campaign reproduces the
monolithic statistics exactly — the test suite pins both properties.

Workunit id namespaces
----------------------

Campaign ``k`` numbers its workunits from ``k * WU_ID_STRIDE``
(mirroring the host-id striding of :mod:`repro.boinc.sharding`), so ids
stay globally unique across campaigns, result routing is a constant-time
integer division, and merged traces never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from .. import constants
from ..boinc.agent import VolunteerAgent
from ..boinc.credit import AccountingMode
from ..boinc.server import GridServer, Instance, ServerConfig
from ..boinc.simulator import CampaignResult, Telemetry, VolunteerGridSimulation
from ..boinc.sharding import merge_stats, merge_telemetry
from ..boinc.validator import ValidationPolicy, ValidationStats
from ..core.packaging import PackagingPolicy
from ..faults import ResultQuality, ServerUnavailable
from ..grid.des import Simulator
from ..grid.host import HostPopulationModel
from ..grid.population import WCGPopulationModel, hcmd_share_schedule
from ..obs import Profiler, Tracer
from ..rng import substream
from ..units import SECONDS_PER_WEEK, weeks
from .campaign import Campaign, GridConfig
from .policies import SchedulingPolicy, make_policy
from .workloads import CrossDockingWorkload, WorkloadBuild

__all__ = [
    "WU_ID_STRIDE",
    "CampaignRuntime",
    "CampaignRouter",
    "MultiGridSimulation",
    "GridResult",
]

#: workunit-id stride between campaigns: campaign ``k`` numbers its
#: workunits from ``k * WU_ID_STRIDE`` (far above any realistic campaign
#: size), so the owning campaign of a result is ``wu_id // WU_ID_STRIDE``.
WU_ID_STRIDE = 2**40


class _CampaignTracer:
    """Tracer proxy stamping ``campaign=<name>`` into every event.

    Handed to each campaign's server and telemetry in place of the grid
    tracer, so the server-channel lifecycle (``server.issue`` /
    ``result`` / ``validate`` / ``batch_complete`` ...) is attributable
    per campaign in a merged trace.  Agent-channel events stay
    host-level (one agent serves many campaigns over its life); the
    workunit-id namespace maps them back to campaigns.
    """

    __slots__ = ("_tracer", "_campaign")

    def __init__(self, tracer: Tracer, campaign: str) -> None:
        self._tracer = tracer
        self._campaign = campaign

    def emit(self, etype: str, t_sim: float | None = None, **fields) -> None:
        self._tracer.emit(etype, t_sim=t_sim, campaign=self._campaign, **fields)


class _AgentTelemetry:
    """One host's telemetry view, routed to the campaign it serves.

    Agents are strictly sequential — one instance at a time, reported
    before the next fetch — so a single mutable ``current`` pointer, set
    by the router at issue and report time, attributes every agent-side
    sample (run times, results, credit, faults) to the right campaign.
    Before the first fetch it points at the grid-level telemetry.
    """

    __slots__ = ("current",)

    def __init__(self, default: Telemetry) -> None:
        self.current = default

    def record_result(self, t: float, accounted_cpu_s: float) -> None:
        self.current.record_result(t, accounted_cpu_s)

    def record_credit(self, points: float) -> None:
        self.current.record_credit(points)

    def record_fault(self, kind: str) -> None:
        self.current.record_fault(kind)

    def record_workunit_run(
        self, t: float, active_s: float, reference_s: float
    ) -> None:
        self.current.record_workunit_run(t, active_s, reference_s)


@dataclass(frozen=True)
class _RouterConfig:
    """The slice of ``ServerConfig`` agents read through the router."""

    deadline_s: float


class CampaignRuntime:
    """One campaign's live state on the grid."""

    def __init__(
        self,
        index: int,
        campaign: Campaign,
        build: WorkloadBuild,
        server: GridServer,
        telemetry: Telemetry,
    ) -> None:
        self.index = index
        self.campaign = campaign
        self.build = build
        self.server = server
        self.telemetry = telemetry
        self.name = campaign.name
        #: admitted to scheduling (False until ``submit_week``)
        self.admitted = campaign.submit_week == 0.0
        #: drained: no new issues, outstanding results still accepted
        self.drained = False
        #: cumulative reference seconds issued — the fair-share measure
        self.issued_reference_s = 0.0
        self._complete_emitted = False

    @property
    def is_candidate(self) -> bool:
        """Eligible to serve the next work request."""
        return self.admitted and not self.drained and not self.server.all_done

    @property
    def settled(self) -> bool:
        """Nothing left to schedule here (done, or drained for good)."""
        return self.drained or self.server.all_done


class CampaignRouter:
    """The agent-facing façade over N campaign servers.

    Duck-types the ``GridServer`` surface volunteer agents consume; every
    work request walks the policy's preference ordering (quota-capped
    campaigns demoted behind everyone under quota) until a campaign hands
    out an instance.  Results route back by workunit-id namespace.
    """

    def __init__(
        self,
        sim: Simulator,
        runtimes: list[CampaignRuntime],
        policy: SchedulingPolicy,
        grid_telemetry: Telemetry,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.runtimes = runtimes
        self.policy = policy
        self.grid_telemetry = grid_telemetry
        self.tracer = tracer
        #: the agent-visible config: the loosest deadline on the grid
        #: (only consulted for the post-abandon revisit delay)
        self.config = _RouterConfig(
            deadline_s=max(rt.server.config.deadline_s for rt in runtimes)
        )
        self._views: dict[int, _AgentTelemetry] = {}
        self._pending_admissions = sum(
            1 for rt in runtimes if not rt.admitted
        )
        for rt in runtimes:
            if rt.admitted and tracer is not None:
                tracer.emit(
                    "grid.admit", t_sim=0.0, campaign=rt.name,
                    n_workunits=rt.server.n_workunits,
                )

    # -- fleet wiring ------------------------------------------------------

    def register_host(self, host_id: int, view: _AgentTelemetry) -> None:
        """Attach one agent's routed-telemetry view."""
        self._views[host_id] = view

    # -- lifecycle ---------------------------------------------------------

    def admit(self, runtime: CampaignRuntime) -> None:
        """Mid-run admission: the campaign joins the candidate set."""
        runtime.admitted = True
        self._pending_admissions -= 1
        if self.tracer is not None:
            self.tracer.emit(
                "grid.admit", t_sim=self.sim.now, campaign=runtime.name,
                n_workunits=runtime.server.n_workunits,
            )

    def drain(self, runtime: CampaignRuntime) -> None:
        """Mid-run drain: no new issues; outstanding results still land."""
        runtime.drained = True
        if self.tracer is not None:
            self.tracer.emit(
                "grid.drain", t_sim=self.sim.now, campaign=runtime.name,
                validated=runtime.server.n_validated,
                n_workunits=runtime.server.n_workunits,
            )

    # -- the GridServer surface agents consume -----------------------------

    @property
    def all_done(self) -> bool:
        """True once no campaign will ever need the fleet again."""
        if self._pending_admissions:
            return False
        return all(rt.settled for rt in self.runtimes if rt.admitted)

    def request_work(self, host_id: int) -> Instance | None:
        """Serve one work request under the scheduling policy.

        Walks the policy ordering (under-quota campaigns first) until a
        campaign issues an instance.  Returns ``None`` when nobody has
        issuable work; raises :class:`ServerUnavailable` only when every
        candidate campaign's server refused (all mid-outage).
        """
        candidates = [rt for rt in self.runtimes if rt.is_candidate]
        if not candidates:
            return None
        week = self.sim.now / SECONDS_PER_WEEK
        order = self.policy.order(candidates, week)
        order = self._quota_partition(order)
        refused_until: list[float] = []
        for rt in order:
            try:
                instance = rt.server.request_work(host_id)
            except ServerUnavailable as exc:
                refused_until.append(exc.until)
                continue
            if instance is None:
                continue
            rt.issued_reference_s += instance.wu.cost_reference_s
            view = self._views.get(host_id)
            if view is not None:
                view.current = rt.telemetry
            return instance
        if refused_until and len(refused_until) == len(order):
            raise ServerUnavailable(min(refused_until))
        return None

    def _quota_partition(
        self, order: list[CampaignRuntime]
    ) -> list[CampaignRuntime]:
        """Demote over-quota campaigns behind everyone under quota.

        A campaign is over quota when its share of all issued reference
        work exceeds its ``quota_fraction``.  Over-quota campaigns stay
        in the ordering — work-conserving: they are served rather than
        letting a volunteer idle — but only after every under-quota
        campaign had its chance.
        """
        total = sum(rt.issued_reference_s for rt in self.runtimes)
        if total <= 0.0:
            return order
        over = [
            rt
            for rt in order
            if rt.campaign.quota_fraction is not None
            and rt.issued_reference_s > rt.campaign.quota_fraction * total
        ]
        if not over:
            return order
        over_ids = {id(rt) for rt in over}
        return [rt for rt in order if id(rt) not in over_ids] + over

    def on_result(
        self,
        instance: Instance,
        valid: bool,
        accounted_cpu_s: float,
        quality: "ResultQuality | None" = None,
    ) -> None:
        """Route a result report to its owning campaign's server."""
        rt = self.runtime_of(instance.wu.wu_id)
        view = self._views.get(instance.host_id)
        if view is not None:
            view.current = rt.telemetry
        was_done = rt.server.all_done
        rt.server.on_result(
            instance, valid, accounted_cpu_s, quality=quality
        )
        if not was_done:
            self._note_completions()

    def runtime_of(self, wu_id: int) -> CampaignRuntime:
        """The campaign owning workunit ``wu_id`` (id-namespace lookup)."""
        index = wu_id // WU_ID_STRIDE
        if not 0 <= index < len(self.runtimes):
            raise KeyError(f"workunit {wu_id} belongs to no campaign")
        return self.runtimes[index]

    def _note_completions(self) -> None:
        """Emit ``grid.complete`` for campaigns that just finished.

        Checked after result deliveries for *all* runtimes, because a
        deadline-driven terminal failure can complete a campaign from
        inside a DES timer without passing through the router.
        """
        if self.tracer is None:
            return
        for rt in self.runtimes:
            if rt.server.all_done and not rt._complete_emitted:
                rt._complete_emitted = True
                self.tracer.emit(
                    "grid.complete",
                    t_sim=self.sim.now,
                    campaign=rt.name,
                    validated=rt.server.n_validated,
                    failed=rt.server.stats.failed,
                )


@dataclass
class GridResult:
    """What a finished (or horizon-capped) multi-campaign grid produced."""

    config: GridConfig
    #: per-campaign results, in registration order
    campaigns: dict[str, CampaignResult]
    horizon_s: float
    n_hosts: int
    #: grid-level telemetry (pre-first-fetch agent events); None when the
    #: run delegated to the monolithic single-campaign engine
    grid_telemetry: Telemetry | None = None
    #: True when the single-campaign fast path ran (bit-identity mode)
    delegated: bool = False

    def __getitem__(self, name: str) -> CampaignResult:
        return self.campaigns[name]

    @property
    def completion_time(self) -> float | None:
        """Grid completion: when the *last* campaign closed (None if any
        campaign was still open at the horizon)."""
        times = [r.completion_time for r in self.campaigns.values()]
        if any(t is None for t in times):
            return None
        return max(times)

    def merged_stats(self) -> ValidationStats:
        """Campaign stats folded into one grid-global ValidationStats."""
        merged = ValidationStats()
        for result in self.campaigns.values():
            merge_stats(merged, result.server.stats)
        return merged

    def merged_telemetry(self) -> Telemetry:
        """All telemetry (campaigns + grid-level) folded day-aligned."""
        merged = Telemetry(self.horizon_s)
        if self.grid_telemetry is not None:
            merge_telemetry(merged, self.grid_telemetry)
        for result in self.campaigns.values():
            merge_telemetry(merged, result.telemetry)
        return merged

    def issued_share(self) -> dict[str, float]:
        """Each campaign's share of the grid's useful reference work."""
        useful = {
            name: r.server.stats.useful_reference_s
            for name, r in self.campaigns.items()
        }
        total = sum(useful.values())
        if total <= 0.0:
            return {name: 0.0 for name in useful}
        return {name: v / total for name, v in useful.items()}


class MultiGridSimulation:
    """Run a :class:`GridConfig`: N campaigns on one volunteer fleet.

    ``force_router=True`` keeps a single-campaign grid on the router
    path instead of delegating to the monolithic engine — the router
    adds no randomness, so the statistics still reconcile exactly; the
    flag exists for that very test.
    """

    def __init__(
        self,
        config: GridConfig,
        *,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        force_router: bool = False,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.profiler = profiler
        self.force_router = force_router
        self.horizon_s = weeks(config.horizon_weeks)
        self.seed = config.seed
        self.share_schedule = (
            config.share_schedule
            if config.share_schedule is not None
            else hcmd_share_schedule()
        )
        self.population = (
            config.population
            if config.population is not None
            else WCGPopulationModel.calibrated()
        )
        self.host_model = (
            config.host_model
            if config.host_model is not None
            else HostPopulationModel(seed=self.seed, horizon=self.horizon_s)
        )
        self.accounting = (
            config.accounting
            if config.accounting is not None
            else AccountingMode.UD_WALL_CLOCK
        )
        self.faults = config.faults
        #: builds are pure functions of (workload, seed, id base): the
        #: same grid config always materializes identical workunits, the
        #: root of the deterministic mid-run-admission replay guarantee
        self.builds: list[WorkloadBuild] = [
            c.workload.build(self.seed, index * WU_ID_STRIDE)
            for index, c in enumerate(config.campaigns)
        ]
        n_hosts_peak = config.n_hosts_peak
        if n_hosts_peak is None:
            n_hosts_peak = self._auto_host_count()
        self.n_hosts_peak = n_hosts_peak

    # -- fleet sizing (mirrors the monolithic engine) ----------------------

    def _auto_host_count(self) -> int:
        """Peak fleet sized so the *total registered work* lands in ~26
        weeks — the same capacity model as the monolithic auto-sizing,
        summed over campaigns."""
        profile = self.host_model.profile
        availability = profile.mean_on_hours / (
            profile.mean_on_hours + profile.mean_off_hours
        )
        net_speed_down = profile.expected_net_speed_down(n=20_000)
        weekly_capacity = availability * SECONDS_PER_WEEK / net_speed_down
        shares = np.asarray(
            self.share_schedule.share(
                np.arange(constants.PROJECT_DURATION_WEEKS) + 0.5
            )
        )
        share_weeks = float(shares.sum() / self.share_schedule.full_share)
        total = sum(b.total_reference_s for b in self.builds) * 2.4
        return max(4, int(np.ceil(total / (weekly_capacity * share_weeks))))

    def _host_arrival_times(self) -> np.ndarray:
        """Join times implementing share(t) x growth(t) — the monolithic
        arrival process verbatim (substream 0), so a single-campaign grid
        recruits the identical fleet."""
        n_weeks = int(np.ceil(self.horizon_s / SECONDS_PER_WEEK))
        week_idx = np.arange(n_weeks, dtype=np.float64)
        shares = np.asarray(self.share_schedule.share(week_idx + 0.5))
        day0 = constants.WCG_LAUNCH_TO_HCMD_DAYS
        growth = np.asarray(
            self.population.trend(day0 + 7.0 * (week_idx + 0.5))
        )
        project_end_week = float(constants.PROJECT_DURATION_WEEKS)
        ref = self.share_schedule.full_share * float(
            self.population.trend(day0 + 7.0 * project_end_week)
        )
        target = np.maximum(
            1,
            np.round(self.n_hosts_peak * shares * growth / ref).astype(np.int64),
        )
        target = np.maximum.accumulate(target)  # hosts never leave
        arrivals: list[float] = []
        current = 0
        rng = substream(self.seed, "host-arrivals", 0)
        for w in range(n_weeks):
            new = int(target[w] - current)
            if new > 0:
                times = w * SECONDS_PER_WEEK + rng.random(new) * SECONDS_PER_WEEK
                arrivals.extend(float(t) for t in np.sort(times))
                current = int(target[w])
        return np.asarray(arrivals)

    # -- single-campaign delegation ----------------------------------------

    @property
    def delegates_to_monolithic(self) -> bool:
        """True when this grid is exactly the monolithic engine's case:
        one cross-docking campaign, full-lifetime, default weights."""
        if self.force_router or len(self.config.campaigns) != 1:
            return False
        c = self.config.campaigns[0]
        return (
            isinstance(c.workload, CrossDockingWorkload)
            and c.submit_week == 0.0
            and c.drain_week is None
        )

    def _monolithic(self) -> VolunteerGridSimulation:
        """The equivalent single-campaign simulation (bit-identical)."""
        from ..boinc.config import CampaignConfig

        c = self.config.campaigns[0]
        workload = c.workload
        library, cost_model = workload.library_and_costs(self.seed)
        cfg = CampaignConfig(
            packaging=workload.packaging
            if workload.packaging is not None
            else PackagingPolicy(target_hours=workload.target_hours),
            server=c.server,
            faults=self.faults,
            host_model=self.config.host_model,
            share_schedule=self.config.share_schedule,
            population=self.config.population,
            n_hosts_peak=self.config.n_hosts_peak,
            horizon_weeks=self.config.horizon_weeks,
            scale=workload.scale,
            seed=self.seed,
            accounting=self.config.accounting,
            release_policy=workload.release_policy,
        )
        return VolunteerGridSimulation(
            library, cost_model, cfg,
            tracer=self.tracer, profiler=self.profiler,
        )

    # -- server resolution -------------------------------------------------

    def _server_config(self, campaign: Campaign) -> ServerConfig:
        """Resolve one campaign's server policy + grid fault overrides."""
        server_config = (
            campaign.server
            if campaign.server is not None
            else ServerConfig(
                validation=ValidationPolicy(switch_time=weeks(16.0))
            )
        )
        if self.faults.enabled:
            overrides = {}
            if self.faults.max_reissues is not None:
                overrides["max_reissues"] = self.faults.max_reissues
            if self.faults.outages is not None:
                # One physical server farm: an infrastructure outage hits
                # every campaign's scheduler at the same wall times.
                overrides["outages"] = self.faults.outage_windows(
                    self.seed, self.horizon_s
                )
            if overrides:
                server_config = replace(server_config, **overrides)
        return server_config

    # -- execution ---------------------------------------------------------

    def run(self) -> GridResult:
        """Run the grid to completion of every campaign (or the horizon)."""
        if self.delegates_to_monolithic:
            result = self._monolithic().run()
            return GridResult(
                config=self.config,
                campaigns={self.config.campaigns[0].name: result},
                horizon_s=self.horizon_s,
                n_hosts=result.n_hosts,
                grid_telemetry=None,
                delegated=True,
            )

        tracer = self.tracer
        sim_tracer = tracer
        if (
            tracer is not None
            and tracer.channels is not None
            and "des" not in tracer.channels
        ):
            sim_tracer = None
        sim = Simulator(tracer=sim_tracer, profiler=self.profiler)
        profiler = self.profiler if self.profiler is not None else Profiler()
        grid_telemetry = Telemetry(self.horizon_s, tracer=tracer)

        with profiler.timed("setup.campaigns"):
            runtimes: list[CampaignRuntime] = []
            for index, campaign in enumerate(self.config.campaigns):
                build = self.builds[index]
                campaign_tracer = (
                    _CampaignTracer(tracer, campaign.name)
                    if tracer is not None
                    else None
                )
                telemetry = Telemetry(self.horizon_s, tracer=campaign_tracer)
                batch_bytes = build.batch_bytes
                server = GridServer(
                    sim=sim,
                    workunits=build.workunits,
                    config=self._server_config(campaign),
                    on_workunit_valid=(
                        lambda wu, t, _tele=telemetry: _tele.record_validation(t)
                    ),
                    on_batch_complete=(
                        lambda batch, t, _tele=telemetry, _bytes=batch_bytes:
                        _tele.record_shipment(t, _bytes[batch])
                    ),
                    tracer=campaign_tracer,
                    id_base=index * WU_ID_STRIDE,
                )
                runtimes.append(
                    CampaignRuntime(index, campaign, build, server, telemetry)
                )

        router = CampaignRouter(
            sim,
            runtimes,
            make_policy(self.config.policy, self.seed),
            grid_telemetry,
            tracer=tracer,
        )
        for rt in runtimes:
            if not rt.admitted:
                sim.schedule_at(
                    weeks(rt.campaign.submit_week), router.admit, rt
                )
            if rt.campaign.drain_week is not None:
                sim.schedule_at(
                    min(weeks(rt.campaign.drain_week), self.horizon_s),
                    router.drain, rt,
                )

        with profiler.timed("setup.hosts"):
            arrivals = self._host_arrival_times()
            agents: list[VolunteerAgent] = []
            starts = []
            for host_id, join_t in enumerate(arrivals):
                view = _AgentTelemetry(grid_telemetry)
                router.register_host(host_id, view)
                spec = self.host_model.spec(
                    host_id,
                    join_time=float(join_t),
                    faults=self.faults.host_state(self.seed, host_id),
                )
                agent = VolunteerAgent(
                    sim,
                    router,
                    spec,
                    view,
                    rng=substream(self.seed, "agent", host_id),
                    accounting=self.accounting,
                    tracer=tracer,
                )
                agents.append(agent)
                starts.append((float(join_t), agent.start))
            sim.schedule_batch_at(starts)

        with profiler.timed("des.run"):
            sim.run(until=self.horizon_s)

        campaigns: dict[str, CampaignResult] = {}
        for rt in runtimes:
            build = rt.build
            n_batches = build.n_batches
            batch_completion = np.full(n_batches, np.nan)
            for batch, t in rt.server.batch_completion.items():
                batch_completion[batch] = t
            release_order = (
                build.release_order
                if build.release_order is not None
                else np.arange(n_batches)
            )
            workload = rt.campaign.workload
            campaigns[rt.name] = CampaignResult(
                telemetry=rt.telemetry,
                server=rt.server,
                completion_time=rt.server.completion_time,
                horizon_s=self.horizon_s,
                scale=getattr(workload, "scale", 1.0),
                n_hosts=len(agents),
                release_order=release_order.copy(),
                batch_completion_s=batch_completion,
                faults=self.faults,
            )
        return GridResult(
            config=self.config,
            campaigns=campaigns,
            horizon_s=self.horizon_s,
            n_hosts=len(agents),
            grid_telemetry=grid_telemetry,
            delegated=False,
        )
