"""The shared ``--campaign SPEC`` parser for the CLI.

``simulate``, ``serve`` and ``loadgen`` historically grew overlapping
per-command flag sets (``--scale``, ``--proteins``, ...).  The campaign
spec consolidates them into one mini-language parsed in one place, so a
new campaign knob lands once and every subcommand gets it::

    --campaign name=hcmd,kind=cross-docking,scale=300,proteins=10
    --campaign kind=screening,ligands=2000,mean-hours=1.5,weight=2

A spec is a comma-separated ``key=value`` list.  ``kind`` selects the
workload (``cross-docking``, the default, or ``screening``); the other
keys map onto :class:`repro.multi.Campaign` fields and workload knobs.
Repeat the flag to register several campaigns on one grid (``simulate``
only; ``serve``/``loadgen`` speak the single-campaign wire protocol and
say so rather than guessing).

Errors are raised as :class:`CampaignSpecError` with the offending key
and the valid vocabulary spelled out — the CLI surfaces them verbatim.
"""

from __future__ import annotations

from .campaign import Campaign

__all__ = ["CampaignSpecError", "parse_campaign_spec", "SPEC_KEYS"]


class CampaignSpecError(ValueError):
    """A malformed ``--campaign`` spec (message is user-facing)."""


#: spec key -> (target, description); "campaign" keys map to Campaign
#: fields, "cross-docking"/"screening" keys to that workload's knobs.
SPEC_KEYS: dict[str, tuple[str, str]] = {
    "name": ("campaign", "campaign name (default: the kind)"),
    "kind": ("campaign", "workload: cross-docking (default) | screening"),
    "weight": ("campaign", "fair-share / lottery weight (float > 0)"),
    "priority": ("campaign", "strict-priority rank (int, higher wins)"),
    "quota": ("campaign", "max share of issued work, in (0, 1]"),
    "submit": ("campaign", "admission week (float >= 0)"),
    "drain": ("campaign", "drain week (float > submit)"),
    "scale": ("cross-docking", "campaign shrink factor (float > 0)"),
    "proteins": ("cross-docking", "protein count (int >= 2)"),
    "target-hours": ("cross-docking", "workunit packaging target (float)"),
    "release": ("cross-docking", "receptor release order policy"),
    "ligands": ("screening", "ligand database size (int >= 1)"),
    "mean-hours": ("screening", "mean per-ligand docking hours (float)"),
    "sigma": ("screening", "lognormal cost shape (float >= 0)"),
    "batch": ("screening", "ligands per shipped result batch (int)"),
}

_KINDS = ("cross-docking", "screening")


def _fail(message: str) -> None:
    raise CampaignSpecError(
        f"{message}\nvalid keys: "
        + ", ".join(f"{k} ({owner})" for k, (owner, _) in SPEC_KEYS.items())
    )


def _parse_pairs(spec: str) -> dict[str, str]:
    pairs: dict[str, str] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not value.strip():
            _fail(f"expected key=value, got {item!r}")
        if key not in SPEC_KEYS:
            _fail(f"unknown campaign-spec key {key!r}")
        if key in pairs:
            _fail(f"duplicate key {key!r}")
        pairs[key] = value.strip()
    if not pairs:
        _fail(f"empty campaign spec {spec!r}")
    return pairs


def _convert(key: str, value: str, kind: type):
    try:
        return kind(value)
    except ValueError:
        raise CampaignSpecError(
            f"campaign-spec key {key!r} wants {kind.__name__}, "
            f"got {value!r}"
        ) from None


def parse_campaign_spec(spec: str) -> Campaign:
    """Parse one ``--campaign`` value into a :class:`Campaign`.

    >>> parse_campaign_spec("kind=screening,ligands=500,weight=2").name
    'screening'
    """
    pairs = _parse_pairs(spec)
    workload_kind = pairs.pop("kind", "cross-docking")
    if workload_kind not in _KINDS:
        _fail(
            f"unknown workload kind {workload_kind!r}; "
            f"expected one of {_KINDS}"
        )
    for key, value in pairs.items():
        owner = SPEC_KEYS[key][0]
        if owner not in ("campaign", workload_kind):
            _fail(
                f"campaign-spec key {key!r} only applies to "
                f"kind={owner}, not kind={workload_kind}"
            )

    campaign_kwargs: dict = {}
    if "weight" in pairs:
        campaign_kwargs["weight"] = _convert("weight", pairs["weight"], float)
    if "priority" in pairs:
        campaign_kwargs["priority"] = _convert("priority", pairs["priority"], int)
    if "quota" in pairs:
        campaign_kwargs["quota_fraction"] = _convert("quota", pairs["quota"], float)
    if "submit" in pairs:
        campaign_kwargs["submit_week"] = _convert("submit", pairs["submit"], float)
    if "drain" in pairs:
        campaign_kwargs["drain_week"] = _convert("drain", pairs["drain"], float)

    name = pairs.get("name", "hcmd" if workload_kind == "cross-docking" else "screening")
    try:
        if workload_kind == "cross-docking":
            return Campaign.cross_docking(
                name,
                scale=_convert("scale", pairs["scale"], float)
                if "scale" in pairs else 200.0,
                n_proteins=_convert("proteins", pairs["proteins"], int)
                if "proteins" in pairs else 24,
                target_hours=_convert(
                    "target-hours", pairs["target-hours"], float
                ) if "target-hours" in pairs else 3.65,
                release_policy=pairs.get("release", "least-cost"),
                **campaign_kwargs,
            )
        return Campaign.screening(
            name,
            n_ligands=_convert("ligands", pairs["ligands"], int)
            if "ligands" in pairs else 2_000,
            mean_hours=_convert("mean-hours", pairs["mean-hours"], float)
            if "mean-hours" in pairs else 1.5,
            sigma=_convert("sigma", pairs["sigma"], float)
            if "sigma" in pairs else 0.6,
            batch_size=_convert("batch", pairs["batch"], int)
            if "batch" in pairs else 100,
            **campaign_kwargs,
        )
    except ValueError as exc:
        # Campaign/workload validation errors become spec errors with the
        # same user-facing contract.
        raise CampaignSpecError(f"invalid campaign spec {spec!r}: {exc}") from exc
