"""repro.multi — the multi-campaign volunteer grid.

One DES substrate and one volunteer fleet hosting N concurrent
campaigns — the multi-project reality the paper's HCMD run lived in
(control period / prioritization / full power against other WCG
projects) made first-class:

* :mod:`~repro.multi.campaign` — :class:`Campaign` (one project: a
  workload, scheduling weight/priority/quota, a submit/drain lifecycle)
  and :class:`GridConfig` (the shared substrate plus the roster);
* :mod:`~repro.multi.workloads` — what campaigns compute: the HCMD
  cross-docking matrix and a WISDOM-style ligand-screening workload
  with a lognormal cost model;
* :mod:`~repro.multi.policies` — fair-share / strict-priority /
  weighted-lottery capacity division;
* :mod:`~repro.multi.engine` — :class:`MultiGridSimulation`: per-campaign
  grid servers behind a :class:`CampaignRouter` the agents cannot tell
  from a single server; a grid with one registered cross-docking
  campaign delegates to — and is bit-identical with — the monolithic
  engine;
* :mod:`~repro.multi.scenario` — canonical setups, notably the paper's
  three-phase prioritization (:func:`three_phase_scenario`);
* :mod:`~repro.multi.spec` — the shared CLI ``--campaign SPEC`` parser.

Quickstart — two campaigns under fair share::

    from repro import Campaign, GridConfig
    from repro.multi import MultiGridSimulation

    grid = GridConfig(campaigns=(
        Campaign.cross_docking("hcmd", scale=500, n_proteins=8, weight=3.0),
        Campaign.screening("malaria", n_ligands=800, weight=1.0),
    ))
    result = MultiGridSimulation(grid).run()
    print(result.issued_share())   # ~{'hcmd': 0.75, 'malaria': 0.25}

See docs/multicampaign.md for policy semantics and the three-phase
walkthrough.
"""

from .campaign import Campaign, GridConfig, POLICIES
from .engine import (
    CampaignRouter,
    CampaignRuntime,
    GridResult,
    MultiGridSimulation,
    WU_ID_STRIDE,
)
from .policies import (
    FairShare,
    SchedulingPolicy,
    StrictPriority,
    WeightedLottery,
    make_policy,
)
from .scenario import (
    constant_share,
    flat_population,
    three_phase_scenario,
    three_phase_weights,
)
from .spec import CampaignSpecError, parse_campaign_spec
from .workloads import (
    CrossDockingWorkload,
    ScreeningWorkload,
    Workload,
    WorkloadBuild,
)

__all__ = [
    "Campaign",
    "GridConfig",
    "POLICIES",
    "CampaignRouter",
    "CampaignRuntime",
    "GridResult",
    "MultiGridSimulation",
    "WU_ID_STRIDE",
    "FairShare",
    "SchedulingPolicy",
    "StrictPriority",
    "WeightedLottery",
    "make_policy",
    "constant_share",
    "flat_population",
    "three_phase_scenario",
    "three_phase_weights",
    "CampaignSpecError",
    "parse_campaign_spec",
    "CrossDockingWorkload",
    "ScreeningWorkload",
    "Workload",
    "WorkloadBuild",
]
