"""Capacity-division policies for the multi-campaign grid.

A policy answers one question: *when a volunteer asks for work, which
campaign should serve it first?*  It returns a preference **ordering**
rather than a single pick, because the top choice may have nothing
issuable right now (its fresh queue drained, every copy outstanding) —
the router walks the ordering until someone hands out an instance, so no
volunteer ever idles while any campaign still has work.

Three policies, mirroring how shared grids actually divide capacity:

* :class:`FairShare` — weighted max-min: serve the campaign furthest
  *below* its weighted share of the reference work issued so far.  With
  the weight schedule of the paper's three phases this *is* the WCG
  prioritization mechanism (HCMD at 7% → ramp → 45%).
* :class:`StrictPriority` — higher ``priority`` always wins; ties fall
  back to fair share among equals, so equal-priority campaigns do not
  starve each other.
* :class:`WeightedLottery` — each request holds a lottery with tickets
  proportional to current weights (the classic lottery-scheduling
  construction); stochastic but deterministic given the grid seed, with
  starvation-freedom in expectation.

Every ordering is deterministic: ties break by registration order, and
the lottery draws from the dedicated ``lottery`` substream of the grid
seed, so a replay with the same seed issues identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from ..rng import substream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import CampaignRuntime

__all__ = [
    "SchedulingPolicy",
    "FairShare",
    "StrictPriority",
    "WeightedLottery",
    "make_policy",
]


class SchedulingPolicy(Protocol):
    """The pluggable policy surface the router calls."""

    #: the spec string :func:`make_policy` resolves to this class
    name: str

    def order(
        self, candidates: Sequence["CampaignRuntime"], week: float
    ) -> list["CampaignRuntime"]:
        """Candidates in descending service preference.

        ``candidates`` are the currently admitted, undrained,
        uncompleted campaigns in registration order; ``week`` is the
        project week (fractional), the input to per-campaign weight
        schedules.  Must return a permutation of ``candidates``.
        """
        ...  # pragma: no cover - protocol


def _deficit(runtime: "CampaignRuntime", week: float) -> float:
    """Weighted-fair-share sort key: normalized work received so far.

    The campaign with the *smallest* issued-work-per-unit-weight is the
    one furthest below its entitled share and is served first.  Weights
    are evaluated at the current week, so a weight schedule reshapes the
    allocation mid-run without touching already-issued work.
    """
    return runtime.issued_reference_s / runtime.campaign.weight_at(week)


class FairShare:
    """Weighted max-min over cumulative issued reference work."""

    name = "fair-share"

    def order(
        self, candidates: Sequence["CampaignRuntime"], week: float
    ) -> list["CampaignRuntime"]:
        return sorted(candidates, key=lambda rt: (_deficit(rt, week), rt.index))


class StrictPriority:
    """Higher priority always wins; fair share breaks priority ties."""

    name = "strict-priority"

    def order(
        self, candidates: Sequence["CampaignRuntime"], week: float
    ) -> list["CampaignRuntime"]:
        return sorted(
            candidates,
            key=lambda rt: (-rt.campaign.priority, _deficit(rt, week), rt.index),
        )


class WeightedLottery:
    """Ticket lottery per request, tickets proportional to weight."""

    name = "weighted-lottery"

    def __init__(self, seed: int) -> None:
        self._rng = substream(seed, "lottery", 0)

    def order(
        self, candidates: Sequence["CampaignRuntime"], week: float
    ) -> list["CampaignRuntime"]:
        if len(candidates) == 1:
            return list(candidates)
        # Successive draws without replacement (a "perturbed lottery"):
        # position k goes to the winner among the not-yet-placed, so the
        # full ordering — not just the head — is weight-proportional.
        remaining = list(candidates)
        weights = np.array(
            [rt.campaign.weight_at(week) for rt in remaining], dtype=np.float64
        )
        ordered: list["CampaignRuntime"] = []
        while len(remaining) > 1:
            p = weights / weights.sum()
            pick = int(self._rng.choice(len(remaining), p=p))
            ordered.append(remaining.pop(pick))
            weights = np.delete(weights, pick)
        ordered.append(remaining[0])
        return ordered


def make_policy(spec: str, seed: int) -> SchedulingPolicy:
    """Resolve a policy spec string (see :data:`repro.multi.POLICIES`)."""
    if spec == "fair-share":
        return FairShare()
    if spec == "strict-priority":
        return StrictPriority()
    if spec == "weighted-lottery":
        return WeightedLottery(seed)
    raise ValueError(
        f"unknown scheduling policy {spec!r}; expected one of "
        "'fair-share', 'strict-priority', 'weighted-lottery'"
    )
