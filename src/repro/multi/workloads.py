"""Campaign workload models: what a campaign actually computes.

The multi-campaign grid hosts heterogeneous science.  A *workload* is the
pure, frozen description of one campaign's computation — enough to
materialize its workunits deterministically and to price its result
volume in either result format:

* :class:`CrossDockingWorkload` — the HCMD phase-I shape: an all-pairs
  protein cross-docking matrix, released receptor batch by receptor
  batch in least-cost order.  ``build()`` reproduces byte for byte what
  :func:`repro.boinc.simulator.scaled_phase1` has always materialized
  (the façade is a thin adapter over this class).
* :class:`ScreeningWorkload` — the WISDOM-style on-demand virtual
  screening shape: one target receptor docked against a ligand database,
  with per-workunit costs drawn from a lognormal ligand-difficulty model
  (docking times across a compound library are heavy-tailed; the
  lognormal is the standard fit).  Ligands ship in fixed-size batches,
  the unit the result store segments on.

Both builds are pure functions of ``(workload, seed, wu_id_base)`` —
the same triple always yields the same workunit list, which is what the
deterministic-replay and mid-run-admission guarantees of
:mod:`repro.multi.engine` rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .. import constants
from ..core.campaign import CampaignPlan
from ..core.packaging import PackagingPolicy, WorkUnitPlan
from ..core.workunit import WorkUnit
from ..maxdo.cost_model import CostModel
from ..maxdo.resultfile import BYTES_PER_LINE
from ..proteins.library import ProteinLibrary
from ..rng import substream
from ..store.format import ROW_BYTES, SEGMENT_OVERHEAD_BYTES
from ..units import SECONDS_PER_HOUR

__all__ = [
    "WorkloadBuild",
    "CrossDockingWorkload",
    "ScreeningWorkload",
    "Workload",
]


@dataclass
class WorkloadBuild:
    """A materialized workload: everything the grid server needs."""

    #: ``(workunit, batch)`` in release order; ids start at ``wu_id_base``
    workunits: list[tuple[WorkUnit, int]]
    #: result bytes shipped when each batch completes (text format)
    batch_bytes: list[int]
    #: result bytes per batch in the packed columnar format
    batch_bytes_columnar: list[int]
    #: total reference CPU seconds across all workunits
    total_reference_s: float
    #: receptor/batch indices in release order (length = number of batches)
    release_order: np.ndarray | None = None
    #: the protein library backing a cross-docking build (None otherwise)
    library: ProteinLibrary | None = None
    #: the cost model backing a cross-docking build (None otherwise)
    cost_model: CostModel | None = None
    #: the packaging plan backing a cross-docking build (None otherwise)
    plan: WorkUnitPlan | None = None

    @property
    def n_workunits(self) -> int:
        return len(self.workunits)

    @property
    def n_batches(self) -> int:
        return len(self.batch_bytes)


@dataclass(frozen=True)
class CrossDockingWorkload:
    """The HCMD phase-I cross-docking matrix, shrunk by ``scale``.

    ``n_proteins`` proteins keep the phase-1 per-protein statistics; the
    per-protein position counts divide by ``scale``; packaging uses the
    deployed ~3.65 h workunits unless ``packaging`` overrides it.  The
    triple ``(workload, seed)`` fully determines the workunit list —
    identical to what ``scaled_phase1(scale, n_proteins, seed)`` has
    always produced.
    """

    scale: float = 200.0
    n_proteins: int = 24
    target_hours: float = 3.65
    #: receptor release order ("least-cost" | "largest-first" | "library")
    release_policy: str = "least-cost"
    packaging: PackagingPolicy | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.n_proteins < 2:
            raise ValueError("cross-docking needs at least 2 proteins")

    def library_and_costs(self, seed: int) -> tuple[ProteinLibrary, CostModel]:
        """The calibrated synthetic library + cost model for ``seed``."""
        sum_nsep = max(
            self.n_proteins,
            round(
                constants.SUM_NSEP * self.n_proteins
                / constants.N_PROTEINS / self.scale
            ),
        )
        library = ProteinLibrary.synthetic(
            n_proteins=self.n_proteins, sum_nsep=sum_nsep, seed=seed
        )
        return library, CostModel.calibrated(library, seed=seed)

    def build(self, seed: int, wu_id_base: int = 0) -> WorkloadBuild:
        """Materialize the campaign's workunits in release order."""
        library, cost_model = self.library_and_costs(seed)
        packaging = (
            self.packaging
            if self.packaging is not None
            else PackagingPolicy(target_hours=self.target_hours)
        )
        plan = WorkUnitPlan(cost_model, packaging)
        campaign = CampaignPlan(library, cost_model, policy=self.release_policy)
        n = len(library)
        workunits: list[tuple[WorkUnit, int]] = []
        wu_id = wu_id_base
        for pos, couple in enumerate(campaign.ordered_couples(0, None)):
            batch = pos // n
            for wu in plan.iter_workunits([couple], id_start=wu_id):
                workunits.append((wu, batch))
                wu_id += 1
        batch_rows = [
            int(library.nsep[int(r)]) * n * constants.N_ROT_COUPLES
            for r in campaign.release_order
        ]
        return WorkloadBuild(
            workunits=workunits,
            batch_bytes=[rows * BYTES_PER_LINE for rows in batch_rows],
            batch_bytes_columnar=[
                rows * ROW_BYTES + n * SEGMENT_OVERHEAD_BYTES
                for rows in batch_rows
            ],
            # CampaignPlan's vectorized total, not a per-workunit sum: the
            # grid's fleet auto-sizing must agree bit for bit with the
            # monolithic engine, which sizes from CampaignPlan.total_work.
            total_reference_s=campaign.total_work,
            release_order=campaign.release_order.copy(),
            library=library,
            cost_model=cost_model,
            plan=plan,
        )


@dataclass(frozen=True)
class ScreeningWorkload:
    """On-demand ligand-database virtual screening (WISDOM-style).

    One target receptor, ``n_ligands`` database compounds; each workunit
    docks one ligand.  Per-ligand docking cost is lognormal around
    ``mean_hours`` with shape ``sigma`` (heavy-tailed compound-difficulty
    model), drawn from the dedicated ``screening`` substream of the grid
    seed — independent of every other random component.  Ligands ship in
    batches of ``batch_size`` (the result-store segment unit).
    """

    n_ligands: int = 2_000
    mean_hours: float = 1.5
    sigma: float = 0.6
    batch_size: int = 100
    #: poses retained per ligand in the shipped result file
    poses_per_ligand: int = 10
    #: checkpoint granularity: starting positions per screening workunit
    n_checkpoints: int = 8

    def __post_init__(self) -> None:
        if self.n_ligands < 1:
            raise ValueError("a screening campaign needs at least 1 ligand")
        if self.mean_hours <= 0:
            raise ValueError("mean_hours must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def build(self, seed: int, wu_id_base: int = 0) -> WorkloadBuild:
        """Materialize one workunit per ligand, costs from the lognormal."""
        rng = substream(seed, "screening", wu_id_base)
        mean_s = self.mean_hours * SECONDS_PER_HOUR
        # lognormal parameterized so the *mean* (not the median) is mean_s
        mu = np.log(mean_s) - 0.5 * self.sigma**2
        costs = np.exp(rng.normal(mu, self.sigma, size=self.n_ligands))
        workunits: list[tuple[WorkUnit, int]] = []
        for i in range(self.n_ligands):
            workunits.append(
                (
                    WorkUnit(
                        wu_id=wu_id_base + i,
                        receptor=0,  # the single screening target
                        ligand=i,
                        isep_start=1,
                        nsep=self.n_checkpoints,
                        cost_reference_s=float(costs[i]),
                    ),
                    i // self.batch_size,
                )
            )
        n_batches = (self.n_ligands + self.batch_size - 1) // self.batch_size
        batch_rows = [
            min(self.batch_size, self.n_ligands - b * self.batch_size)
            * self.poses_per_ligand
            for b in range(n_batches)
        ]
        return WorkloadBuild(
            workunits=workunits,
            batch_bytes=[rows * BYTES_PER_LINE for rows in batch_rows],
            batch_bytes_columnar=[
                rows * ROW_BYTES + SEGMENT_OVERHEAD_BYTES for rows in batch_rows
            ],
            total_reference_s=float(costs.sum()),
            release_order=np.arange(n_batches),
        )


#: Anything a :class:`repro.multi.Campaign` may compute.
Workload = Union[CrossDockingWorkload, ScreeningWorkload]
