"""Canonical multi-campaign scenarios.

The centerpiece is :func:`three_phase_scenario` — the paper's Section
5.1 prioritization story recast as an explicit scheduling decision.  On
the real World Community Grid, HCMD's three phases were *capacity
shares*: a ~9-week control period at ~7% of the grid, a ~4-week
prioritization ramp, then the full-power phase at 45%.  Here the same
trajectory is an HCMD cross-docking campaign whose fair-share weight
steps through exactly those shares while a background screening
campaign holds the complement — the grid's fleet is **fixed**, and all
throughput movement comes from the scheduler, which is what makes the
phase-II throughput inflection attributable to prioritization alone
(the claim ``BENCH_multicampaign.json`` checks).
"""

from __future__ import annotations

from .. import constants
from ..grid.population import ShareSchedule, WCGPopulationModel
from .campaign import Campaign, GridConfig

__all__ = [
    "constant_share",
    "flat_population",
    "three_phase_weights",
    "three_phase_scenario",
]


def constant_share(share: float = constants.PEAK_PROJECT_SHARE) -> ShareSchedule:
    """A share schedule pinned at ``share`` for all weeks.

    Encoded as a degenerate ramp from ``share`` to ``share`` over one
    week, which the piecewise evaluation renders as exactly ``share``
    everywhere without a zero-length-ramp division.
    """
    return ShareSchedule(
        control_weeks=0.0, ramp_weeks=1.0,
        control_share=share, full_share=share,
    )


def flat_population(vftp: float = 60_000.0) -> WCGPopulationModel:
    """A WCG population model whose trend is constant at ``vftp``.

    The logistic midpoint is pushed far into the past, so the curve sits
    on its ceiling over any simulated horizon — combined with
    :func:`constant_share` this recruits the whole fleet in week 0 and
    holds it fixed, isolating scheduling effects from fleet growth.
    """
    return WCGPopulationModel(
        capacity=vftp, midpoint_day=-10_000.0, timescale_days=1.0
    )


def three_phase_weights(
    control_share: float = 0.07,
    full_share: float = constants.PEAK_PROJECT_SHARE,
    control_weeks: float = float(constants.CONTROL_PERIOD_WEEKS),
    ramp_weeks: float = float(constants.PRIORITIZATION_WEEKS),
) -> tuple[tuple[float, float], ...]:
    """HCMD's Section 5.1 share trajectory as fair-share weight steps.

    Control period at ``control_share``, a mid-ramp step at the ramp's
    mean share, then ``full_share`` — against a background campaign
    holding the complement (:func:`three_phase_scenario`), the weighted
    fair share reproduces the paper's capacity split per phase.
    """
    mid = 0.5 * (control_share + full_share)
    return (
        (0.0, control_share),
        (control_weeks, mid),
        (control_weeks + ramp_weeks, full_share),
    )


def _complement(steps: tuple[tuple[float, float], ...]) -> tuple[tuple[float, float], ...]:
    """The background campaign's weight steps: ``1 - w`` at each step."""
    return tuple((week, 1.0 - w) for week, w in steps)


def three_phase_scenario(
    scale: float = 5.0,
    n_proteins: int = 8,
    n_ligands: int = 10_000,
    seed: int = constants.DEFAULT_SEED,
    horizon_weeks: float = 30.0,
    n_hosts_peak: int = 60,
) -> GridConfig:
    """The paper's three-phase prioritization as a two-campaign grid.

    * ``hcmd`` — a scaled cross-docking campaign whose fair-share weight
      walks the control → prioritization → full-power trajectory;
    * ``background`` — a screening campaign holding the complementary
      weight (the "other WCG projects" HCMD shared the grid with),
      sized to stay hungry for the whole horizon so HCMD's throughput
      is limited by its *share*, never by idle capacity.

    The fleet is fixed (constant share schedule over a flat population),
    so any HCMD throughput inflection at the prioritization boundary is
    the scheduler's doing — the property ``BENCH_multicampaign.json``
    verifies against the paper's phase-II observation.

    The default sizes put HCMD's work just under its 26-week capacity
    entitlement on the 60-host fleet (so it is share-limited, not
    work-limited, through the full-power phase) and keep the background
    database hungry past the horizon.
    """
    weights = three_phase_weights()
    hcmd = Campaign.cross_docking(
        "hcmd",
        scale=scale,
        n_proteins=n_proteins,
        weight_schedule=weights,
    )
    background = Campaign.screening(
        "background",
        n_ligands=n_ligands,
        mean_hours=2.0,
        weight_schedule=_complement(weights),
    )
    return GridConfig(
        campaigns=(hcmd, background),
        policy="fair-share",
        seed=seed,
        horizon_weeks=horizon_weeks,
        n_hosts_peak=n_hosts_peak,
        share_schedule=constant_share(),
        population=flat_population(),
    )
