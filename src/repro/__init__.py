"""repro — reproduction of *Large Scale Execution of a Bioinformatic
Application on a Volunteer Grid* (Bertis, Bolze, Desprez, Reed; LIP
RR-2007-49 / IPPS 2008).

The package rebuilds the whole HCMD phase-I pipeline on synthetic
substrates:

* :mod:`repro.proteins` — calibrated reduced-protein library (168 proteins,
  the Figure 2 ``Nsep`` distribution);
* :mod:`repro.maxdo` — the MAXDo cross-docking engine (LJ + electrostatic
  energy, rigid-body minimization, checkpointing, result files) and the
  Section 4.1 computing-time model (Table 1, Figure 3);
* :mod:`repro.core` — workunit packaging (Figure 4), campaign planning
  (Figure 7), formula (1) estimation, VFTP metrics (Table 2) and the
  phase-II projection (Table 3);
* :mod:`repro.grid` / :mod:`repro.boinc` — a volunteer-grid discrete-event
  simulator (availability, throttling, checkpoint losses, redundant
  computing) with the WCG population model (Figure 1) and the HCMD share
  schedule (Figure 6a);
* :mod:`repro.dedicated` — the Grid'5000-like dedicated grid;
* :mod:`repro.fluid` — the full-scale analytic campaign model;
* :mod:`repro.analysis` / :mod:`repro.validation` — reporting and the
  Section 5.2 result checks;
* :mod:`repro.store` — the packed columnar result store, the canonical
  result format, with lossless text converters and the vectorized
  check -> merge -> matrix pipeline (docs/resultstore.md);
* :mod:`repro.obs` — campaign observability: structured event tracing,
  the metrics registry behind the telemetry, and profiling hooks
  (docs/observability.md);
* :mod:`repro.multi` — the multi-campaign grid: several campaigns
  sharing one volunteer fleet under a fair-share / strict-priority /
  weighted-lottery scheduler (docs/multicampaign.md).

The top level is a façade: the handful of names most sessions need —
:class:`Campaign` / :class:`GridConfig` and :func:`scaled_phase1` /
:class:`CampaignConfig`, :class:`FaultPlan`, :class:`MaxDoRun` /
:func:`dock_couple`, :class:`Tracer` / :class:`Profiler` — import
directly from :mod:`repro`; everything else stays addressable through
its subpackage.

Quickstart — run a scaled phase-I campaign::

    from repro import CampaignConfig, FaultPlan, scaled_phase1

    result = scaled_phase1(scale=300, n_proteins=10).run()
    print(result.metrics().redundancy)        # ~1.3, the paper's 1.37

    # same campaign under injected faults (see repro.faults)
    cfg = CampaignConfig(faults=FaultPlan.from_spec("corrupt=0.1,loss=0.05"))
    degraded = scaled_phase1(scale=300, n_proteins=10, config=cfg).run()
    print(degraded.fault_report().as_dict())

or share the fleet between campaigns (campaign-first API)::

    from repro import Campaign, GridConfig
    from repro.multi import MultiGridSimulation

    grid = GridConfig(campaigns=(
        Campaign.cross_docking("hcmd", scale=500, n_proteins=8, weight=3.0),
        Campaign.screening("malaria", n_ligands=800, weight=1.0),
    ))
    print(MultiGridSimulation(grid).run().issued_share())

or dock one protein couple with the MAXDo model::

    from repro import ProteinLibrary, dock_couple

    library = ProteinLibrary.phase1()
    table = dock_couple(library[3], library[7], seed=1)
"""

from . import constants, units
from .core.campaign import CampaignPlan
from .core.estimation import calibration_experiment, estimate_total_work
from .core.metrics import CampaignMetrics, virtual_full_time_processors
from .core.packaging import PackagingPolicy, WorkUnitPlan
from .core.projection import project_phase2
from .core.workunit import WorkUnit
from .faults import FaultPlan
from .fluid import FluidCampaign
from .grid.population import WCGPopulationModel, hcmd_share_schedule
from .maxdo.cost_model import CostModel
from .maxdo.docking import MaxDoRun, dock_couple
from .obs import MetricsRegistry, Profiler, Tracer
from .proteins.library import ProteinLibrary
from .store import (
    ColumnarSegment,
    ResultStore,
    read_store,
    store_to_text,
    text_to_store,
    write_store,
)
from .boinc import CampaignConfig, ShardPlan, scaled_phase1
from .multi import Campaign, GridConfig, MultiGridSimulation

__version__ = "1.0.0"

__all__ = [
    "constants",
    "units",
    "CampaignPlan",
    "calibration_experiment",
    "estimate_total_work",
    "CampaignMetrics",
    "virtual_full_time_processors",
    "PackagingPolicy",
    "WorkUnitPlan",
    "project_phase2",
    "WorkUnit",
    "FaultPlan",
    "FluidCampaign",
    "WCGPopulationModel",
    "hcmd_share_schedule",
    "CostModel",
    "MaxDoRun",
    "dock_couple",
    "MetricsRegistry",
    "Profiler",
    "Tracer",
    "ProteinLibrary",
    "ColumnarSegment",
    "ResultStore",
    "read_store",
    "store_to_text",
    "text_to_store",
    "write_store",
    "CampaignConfig",
    "ShardPlan",
    "scaled_phase1",
    "Campaign",
    "GridConfig",
    "MultiGridSimulation",
    "__version__",
]
