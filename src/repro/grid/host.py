"""Volunteer host model.

Section 6 decomposes why a volunteer "virtual full-time processor" is ~4x
slower than the reference Opteron 2 GHz at producing useful work:

* the UD agent runs guest work at most at 60% of the CPU (default
  throttle) and "measures wall clock time rather than actual process
  execution time";
* the research application runs at the lowest priority, so any other use
  of the machine further starves it ("not unexpected if the research
  application actually ran for less than 50% of the elapsed wall clock
  time");
* the devices are on average slower than the reference processor, and the
  screensaver itself costs CPU.

A host is therefore: a relative ``speed`` (reference-seconds of work per
second of CPU actually received), a ``duty_cycle`` (fraction of the CPU the
agent gets while the host is available = throttle x contention), an
availability trace, and reliability parameters (invalid results, abandoned
workunits, reporting lag).  The *accounted* run time of a result — what the
grid's statistics see — is the active wall-clock time, reproducing the UD
accounting bias.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from .. import constants
from ..rng import substream
from ..units import SECONDS_PER_HOUR
from .availability import AvailabilityTrace, generate_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import HostFaultState

__all__ = ["HostProfile", "HostSpec", "HostPopulationModel"]


@dataclass(frozen=True)
class HostProfile:
    """Population-level distribution parameters for volunteer hosts."""

    #: median relative speed vs the Opteron 2 GHz reference
    speed_median: float = 0.84
    #: lognormal sigma of the speed distribution
    speed_sigma: float = 0.30
    #: agent CPU throttle (UD default 60%)
    throttle: float = constants.UD_CPU_THROTTLE
    #: share of the throttled CPU the lowest-priority task actually gets
    #: while the host is available (uniform range: owner contention).
    #: Together with the speed distribution this pins the population's
    #: expected net speed-down at the paper's 3.96.
    contention_low: float = 0.33
    contention_high: float = 0.77
    #: probability a returned result is valid
    reliability: float = 0.96
    #: probability a fetched workunit is silently abandoned (host never
    #: reconnects with it; the server times it out)
    abandon_prob: float = 0.03
    #: mean availability session / gap lengths (hours)
    mean_on_hours: float = 6.0
    mean_off_hours: float = 6.0
    #: mean delay between finishing a result and reporting it (hours) —
    #: agents only talk to the server when the volunteer is online
    report_delay_mean_h: float = 2.0
    #: per-week probability a volunteer leaves the project for good
    #: (phase I's fleet only grew, so the default is no attrition)
    attrition_weekly: float = 0.0

    def expected_net_speed_down(self, n: int = 200_000, seed: int = 1) -> float:
        """Monte-Carlo estimate of E[1 / (speed * duty_cycle)].

        This is the population's net speed-down: accounted (active
        wall-clock) time per unit of reference work.  The default profile
        is calibrated to the paper's 3.96.
        """
        rng = np.random.default_rng(seed)
        speed = self.speed_median * np.exp(
            rng.normal(0.0, self.speed_sigma, size=n)
        )
        duty = self.throttle * rng.uniform(
            self.contention_low, self.contention_high, size=n
        )
        return float((1.0 / (speed * duty)).mean())


@dataclass(frozen=True)
class HostSpec:
    """One concrete volunteer host."""

    host_id: int
    speed: float
    duty_cycle: float
    reliability: float
    abandon_prob: float
    report_delay_mean_s: float
    trace: AvailabilityTrace
    #: fault-injection state for this host (crash MTBF, sabotage flag,
    #: report-loss probability and the dedicated fault RNG); None on a
    #: fault-free campaign — see :mod:`repro.faults`
    faults: "HostFaultState | None" = None

    def __post_init__(self) -> None:
        if self.speed <= 0 or not 0 < self.duty_cycle <= 1:
            raise ValueError("speed must be positive and duty cycle in (0, 1]")
        if not 0 <= self.reliability <= 1 or not 0 <= self.abandon_prob <= 1:
            raise ValueError("probabilities must be in [0, 1]")

    @property
    def progress_rate(self) -> float:
        """Reference work per active wall-clock second (speed x duty)."""
        return self.speed * self.duty_cycle

    def active_seconds_for(self, reference_cost_s: float) -> float:
        """Active wall-clock seconds to finish ``reference_cost_s`` of work.

        This is also the *accounted* run time (the UD agent bills wall
        clock), so the grid's consumed-CPU statistics inherit the paper's
        overstatement.
        """
        if reference_cost_s < 0:
            raise ValueError("cost must be non-negative")
        return reference_cost_s / self.progress_rate


class HostPopulationModel:
    """Deterministic per-index host synthesis.

    Host ``i`` is generated from its own named substream, so populations
    are stable under growth: adding host 1001 never changes hosts 0..1000.
    """

    def __init__(
        self,
        profile: HostProfile | None = None,
        seed: int = constants.DEFAULT_SEED,
        horizon: float = 26 * 7 * 86_400.0,
    ) -> None:
        self.profile = profile if profile is not None else HostProfile()
        self.seed = seed
        self.horizon = horizon

    def spec(
        self,
        index: int,
        join_time: float = 0.0,
        faults: "HostFaultState | None" = None,
    ) -> HostSpec:
        """Materialize host ``index`` joining the project at ``join_time``.

        ``faults`` attaches a per-host fault-injection state (derived by
        :meth:`repro.faults.FaultPlan.host_state` from its own substream,
        so it never perturbs this host's behavioural draws).
        """
        p = self.profile
        rng = substream(self.seed, "host", index)
        speed = p.speed_median * float(np.exp(rng.normal(0.0, p.speed_sigma)))
        duty = p.throttle * float(rng.uniform(p.contention_low, p.contention_high))
        leave_time = None
        if p.attrition_weekly > 0:
            # Exponential tenure with the matching weekly hazard.
            mean_tenure_s = 7 * 86_400.0 / p.attrition_weekly
            leave_time = join_time + float(rng.exponential(mean_tenure_s))
        trace = generate_trace(
            rng,
            horizon=self.horizon,
            join_time=join_time,
            leave_time=leave_time,
            mean_on_hours=p.mean_on_hours,
            mean_off_hours=p.mean_off_hours,
        )
        return HostSpec(
            host_id=index,
            speed=speed,
            duty_cycle=duty,
            reliability=p.reliability,
            abandon_prob=p.abandon_prob,
            report_delay_mean_s=p.report_delay_mean_h * SECONDS_PER_HOUR,
            trace=trace,
            faults=faults,
        )

    def with_profile(self, **overrides) -> "HostPopulationModel":
        """A copy of this model with profile fields overridden."""
        return HostPopulationModel(
            profile=replace(self.profile, **overrides),
            seed=self.seed,
            horizon=self.horizon,
        )
