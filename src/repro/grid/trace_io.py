"""Availability-trace serialization and statistics.

Volunteer-availability research archives traces as interval tables (start,
end per availability episode, one file per host) — the Failure Trace
Archive convention.  This module reads/writes that shape as CSV, so users
can feed *measured* traces into the simulator instead of the synthetic
renewal model, and computes the summary statistics host models are
calibrated against.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .availability import AvailabilityTrace

__all__ = ["write_trace_csv", "read_trace_csv", "TraceStatistics", "trace_statistics"]

_HEADER = ["start_s", "end_s"]


def write_trace_csv(path: Path | str, trace: AvailabilityTrace) -> Path:
    """Write a trace as (start_s, end_s) CSV rows plus a horizon comment."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="ascii") as fh:
        fh.write(f"# horizon_s {trace.horizon:.3f}\n")
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for start, end in zip(trace.starts, trace.ends):
            writer.writerow([f"{start:.3f}", f"{end:.3f}"])
    return path


def read_trace_csv(path: Path | str) -> AvailabilityTrace:
    """Parse a trace CSV written by :func:`write_trace_csv`.

    Raises ``ValueError`` on malformed files; interval-algebra violations
    (overlaps, empty intervals, horizon breaches) surface through the
    :class:`AvailabilityTrace` validator.
    """
    path = Path(path)
    horizon: float | None = None
    rows: list[tuple[float, float]] = []
    with path.open("r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "horizon_s":
                    horizon = float(parts[1])
                continue
            if line.startswith(_HEADER[0]):
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise ValueError(f"{path.name}: malformed row {line!r}")
            rows.append((float(parts[0]), float(parts[1])))
    if horizon is None:
        raise ValueError(f"{path.name}: missing horizon comment")
    starts = np.array([r[0] for r in rows])
    ends = np.array([r[1] for r in rows])
    return AvailabilityTrace(starts=starts, ends=ends, horizon=horizon)


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one availability trace."""

    availability: float  #: available fraction of the horizon
    n_sessions: int
    mean_session_s: float
    mean_gap_s: float
    longest_session_s: float
    interruptions_per_day: float

    def as_rows(self) -> list[tuple[str, float]]:
        return [
            ("availability", self.availability),
            ("sessions", float(self.n_sessions)),
            ("mean session (h)", self.mean_session_s / 3600.0),
            ("mean gap (h)", self.mean_gap_s / 3600.0),
            ("longest session (h)", self.longest_session_s / 3600.0),
            ("interruptions/day", self.interruptions_per_day),
        ]


def trace_statistics(trace: AvailabilityTrace) -> TraceStatistics:
    """Compute the calibration-relevant statistics of a trace."""
    n = trace.n_intervals()
    if n == 0:
        return TraceStatistics(
            availability=0.0,
            n_sessions=0,
            mean_session_s=0.0,
            mean_gap_s=trace.horizon,
            longest_session_s=0.0,
            interruptions_per_day=0.0,
        )
    sessions = trace.ends - trace.starts
    gaps = trace.starts[1:] - trace.ends[:-1]
    days = trace.horizon / 86_400.0
    return TraceStatistics(
        availability=trace.total_available / trace.horizon,
        n_sessions=n,
        mean_session_s=float(sessions.mean()),
        mean_gap_s=float(gaps.mean()) if gaps.size else 0.0,
        longest_session_s=float(sessions.max()),
        interruptions_per_day=n / days if days > 0 else 0.0,
    )
