"""Grid substrate: discrete-event kernel, host behaviour, population models.

Shared by the volunteer-grid simulator (:mod:`repro.boinc`) and the
dedicated-grid simulator (:mod:`repro.dedicated`):

* :mod:`repro.grid.des` — a minimal deterministic discrete-event kernel;
* :mod:`repro.grid.availability` — volunteer on/off availability traces;
* :mod:`repro.grid.host` — volunteer host specs (speed, duty cycle,
  reliability) calibrated to the paper's speed-down;
* :mod:`repro.grid.population` — the World Community Grid growth model
  behind Figure 1 and the HCMD share schedule of Figure 6a.
"""

from .availability import AvailabilityTrace
from .des import Event, Simulator
from .host import HostPopulationModel, HostSpec
from .population import WCGPopulationModel, hcmd_share_schedule

__all__ = [
    "AvailabilityTrace",
    "Event",
    "Simulator",
    "HostPopulationModel",
    "HostSpec",
    "WCGPopulationModel",
    "hcmd_share_schedule",
]
