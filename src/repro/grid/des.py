"""A minimal deterministic discrete-event simulation kernel — fast path.

Design goals, in order: determinism (same inputs, same trajectory — events
at equal times fire in scheduling order), speed (the volunteer campaign
schedules millions of events near paper scale), and simplicity (callbacks,
no coroutine machinery).

Entities (servers, agents, clusters) hold their own state and schedule
callbacks; the kernel only owns the clock and the queue.

Internals (the public ``schedule`` / ``schedule_at`` / ``cancel`` /
``peek`` / ``step`` / ``run`` API is unchanged from the reference kernel,
``repro.grid._reference_des``):

* The queue is a heap of plain ``(time, seq, callback, args, handle)``
  tuples.  Ties on ``time`` break on ``seq`` (allocation order), so tuple
  comparison never reaches the callback and runs entirely in C — the old
  rich-comparing ``Event`` dataclass paid a Python ``__lt__`` (plus two
  tuple allocations) per heap comparison.
* ``Event`` is now a one-slot cancellation handle; the callback and its
  firing time live in the heap entry.  Cancellation stays a tombstone:
  the entry is discarded when it reaches the head of the queue, exactly
  as the reference kernel does, so trace sequences are identical.
* **Timer lanes** (``schedule_timer``): deadline timers — same fixed
  delay, almost always cancelled before firing — would churn the main
  heap as tombstones.  Because the clock is monotone, all timers of one
  delay fire in FIFO order, so each distinct delay gets a plain deque
  ("lane"): O(1) append, O(1) discard, and the main heap stays small.
  The dispatch loop merges lane fronts with the heap head by global
  ``(time, seq)`` order, so fire order — and tombstone-discard order —
  is indistinguishable from a single heap.
* ``schedule_batch_at`` bulk-loads a time-sorted batch (host arrivals)
  without per-event sift-up; an unsorted batch degrades to one heapify.

Determinism contract: a seeded campaign driven by this kernel is
bit-identical — same ``CampaignResult``, same event trace — to one driven
by the reference kernel.  ``tests/test_grid_des.py`` (property-based
interleavings) and ``tests/test_des_determinism.py`` (full campaign)
enforce this; ``benchmarks/bench_des_kernel.py`` tracks the speedup.

Observability: pass ``tracer=`` to record ``des.schedule`` / ``des.fire``
/ ``des.cancel`` events, and ``profiler=`` to attribute wall time to each
fired callback by qualified name.  Both default to None; the fully
uninstrumented run() uses a tight drain loop with zero per-event
instrumentation cost — see docs/observability.md.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Profiler, Tracer

__all__ = ["Event", "Simulator"]

_heappush = heapq.heappush
_heappop = heapq.heappop
_object_new = object.__new__
_INFINITY = float("inf")

#: heap/lane entry layout: (time, seq, callback, args, Event)
_TIME, _SEQ, _CALLBACK, _ARGS, _HANDLE = range(5)


def _callback_name(callback: Callable[..., None]) -> str:
    """A stable human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    return name if name is not None else repr(callback)


class Event:
    """Cancellation handle for a scheduled callback.

    Cancellation is a tombstone flag: the kernel discards the entry when
    it reaches the head of the queue.  The handle intentionally carries
    nothing else — the firing time, callback and arguments live in the
    kernel's queue entry, so scheduling allocates one small object with a
    single slot to fill.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event queue + clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
    ) -> None:
        self.now = 0.0
        self._queue: list[tuple] = []
        #: per-delay FIFO lanes for schedule_timer (delay -> deque of entries)
        self._lanes: dict[float, deque] = {}
        self._counter = count()
        self.events_processed = 0
        self.tracer = tracer
        self.profiler = profiler

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        at = self.now + delay
        event = _object_new(Event)
        event.cancelled = False
        _heappush(self._queue, (at, next(self._counter), callback, args, event))
        if self.tracer is not None:
            self.tracer.emit(
                "des.schedule", t_sim=self.now, at=at,
                callback=_callback_name(callback),
            )
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = _object_new(Event)
        event.cancelled = False
        _heappush(self._queue, (time, next(self._counter), callback, args, event))
        if self.tracer is not None:
            self.tracer.emit(
                "des.schedule", t_sim=self.now, at=time,
                callback=_callback_name(callback),
            )
        return event

    def schedule_timer(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule a deadline timer ``delay`` seconds out.

        Semantically identical to :meth:`schedule` — same fire order, same
        tombstone cancellation — but entries go to a per-delay FIFO lane
        instead of the heap.  Use it for high-volume timers that share a
        fixed delay and are usually cancelled (the server's per-instance
        deadline): append, cancel and discard are all O(1), and the
        tombstones never churn the main heap.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        at = self.now + delay
        event = _object_new(Event)
        event.cancelled = False
        entry = (at, next(self._counter), callback, args, event)
        lane = self._lanes.get(delay)
        if lane is None:
            lane = self._lanes[delay] = deque()
        if lane and lane[-1][_TIME] > at:  # pragma: no cover - monotone clock
            _heappush(self._queue, entry)  # defensive: never break fire order
        else:
            lane.append(entry)
        if self.tracer is not None:
            self.tracer.emit(
                "des.schedule", t_sim=self.now, at=at,
                callback=_callback_name(callback),
            )
        return event

    def schedule_batch_at(
        self, items: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[Event]:
        """Schedule a batch of ``(time, callback)`` pairs at once.

        Equivalent to ``[self.schedule_at(t, cb) for t, cb in items]``.
        When the queue is empty and the batch is time-sorted (the host
        arrival schedule), entries are appended directly — a sorted array
        is already a valid heap — skipping per-event sift-up; otherwise
        the queue is re-heapified once at the end.
        """
        queue = self._queue
        was_empty = not queue
        in_order = True
        prev = -_INFINITY
        events: list[Event] = []
        tracer = self.tracer
        for at, callback in items:
            if at < self.now:
                raise ValueError(f"cannot schedule at {at} < now {self.now}")
            event = _object_new(Event)
            event.cancelled = False
            queue.append((at, next(self._counter), callback, (), event))
            events.append(event)
            if at < prev:
                in_order = False
            prev = at
            if tracer is not None:
                tracer.emit(
                    "des.schedule", t_sim=self.now, at=at,
                    callback=_callback_name(callback),
                )
        if not (was_empty and in_order):
            heapq.heapify(queue)
        return events

    # -- queue inspection --------------------------------------------------

    def _min_entry(self) -> tuple[tuple | None, deque | None]:
        """The globally next entry (live or tombstoned) without removing it.

        Returns ``(entry, lane)`` where ``lane`` is None when the entry
        sits in the heap.  Tombstones participate in the ordering exactly
        as they would in a single heap, so discard timing matches the
        reference kernel event for event.
        """
        queue = self._queue
        best = queue[0] if queue else None
        best_lane = None
        for lane in self._lanes.values():
            if lane and (best is None or lane[0] < best):
                best = lane[0]
                best_lane = lane
        return best, best_lane

    def _pop_entry(self, lane: deque | None) -> tuple:
        return _heappop(self._queue) if lane is None else lane.popleft()

    def _discard(self, entry: tuple) -> None:
        """Drop a tombstoned entry (trace point for cancellations)."""
        if self.tracer is not None:
            self.tracer.emit(
                "des.cancel", t_sim=self.now, at=entry[_TIME],
                callback=_callback_name(entry[_CALLBACK]),
            )

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while True:
            entry, lane = self._min_entry()
            if entry is None:
                return None
            if entry[_HANDLE].cancelled:
                self._discard(self._pop_entry(lane))
                continue
            return entry[_TIME]

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while True:
            entry, lane = self._min_entry()
            if entry is None:
                return False
            self._pop_entry(lane)
            at, _, callback, args, event = entry
            if event.cancelled:
                self._discard(entry)
                continue
            if at < self.now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self.now = at
            self.events_processed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "des.fire", t_sim=at, callback=_callback_name(callback),
                )
            if self.profiler is not None:
                start = time.perf_counter()
                callback(*args)
                self.profiler.record(
                    f"des.{_callback_name(callback)}",
                    time.perf_counter() - start,
                )
            else:
                callback(*args)
            return True

    # -- execution ---------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Run to quiescence, or up to (and including) time ``until``.

        With ``until``, the clock is left at ``until`` even if the queue
        drained earlier, so telemetry spanning the full horizon reads a
        consistent end time.
        """
        if until is not None and until < self.now:
            raise ValueError(f"cannot run to {until} < now {self.now}")
        if self.tracer is None and self.profiler is None:
            self._run_fast(until)
            return
        if until is None:
            while self.step():
                pass
            return
        while True:
            nxt = self.peek()
            if nxt is None or nxt > until:
                break
            self.step()
        self.now = until

    def _run_fast(self, until: float | None) -> None:
        """Uninstrumented drain loop: the campaign-scale hot path.

        Fires exactly the events the instrumented loop would, in the same
        order; tombstones are silently dropped (there is no tracer to
        tell).  All hot names are bound locally and the per-event work is
        one heap pop (or lane popleft), one flag check, one clock store
        and the callback itself.
        """
        queue = self._queue
        lanes = self._lanes
        pop = _heappop
        horizon = _INFINITY if until is None else until
        fired = 0
        try:
            while True:
                if lanes:
                    entry = queue[0] if queue else None
                    best_lane = None
                    for lane in lanes.values():
                        if lane and (entry is None or lane[0] < entry):
                            entry = lane[0]
                            best_lane = lane
                    if entry is None or entry[0] > horizon:
                        break
                    if best_lane is None:
                        pop(queue)
                    else:
                        best_lane.popleft()
                    at, _, callback, args, event = entry
                else:
                    if not queue or queue[0][0] > horizon:
                        break
                    at, _, callback, args, event = pop(queue)
                if event.cancelled:
                    continue
                self.now = at
                fired += 1
                # Plain CALL beats CALL_FUNCTION_EX for the no-arg
                # majority (self-scheduling ticks, polls, completions).
                if args:
                    callback(*args)
                else:
                    callback()
        finally:
            self.events_processed += fired
        if until is not None:
            self.now = until
