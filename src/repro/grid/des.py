"""A minimal deterministic discrete-event simulation kernel.

Design goals, in order: determinism (same inputs, same trajectory — events
at equal times fire in scheduling order), speed (a bare heapq loop; the
volunteer campaign schedules hundreds of thousands of events), and
simplicity (callbacks, no coroutine machinery).

Entities (servers, agents, clusters) hold their own state and schedule
callbacks; the kernel only owns the clock and the queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Cancellation is a tombstone flag."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event queue + clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self.now = event.time
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run to quiescence, or up to (and including) time ``until``.

        With ``until``, the clock is left at ``until`` even if the queue
        drained earlier, so telemetry spanning the full horizon reads a
        consistent end time.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise ValueError(f"cannot run to {until} < now {self.now}")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > until:
                break
            self.step()
        self.now = until
