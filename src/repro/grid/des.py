"""A minimal deterministic discrete-event simulation kernel.

Design goals, in order: determinism (same inputs, same trajectory — events
at equal times fire in scheduling order), speed (a bare heapq loop; the
volunteer campaign schedules hundreds of thousands of events), and
simplicity (callbacks, no coroutine machinery).

Entities (servers, agents, clusters) hold their own state and schedule
callbacks; the kernel only owns the clock and the queue.

Observability: pass ``tracer=`` to record ``des.schedule`` / ``des.fire``
/ ``des.cancel`` events, and ``profiler=`` to attribute wall time to each
fired callback by qualified name.  Both default to None and then cost one
identity check per event — see docs/observability.md.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Profiler, Tracer

__all__ = ["Event", "Simulator"]


def _callback_name(callback: Callable[..., None]) -> str:
    """A stable human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    return name if name is not None else repr(callback)


@dataclass(order=True)
class Event:
    """A scheduled callback.  Cancellation is a tombstone flag."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event queue + clock.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
    ) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self.events_processed = 0
        self.tracer = tracer
        self.profiler = profiler

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        if self.tracer is not None:
            self.tracer.emit(
                "des.schedule", t_sim=self.now, at=time,
                callback=_callback_name(callback),
            )
        return event

    def _discard(self, event: Event) -> None:
        """Drop a tombstoned event (trace point for cancellations)."""
        if self.tracer is not None:
            self.tracer.emit(
                "des.cancel", t_sim=self.now, at=event.time,
                callback=_callback_name(event.callback),
            )

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._queue and self._queue[0].cancelled:
            self._discard(heapq.heappop(self._queue))
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._discard(event)
                continue
            if event.time < self.now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self.now = event.time
            self.events_processed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "des.fire", t_sim=event.time,
                    callback=_callback_name(event.callback),
                )
            if self.profiler is not None:
                start = time.perf_counter()
                event.callback(*event.args)
                self.profiler.record(
                    f"des.{_callback_name(event.callback)}",
                    time.perf_counter() - start,
                )
            else:
                event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run to quiescence, or up to (and including) time ``until``.

        With ``until``, the clock is left at ``until`` even if the queue
        drained earlier, so telemetry spanning the full horizon reads a
        consistent end time.
        """
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise ValueError(f"cannot run to {until} < now {self.now}")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > until:
                break
            self.step()
        self.now = until
