"""Volunteer availability traces.

A volunteer device alternates between periods where the agent can compute
(machine on, user allows guest work) and periods where it cannot (machine
off, user busy, agent paused).  "The user can configure the agent to use
only the idle time of the device, or launch the workunit only when the
screensaver is active or continuously work" (Section 3.1) — at the level
the simulation needs, this is an on/off renewal process with exponential
session/gap lengths plus a diurnal modulation (nights are more available
than office hours for home machines; the aggregate weekly dip of Figure 1
is handled by the population model).

Traces are materialized up front per host (a few hundred intervals for a
26-week horizon), so the agent state machine can query transitions in
O(log n) and property tests can check the interval algebra directly.

Synthesis is the dominant setup cost at campaign scale, so
:func:`generate_trace` samples its exponential on/off lengths in blocks —
one RNG call per block instead of two per session — and the interval
assembly runs on plain Python floats.  The sampled values are
bit-identical to the one-draw-per-session loop it replaced (block
``standard_exponential`` consumes the same bit stream, and the diurnal
``math.sin`` matches ``np.sin`` on float64), so per-host traces are
unchanged for a given generator seed; see ``tests/test_grid_availability``
for the exact-equivalence check against the scalar reference.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["AvailabilityTrace", "generate_trace"]

#: Minimum session / gap length (seconds): a host never flips faster.
MIN_INTERVAL_S = 60.0


@dataclass(frozen=True)
class AvailabilityTrace:
    """Sorted, disjoint ``[start, end)`` intervals where the host computes.

    All times are simulation seconds.  ``horizon`` bounds the trace: queries
    beyond it return "unavailable forever".
    """

    starts: np.ndarray
    ends: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        starts = np.asarray(self.starts, dtype=np.float64)
        ends = np.asarray(self.ends, dtype=np.float64)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise ValueError("starts/ends must be equal-length 1-d arrays")
        if len(starts):
            if (ends <= starts).any():
                raise ValueError("every interval must have positive length")
            if (starts[1:] < ends[:-1]).any():
                raise ValueError("intervals must be sorted and disjoint")
            if ends[-1] > self.horizon:
                raise ValueError("trace extends past its horizon")
        object.__setattr__(self, "starts", starts)
        object.__setattr__(self, "ends", ends)
        starts.setflags(write=False)
        ends.setflags(write=False)
        # Plain-float copies for the per-event point queries: bisect over a
        # Python list compares C doubles directly, where the ndarray path
        # would box one np.float64 per probe — this is the agents' hottest
        # query pair, called a few times per simulated event.
        object.__setattr__(self, "_starts_list", starts.tolist())
        object.__setattr__(self, "_ends_list", ends.tolist())

    def is_available(self, t: float) -> bool:
        """Whether the host computes at time ``t``."""
        i = bisect_right(self._starts_list, t) - 1
        return i >= 0 and t < self._ends_list[i]

    def next_transition(self, t: float) -> float | None:
        """First time strictly after ``t`` where availability flips.

        Returns None when no transition remains before the horizon.
        """
        starts = self._starts_list
        i = bisect_right(starts, t) - 1
        if i >= 0 and t < self._ends_list[i]:
            return self._ends_list[i]
        if i + 1 < len(starts):
            return starts[i + 1]
        return None

    def available_seconds(self, t0: float, t1: float) -> float:
        """Total available time within ``[t0, t1]`` (clipped overlap sum)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        overlap = np.minimum(self.ends, t1) - np.maximum(self.starts, t0)
        return float(np.clip(overlap, 0.0, None).sum())

    @property
    def total_available(self) -> float:
        """Available seconds over the whole horizon."""
        return float((self.ends - self.starts).sum())

    def n_intervals(self) -> int:
        return len(self.starts)


def _diurnal_weight(t: float, phase: float) -> float:
    """Relative availability at time-of-day ``t`` (peak in the evening)."""
    day_fraction = ((t / SECONDS_PER_DAY) + phase) % 1.0
    return 1.0 + 0.5 * math.sin(2.0 * math.pi * (day_fraction - 0.25))


def generate_trace(
    rng: np.random.Generator,
    horizon: float,
    join_time: float = 0.0,
    leave_time: float | None = None,
    mean_on_hours: float = 6.0,
    mean_off_hours: float = 6.0,
    diurnal: bool = True,
) -> AvailabilityTrace:
    """Sample an availability trace over ``[join_time, leave_time]``.

    Alternating exponential on/off sessions; with ``diurnal=True`` the off
    gaps stretch or shrink with the time of day (a per-host random phase
    models time zones and habits).  A host present for the whole horizon
    with 6 h/6 h parameters is available ~50% of wall-clock time, matching
    the "non-dedicated device" picture of Section 6.

    The exponential lengths are drawn as blocks of standard exponentials
    (scaled per use), which consumes the generator's bit stream in the
    same order as per-session scalar draws — the resulting trace is
    bit-identical.  The generator may be advanced past the last draw the
    trace actually uses (block overshoot), so callers must not rely on
    the generator's state afterwards.
    """
    end = min(horizon, leave_time if leave_time is not None else horizon)
    if end <= join_time:
        return AvailabilityTrace(
            starts=np.empty(0), ends=np.empty(0), horizon=horizon
        )
    phase = float(rng.random())
    on_scale = mean_on_hours * SECONDS_PER_HOUR
    off_scale = mean_off_hours * SECONDS_PER_HOUR
    # Expected draws: ~2 per mean session+gap, floored by the 60 s minimum
    # interval length; headroom for the diurnal shrink (weight <= 1.5) and
    # sampling noise.  Shortfalls refill below, overshoot is discarded.
    span = end - join_time
    est_sessions = 1 + min(
        int(1.5 * span / max(on_scale + off_scale, 2 * MIN_INTERVAL_S)),
        int(span / (2 * MIN_INTERVAL_S)),
    )
    block = min(2 * est_sessions + 1, 1 << 20)
    draws = rng.standard_exponential(block).tolist()
    n_draws = len(draws)
    sin = math.sin
    two_pi = 2.0 * math.pi

    starts: list[float] = []
    ends: list[float] = []
    # Start in the off state with a partial gap so hosts don't all wake at
    # their join instant.
    t = join_time + draws[0] * (mean_off_hours * SECONDS_PER_HOUR / 2)
    i = 1
    while t < end:
        if i + 2 > n_draws:  # refill: long diurnal tails outrun the estimate
            draws = rng.standard_exponential(max(block, 64)).tolist()
            n_draws = len(draws)
            i = 0
        on = draws[i] * on_scale
        gap = draws[i + 1] * off_scale
        i += 2
        session_end = min(t + max(on, MIN_INTERVAL_S), end)
        starts.append(t)
        ends.append(session_end)
        if diurnal:
            day_fraction = ((session_end / SECONDS_PER_DAY) + phase) % 1.0
            gap /= 1.0 + 0.5 * sin(two_pi * (day_fraction - 0.25))
        t = session_end + max(gap, MIN_INTERVAL_S)
    return AvailabilityTrace(
        starts=np.asarray(starts), ends=np.asarray(ends), horizon=horizon
    )
