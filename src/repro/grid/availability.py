"""Volunteer availability traces.

A volunteer device alternates between periods where the agent can compute
(machine on, user allows guest work) and periods where it cannot (machine
off, user busy, agent paused).  "The user can configure the agent to use
only the idle time of the device, or launch the workunit only when the
screensaver is active or continuously work" (Section 3.1) — at the level
the simulation needs, this is an on/off renewal process with exponential
session/gap lengths plus a diurnal modulation (nights are more available
than office hours for home machines; the aggregate weekly dip of Figure 1
is handled by the population model).

Traces are materialized up front per host (a few hundred intervals for a
26-week horizon), so the agent state machine can query transitions in
O(log n) and property tests can check the interval algebra directly.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["AvailabilityTrace", "generate_trace"]


@dataclass(frozen=True)
class AvailabilityTrace:
    """Sorted, disjoint ``[start, end)`` intervals where the host computes.

    All times are simulation seconds.  ``horizon`` bounds the trace: queries
    beyond it return "unavailable forever".
    """

    starts: np.ndarray
    ends: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        starts = np.asarray(self.starts, dtype=np.float64)
        ends = np.asarray(self.ends, dtype=np.float64)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise ValueError("starts/ends must be equal-length 1-d arrays")
        if len(starts):
            if (ends <= starts).any():
                raise ValueError("every interval must have positive length")
            if (starts[1:] < ends[:-1]).any():
                raise ValueError("intervals must be sorted and disjoint")
            if ends[-1] > self.horizon:
                raise ValueError("trace extends past its horizon")
        object.__setattr__(self, "starts", starts)
        object.__setattr__(self, "ends", ends)
        starts.setflags(write=False)
        ends.setflags(write=False)

    def is_available(self, t: float) -> bool:
        """Whether the host computes at time ``t``."""
        i = bisect_right(self.starts, t) - 1
        return i >= 0 and t < self.ends[i]

    def next_transition(self, t: float) -> float | None:
        """First time strictly after ``t`` where availability flips.

        Returns None when no transition remains before the horizon.
        """
        i = bisect_right(self.starts, t) - 1
        if i >= 0 and t < self.ends[i]:
            return float(self.ends[i])
        if i + 1 < len(self.starts):
            return float(self.starts[i + 1])
        return None

    def available_seconds(self, t0: float, t1: float) -> float:
        """Total available time within ``[t0, t1]`` (clipped overlap sum)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        overlap = np.minimum(self.ends, t1) - np.maximum(self.starts, t0)
        return float(np.clip(overlap, 0.0, None).sum())

    @property
    def total_available(self) -> float:
        """Available seconds over the whole horizon."""
        return float((self.ends - self.starts).sum())

    def n_intervals(self) -> int:
        return len(self.starts)


def _diurnal_weight(t: float, phase: float) -> float:
    """Relative availability at time-of-day ``t`` (peak in the evening)."""
    day_fraction = ((t / SECONDS_PER_DAY) + phase) % 1.0
    return 1.0 + 0.5 * np.sin(2.0 * np.pi * (day_fraction - 0.25))


def generate_trace(
    rng: np.random.Generator,
    horizon: float,
    join_time: float = 0.0,
    leave_time: float | None = None,
    mean_on_hours: float = 6.0,
    mean_off_hours: float = 6.0,
    diurnal: bool = True,
) -> AvailabilityTrace:
    """Sample an availability trace over ``[join_time, leave_time]``.

    Alternating exponential on/off sessions; with ``diurnal=True`` the off
    gaps stretch or shrink with the time of day (a per-host random phase
    models time zones and habits).  A host present for the whole horizon
    with 6 h/6 h parameters is available ~50% of wall-clock time, matching
    the "non-dedicated device" picture of Section 6.
    """
    end = min(horizon, leave_time if leave_time is not None else horizon)
    if end <= join_time:
        return AvailabilityTrace(
            starts=np.empty(0), ends=np.empty(0), horizon=horizon
        )
    phase = float(rng.random())
    starts: list[float] = []
    ends: list[float] = []
    # Start in the off state with a partial gap so hosts don't all wake at
    # their join instant.
    t = join_time + float(rng.exponential(mean_off_hours * SECONDS_PER_HOUR / 2))
    while t < end:
        on = float(rng.exponential(mean_on_hours * SECONDS_PER_HOUR))
        session_end = min(t + max(on, 60.0), end)
        starts.append(t)
        ends.append(session_end)
        gap = float(rng.exponential(mean_off_hours * SECONDS_PER_HOUR))
        if diurnal:
            gap /= _diurnal_weight(session_end, phase)
        t = session_end + max(gap, 60.0)
    return AvailabilityTrace(
        starts=np.asarray(starts), ends=np.asarray(ends), horizon=horizon
    )
