"""The reference discrete-event kernel — the fire-order oracle.

This is the pre-optimization ``repro.grid.des`` implementation, frozen
verbatim: a single ``heapq`` of rich-comparing ``Event`` dataclasses, one
object allocation per scheduled callback, tombstone cancellation through
the main heap.  It is deliberately *not* fast; it is the executable
definition of the kernel's determinism contract:

    events fire in ``(time, scheduling order)`` order, tombstoned events
    are discarded exactly when they reach the head of the queue, and a
    seeded campaign driven by this kernel is bit-identical to one driven
    by the optimized kernel.

``tests/test_grid_des.py`` drives random schedule/cancel/run
interleavings through both kernels and asserts identical fire sequences;
``tests/test_des_determinism.py`` swaps this kernel into a full scaled
campaign and asserts a bit-identical :class:`CampaignResult` and an
identical event trace.  ``benchmarks/bench_des_kernel.py`` uses it as the
speedup baseline for ``BENCH_des.json``.

The extended queue API added with the fast kernel (``schedule_timer``,
``schedule_batch_at``) is provided here with the *naive* semantics the
optimized kernel must reproduce: timers are ordinary heap events and a
batch is a loop of ``schedule_at`` calls.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Profiler, Tracer

__all__ = ["Event", "Simulator"]


def _callback_name(callback: Callable[..., None]) -> str:
    """A stable human-readable label for a scheduled callback."""
    name = getattr(callback, "__qualname__", None)
    return name if name is not None else repr(callback)


@dataclass(order=True)
class Event:
    """A scheduled callback.  Cancellation is a tombstone flag."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event queue + clock (reference implementation).

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        profiler: "Profiler | None" = None,
    ) -> None:
        self.now = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self.events_processed = 0
        self.tracer = tracer
        self.profiler = profiler

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        if self.tracer is not None:
            self.tracer.emit(
                "des.schedule", t_sim=self.now, at=time,
                callback=_callback_name(callback),
            )
        return event

    def schedule_timer(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Deadline timer: in the reference kernel, an ordinary heap event."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_batch_at(
        self, items: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[Event]:
        """Bulk schedule: in the reference kernel, a loop of schedule_at."""
        return [self.schedule_at(t, callback) for t, callback in items]

    def _discard(self, event: Event) -> None:
        """Drop a tombstoned event (trace point for cancellations)."""
        if self.tracer is not None:
            self.tracer.emit(
                "des.cancel", t_sim=self.now, at=event.time,
                callback=_callback_name(event.callback),
            )

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._queue and self._queue[0].cancelled:
            self._discard(heapq.heappop(self._queue))
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._discard(event)
                continue
            if event.time < self.now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self.now = event.time
            self.events_processed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "des.fire", t_sim=event.time,
                    callback=_callback_name(event.callback),
                )
            if self.profiler is not None:
                start = time.perf_counter()
                event.callback(*event.args)
                self.profiler.record(
                    f"des.{_callback_name(event.callback)}",
                    time.perf_counter() - start,
                )
            else:
                event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run to quiescence, or up to (and including) time ``until``."""
        if until is None:
            while self.step():
                pass
            return
        if until < self.now:
            raise ValueError(f"cannot run to {until} < now {self.now}")
        while True:
            nxt = self.peek()
            if nxt is None or nxt > until:
                break
            self.step()
        self.now = until
