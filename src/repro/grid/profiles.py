"""Device-class mixtures.

"The computers which compose the membership of World Community Grid are
usually simple desktop machines" (Section 3.2) — but not uniformly so: a
volunteer fleet mixes home machines crunching in the evening, office
desktops idle outside work hours, laptops with short sessions, and the
occasional always-on box.  This module provides named device classes and a
mixture population model, so fleet-composition questions ("what if the
fleet were all office machines?") become one-parameter experiments.

The mixture model is a drop-in replacement for
:class:`repro.grid.host.HostPopulationModel`: per-host class assignment is
seeded and index-stable, and a blended representative profile supports the
simulator's capacity sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .. import constants
from ..rng import substream
from .host import HostPopulationModel, HostProfile, HostSpec

__all__ = ["DeviceClass", "MixtureHostModel", "wcg_fleet_mixture"]


@dataclass(frozen=True)
class DeviceClass:
    """A named host profile with a mixture weight."""

    name: str
    profile: HostProfile
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


#: Home desktop: evening crunching, mid-range speed — the WCG mainstay.
HOME_EVENING = DeviceClass(
    name="home-evening",
    profile=HostProfile(mean_on_hours=5.0, mean_off_hours=9.0),
    weight=0.55,
)

#: Office desktop: long idle nights/weekends, almost no owner contention
#: while crunching, but strictly throttled during the day.
OFFICE_DESKTOP = DeviceClass(
    name="office-desktop",
    profile=HostProfile(
        mean_on_hours=12.0, mean_off_hours=10.0,
        contention_low=0.55, contention_high=0.95,
    ),
    weight=0.25,
)

#: Laptop: short sessions, frequent interruptions, abandons more work.
LAPTOP = DeviceClass(
    name="laptop",
    profile=HostProfile(
        mean_on_hours=2.0, mean_off_hours=6.0,
        abandon_prob=0.08, speed_median=0.75,
    ),
    weight=0.15,
)

#: Always-on workstation: the rare dedicated-style volunteer.
ALWAYS_ON = DeviceClass(
    name="always-on",
    profile=HostProfile(
        mean_on_hours=60.0, mean_off_hours=2.0,
        contention_low=0.70, contention_high=0.98, speed_median=1.1,
    ),
    weight=0.05,
)


def wcg_fleet_mixture() -> list[DeviceClass]:
    """The default four-class WCG-like fleet."""
    return [HOME_EVENING, OFFICE_DESKTOP, LAPTOP, ALWAYS_ON]


class MixtureHostModel:
    """Per-host device classes drawn from a weighted mixture.

    Drop-in for :class:`HostPopulationModel`: ``spec(index, join_time)``
    is deterministic per index, and ``profile`` exposes a weight-blended
    representative profile for capacity sizing.
    """

    def __init__(
        self,
        classes: list[DeviceClass] | None = None,
        seed: int = constants.DEFAULT_SEED,
        horizon: float = 26 * 7 * 86_400.0,
    ) -> None:
        self.classes = classes if classes is not None else wcg_fleet_mixture()
        if not self.classes:
            raise ValueError("need at least one device class")
        self.seed = seed
        self.horizon = horizon
        weights = np.array([c.weight for c in self.classes], dtype=np.float64)
        self._probs = weights / weights.sum()
        self._models = [
            HostPopulationModel(profile=c.profile, seed=seed, horizon=horizon)
            for c in self.classes
        ]

    @property
    def profile(self) -> HostProfile:
        """Weight-blended representative profile (sizing heuristics only)."""
        def blend(attr: str) -> float:
            return float(
                sum(
                    p * getattr(c.profile, attr)
                    for p, c in zip(self._probs, self.classes)
                )
            )

        return replace(
            self.classes[0].profile,
            speed_median=blend("speed_median"),
            mean_on_hours=blend("mean_on_hours"),
            mean_off_hours=blend("mean_off_hours"),
            contention_low=blend("contention_low"),
            contention_high=blend("contention_high"),
            abandon_prob=blend("abandon_prob"),
            reliability=blend("reliability"),
        )

    def class_of(self, index: int) -> DeviceClass:
        """The (seeded, index-stable) device class of host ``index``."""
        rng = substream(self.seed, "device-class", index)
        choice = int(rng.choice(len(self.classes), p=self._probs))
        return self.classes[choice]

    def spec(self, index: int, join_time: float = 0.0, faults=None) -> HostSpec:
        """Materialize host ``index`` from its class's population model."""
        rng = substream(self.seed, "device-class", index)
        choice = int(rng.choice(len(self.classes), p=self._probs))
        return self._models[choice].spec(index, join_time=join_time, faults=faults)

    def with_profile(self, **overrides) -> "MixtureHostModel":
        """Override profile fields across every class (API parity)."""
        return MixtureHostModel(
            classes=[
                DeviceClass(
                    name=c.name,
                    profile=replace(c.profile, **overrides),
                    weight=c.weight,
                )
                for c in self.classes
            ],
            seed=self.seed,
            horizon=self.horizon,
        )

    def class_shares(self, n_hosts: int) -> dict[str, float]:
        """Realized class composition of the first ``n_hosts`` hosts."""
        if n_hosts < 1:
            raise ValueError("need at least one host")
        counts: dict[str, int] = {c.name: 0 for c in self.classes}
        for i in range(n_hosts):
            counts[self.class_of(i).name] += 1
        return {name: count / n_hosts for name, count in counts.items()}
