"""World Community Grid population model (Figure 1) and the HCMD share
schedule (Figure 6a).

Figure 1 plots the *virtual full-time processors* participating in WCG
since its launch (Nov 16, 2004): a globally increasing trend with weekly
oscillation ("during the week-end there are less processors than during
the week") and dips at the Christmas holidays of 2005 and 2006 and the
summer of 2006.

We model the trend as a logistic curve calibrated by least squares to the
paper's anchors — ~2,000 VFTP at launch, an average of 54,947 VFTP during
the HCMD project window, 74,825 VFTP in the week the paper was written —
and superpose deterministic weekly/holiday modulations.

The HCMD share schedule reproduces Section 5.1's three phases: a
low-priority *control period* (~2 months), a *project prioritization* ramp
through February (reaching 45% of WCG's devices), and a constant-share
*full power working phase* until completion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from .. import constants
from ..units import SECONDS_PER_DAY

__all__ = ["WCGPopulationModel", "ShareSchedule", "hcmd_share_schedule"]

#: Day offsets (from WCG launch) of the modulation features of Figure 1.
_CHRISTMAS_2005_DAY = 404
_CHRISTMAS_2006_DAY = 769
_SUMMER_2006_START = 590
_SUMMER_2006_END = 670

#: WCG launched on a Tuesday (Nov 16, 2004); weekday index 0 = Monday.
_LAUNCH_WEEKDAY = 1


@dataclass(frozen=True)
class WCGPopulationModel:
    """Logistic VFTP trend with weekly and seasonal modulation."""

    capacity: float  #: logistic ceiling (VFTP)
    midpoint_day: float  #: inflection day
    timescale_days: float  #: logistic time constant
    weekend_dip: float = constants.WEEKEND_DIP_FRACTION
    holiday_dip: float = 0.18
    summer_dip: float = 0.07
    #: VFTP produced per member (325,000 members ~ 60,000 VFTP, Section 7)
    vftp_per_member: float = constants.WCG_MEMBERS_VFTP / constants.WCG_MEMBERS

    # -- trend ----------------------------------------------------------

    def trend(self, day: np.ndarray | float) -> np.ndarray | float:
        """Smooth VFTP trend at ``day`` (days since WCG launch)."""
        day = np.asarray(day, dtype=np.float64)
        out = self.capacity / (
            1.0 + np.exp(-(day - self.midpoint_day) / self.timescale_days)
        )
        return out if out.ndim else float(out)

    def _modulation(self, day: np.ndarray) -> np.ndarray:
        weekday = (day.astype(np.int64) + _LAUNCH_WEEKDAY) % 7
        mod = np.where(weekday >= 5, 1.0 - self.weekend_dip, 1.0)
        for center in (_CHRISTMAS_2005_DAY, _CHRISTMAS_2006_DAY):
            mod = mod * (
                1.0 - self.holiday_dip * np.exp(-0.5 * ((day - center) / 6.0) ** 2)
            )
        in_summer = (day >= _SUMMER_2006_START) & (day <= _SUMMER_2006_END)
        mod = np.where(in_summer, mod * (1.0 - self.summer_dip), mod)
        return mod

    def vftp(self, day: np.ndarray | float) -> np.ndarray | float:
        """Modulated VFTP (the Figure 1 curve)."""
        arr = np.asarray(day, dtype=np.float64)
        out = self.trend(arr) * self._modulation(arr)
        return out if out.ndim else float(out)

    def daily_series(self, start_day: int, n_days: int) -> np.ndarray:
        """VFTP sampled once per day over ``[start_day, start_day+n_days)``."""
        days = np.arange(start_day, start_day + n_days, dtype=np.float64)
        return np.asarray(self.vftp(days))

    def members(self, day: np.ndarray | float) -> np.ndarray | float:
        """Members implied by the trend through the VFTP-per-member yield."""
        trend = self.trend(day)
        return trend / self.vftp_per_member

    def cpu_years_per_day(self, day: float) -> float:
        """Daily CPU production in years/day (how WCG publishes Figure 1)."""
        return float(self.vftp(day)) * SECONDS_PER_DAY / (365 * SECONDS_PER_DAY)

    # -- calibration ------------------------------------------------------

    @classmethod
    def calibrated(cls) -> "WCGPopulationModel":
        """Least-squares fit of the logistic to the paper's three anchors.

        1. ~2,000 VFTP at launch (day 0);
        2. average 54,947 VFTP over the HCMD window (days 763..945);
        3. 74,825 VFTP in the week the paper was written (~day 1110).
        """
        project_days = np.arange(
            constants.WCG_LAUNCH_TO_HCMD_DAYS,
            constants.WCG_LAUNCH_TO_HCMD_DAYS + 7 * constants.PROJECT_DURATION_WEEKS,
            dtype=np.float64,
        )

        def residuals(params: np.ndarray) -> np.ndarray:
            model = cls(
                capacity=params[0],
                midpoint_day=params[1],
                timescale_days=params[2],
            )
            return np.array(
                [
                    (model.trend(0.0) - constants.WCG_VFTP_AT_LAUNCH)
                    / constants.WCG_VFTP_AT_LAUNCH,
                    (
                        float(np.mean(model.trend(project_days)))
                        - constants.WCG_VFTP_DURING_PROJECT
                    )
                    / constants.WCG_VFTP_DURING_PROJECT,
                    (model.trend(1110.0) - constants.WCG_VFTP_DEC_2007)
                    / constants.WCG_VFTP_DEC_2007,
                ]
            )

        fit = least_squares(
            residuals,
            x0=np.array([95_000.0, 720.0, 250.0]),
            bounds=([10_000.0, 100.0, 30.0], [500_000.0, 2000.0, 1000.0]),
        )
        capacity, midpoint, timescale = fit.x
        return cls(
            capacity=float(capacity),
            midpoint_day=float(midpoint),
            timescale_days=float(timescale),
        )


@dataclass(frozen=True)
class ShareSchedule:
    """Fraction of WCG working for HCMD as a function of project week."""

    control_weeks: float = float(constants.CONTROL_PERIOD_WEEKS)
    ramp_weeks: float = float(constants.PRIORITIZATION_WEEKS)
    control_share: float = 0.07
    full_share: float = constants.PEAK_PROJECT_SHARE

    def share(self, week: np.ndarray | float) -> np.ndarray | float:
        """Piecewise-linear share: control -> ramp -> full power."""
        week = np.asarray(week, dtype=np.float64)
        ramp_end = self.control_weeks + self.ramp_weeks
        ramp_frac = np.clip((week - self.control_weeks) / self.ramp_weeks, 0.0, 1.0)
        out = np.where(
            week < self.control_weeks,
            self.control_share,
            self.control_share + ramp_frac * (self.full_share - self.control_share),
        )
        out = np.where(week >= ramp_end, self.full_share, out)
        out = np.where(week < 0, 0.0, out)
        return out if out.ndim else float(out)

    def phase_of_week(self, week: float) -> str:
        """Phase label of Section 5.1 for ``week``."""
        if week < 0:
            raise ValueError("week must be non-negative")
        if week < self.control_weeks:
            return "control period"
        if week < self.control_weeks + self.ramp_weeks:
            return "project prioritization"
        return "full power working phase"


def hcmd_share_schedule() -> ShareSchedule:
    """The paper-default HCMD share schedule (Section 5.1)."""
    return ShareSchedule()
