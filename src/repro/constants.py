"""Paper constants and calibration targets for the HCMD phase-I reproduction.

Every number quoted from the paper lives here (and only here) so that the
benchmark harness can report *paper vs measured* side by side without magic
numbers scattered through the code base.

Sources are given as section/table/figure references into

    Bertis, Bolze, Desprez, Reed.  "Large Scale Execution of a Bioinformatic
    Application on a Volunteer Grid".  LIP RR-2007-49 / IPPS 2008.
"""

from __future__ import annotations

from .units import SECONDS_PER_DAY, SECONDS_PER_WEEK, parse_ydhms

# --------------------------------------------------------------------------
# Section 2/4 — application shape
# --------------------------------------------------------------------------

#: Number of proteins in the phase-I target set (Section 2.1).
N_PROTEINS = 168

#: Number of (alpha, beta) starting-orientation couples per starting
#: position (Section 2.1, footnote 1).  The packaging and estimation
#: formulas of the paper count work in units of one starting position times
#: all 21 orientation couples.
N_ROT_COUPLES = 21

#: Number of gamma values explored per (alpha, beta) couple (footnote 1):
#: the "210 starting orientations" = 21 couples x 10 gamma values.
N_GAMMA = 10

#: Total starting orientations per starting position.
N_ORIENTATIONS = N_ROT_COUPLES * N_GAMMA

#: Maximum number of workunits the project can generate, i.e.
#: sum over ordered couples (p1, p2) of Nsep(p1) (Section 4.1).
TOTAL_MAX_WORKUNITS = 49_481_544

#: Implied sum of Nsep over the 168 proteins (TOTAL_MAX_WORKUNITS / 168).
SUM_NSEP = TOTAL_MAX_WORKUNITS // N_PROTEINS  # = 294_533

#: Upper bound on per-workunit input data (program + 2 proteins + params),
#: "no more than 2 Mo" (Section 4.1).
MAX_WORKUNIT_INPUT_BYTES = 2 * 10**6

# --------------------------------------------------------------------------
# Section 4.1 / Table 1 — computing-time matrix on the reference processor
# (dual Opteron 246 @ 2 GHz, Grid'5000)
# --------------------------------------------------------------------------

#: Statistics of the 168 x 168 computing-time matrix Mct, in seconds per
#: starting position (all 21 orientation couples), Table 1.
MCT_MEAN_S = 671.0
MCT_STD_S = 968.04
MCT_MIN_S = 6.0
MCT_MAX_S = 46_347.0
MCT_MEDIAN_S = 384.0

#: "there are 10 proteins which represent 30% of the total processing time"
TOP10_PROTEIN_TIME_SHARE = 0.30

#: Total reference CPU time of phase I, "1,488:237:19:45:54 (y:d:h:m:s)".
TOTAL_REFERENCE_CPU_S = float(parse_ydhms("1,488:237:19:45:54"))

#: The 168^2 calibration run consumed "more than 73 days of cpu time" using
#: 640 processors during one day (Section 4.1).
CALIBRATION_CPU_DAYS = 73.0
CALIBRATION_PROCESSORS = 640
CALIBRATION_WALL_DAYS = 1.0

#: Linearity of ct() in isep/irot was checked over 400 random couples with
#: correlation ~0.99 (Section 4.1).
LINEARITY_CHECK_COUPLES = 400
LINEARITY_MIN_CORRELATION = 0.99

# --------------------------------------------------------------------------
# Section 4.2 / Figure 4 — workunit packaging
# --------------------------------------------------------------------------

#: Nominal target workunit duration ("ideally takes 10 hours", Section 3.2).
TARGET_WU_HOURS_NOMINAL = 10.0

#: Workunit counts of the two packaging examples of Figure 4.
N_WORKUNITS_H10 = 1_364_476
N_WORKUNITS_H4 = 3_599_937

#: The deployed packaging produced workunits between 3 and 4 hours with an
#: average of 3:18:47 on the reference processor (Section 6 / Figure 8).
DEPLOYED_WU_MEAN_S = 3 * 3600 + 18 * 60 + 47
DEPLOYED_WU_RANGE_S = (3 * 3600, 4 * 3600)

# --------------------------------------------------------------------------
# Section 5 — execution on World Community Grid
# --------------------------------------------------------------------------

#: Project start and end (Section 5, Conclusion): Dec 19 2006 -> Jun 11 2007.
PROJECT_DURATION_WEEKS = 26

#: Duration of the low-priority "control period" (~2 months, Section 5.1).
CONTROL_PERIOD_WEEKS = 9

#: Duration of the "project prioritization" ramp (Feb, Section 5.1).
PRIORITIZATION_WEEKS = 4

#: Duration of the "full power working phase" (~4 months; Table 3 uses 16
#: weeks of full-power equivalent for phase I).
FULL_POWER_WEEKS = PROJECT_DURATION_WEEKS - CONTROL_PERIOD_WEEKS - PRIORITIZATION_WEEKS

#: Fraction of WCG devices working for HCMD at the end of February.
PEAK_PROJECT_SHARE = 0.45

#: Average number of virtual full-time processors over the whole project /
#: over the full-power phase (Figure 6a, Table 2).
HCMD_VFTP_WHOLE_PERIOD = 16_450
HCMD_VFTP_FULL_POWER = 26_248

#: Average VFTP available on all of WCG during the project (Section 5.1).
WCG_VFTP_DURING_PROJECT = 54_947

#: Result counts (Section 5.1): disclosed by WCG vs effective (useful).
RESULTS_DISCLOSED = 5_418_010
RESULTS_EFFECTIVE = 3_936_010

#: Redundancy factor = disclosed / effective ~ 1.37 (Section 5.1).
REDUNDANCY_FACTOR = 1.37

#: "only 73% are useful results" (Figure 6b).
USEFUL_RESULT_FRACTION = 0.73

#: Total CPU time consumed on WCG: "8,082:275:17:15:44 (y:d:h:m:s)".
TOTAL_WCG_CPU_S = float(parse_ydhms("8,082:275:17:15:44"))

#: Raw speed-down of the volunteer grid vs the reference processor
#: (Section 6): consumed / estimated = 5.43; 3.96 after removing redundancy.
SPEED_DOWN_RAW = 5.43
SPEED_DOWN_NET = 3.96

#: Average per-result CPU time observed on WCG devices (~13 hours).
WCG_RESULT_MEAN_S = 13 * 3600

#: The UD agent throttles guest work at 60% of CPU by default (Section 6).
UD_CPU_THROTTLE = 0.60

#: Dataset volume (Section 5.2): 123 GB raw text, 45 GB compressed, 168^2
#: result files.
RESULT_DATA_BYTES = 123 * 1024**3
RESULT_DATA_COMPRESSED_BYTES = 45 * 1024**3

#: Progression anchor (Section 5.2): on 2007-05-02, 85% of the proteins were
#: fully docked but that represented only 47% of the total computation.
PROGRESSION_SNAPSHOT_PROTEIN_FRACTION = 0.85
PROGRESSION_SNAPSHOT_WORK_FRACTION = 0.47

# --------------------------------------------------------------------------
# Table 2 — equivalence with a dedicated grid (Grid'5000 Opteron 2 GHz)
# --------------------------------------------------------------------------

DEDICATED_EQUIV_WHOLE_PERIOD = 3_029
DEDICATED_EQUIV_FULL_POWER = 4_833

#: In the week before writing, WCG received 1,435 years of run time =
#: 74,825 VFTP, i.e. >= 18,895 dedicated Opteron equivalents (Section 6).
WCG_WEEK_VFTP = 74_825
WCG_WEEK_DEDICATED_EQUIV = 18_895

# --------------------------------------------------------------------------
# Table 3 / Section 7 — phase II projection
# --------------------------------------------------------------------------

PHASE1_CPU_S = 254_897_774_144.0
PHASE2_CPU_S = 1_444_998_719_637.0
PHASE1_WEEKS = 16
PHASE2_WEEKS = 40
PHASE1_VFTP = 26_341
PHASE2_VFTP = 59_730
PHASE1_MEMBERS = 132_490
PHASE2_MEMBERS = 300_430

#: Phase II: ~4,000 proteins, docking points reduced by a factor of 100.
PHASE2_N_PROTEINS = 4_000
PHASE2_POINT_REDUCTION = 100.0

#: Work ratio phase II / phase I = 4000^2 / (168^2 * 100) (Section 7).
PHASE2_WORK_RATIO = PHASE2_N_PROTEINS**2 / (N_PROTEINS**2 * PHASE2_POINT_REDUCTION)

#: At phase-I behaviour, phase II would take ~90 weeks (Section 7).
PHASE2_WEEKS_AT_PHASE1_RATE = 90

#: WCG membership anchors (Sections 3.1 and 7).
WCG_MEMBERS = 325_000
WCG_MEMBERS_VFTP = 60_000
WCG_DEVICES = 836_000
WCG_MEMBERS_SUBSCRIBED = 344_000

#: When phase II starts, HCMD is expected to get 25% of the grid; reaching
#: 59,730 VFTP then requires ~1,300,000 members (~1,000,000 new volunteers).
PHASE2_GRID_SHARE = 0.25
PHASE2_MEMBERS_NEEDED = 1_300_000

# --------------------------------------------------------------------------
# Figure 1 — WCG virtual full-time processors since launch (Nov 16 2004)
# --------------------------------------------------------------------------

#: Days between WCG launch (2004-11-16) and the HCMD start (2006-12-19).
WCG_LAUNCH_TO_HCMD_DAYS = 763

#: Approximate VFTP at WCG launch and around the time the paper was written
#: (Dec 2007), used to calibrate the growth model of Figure 1.
WCG_VFTP_AT_LAUNCH = 2_000
WCG_VFTP_DEC_2007 = 74_825

#: Weekly dip: fewer processors during week-ends (Figure 1 discussion).
WEEKEND_DIP_FRACTION = 0.08

# --------------------------------------------------------------------------
# Derived sanity anchors
# --------------------------------------------------------------------------

#: Seconds in the phase durations used by Table 3 arithmetic.
PHASE1_SPAN_S = PHASE1_WEEKS * SECONDS_PER_WEEK
PHASE2_SPAN_S = PHASE2_WEEKS * SECONDS_PER_WEEK

#: One VFTP is one CPU-day of work delivered per day of wall clock.
VFTP_UNIT_S = SECONDS_PER_DAY

#: Default seed for the calibrated paper-scale synthetic dataset.
DEFAULT_SEED = 2007
