"""Per-couple result merging and the dataset volume model (Section 5.2).

Workunits slice a couple's starting positions, so a couple's results arrive
in several files; "when the files were checked, we merged result files in
order to have one result file for one couple of proteins.  All these result
files represents 123 Gb of text files (45 Gb compressed) and there are
168^2 files."
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import constants
from ..maxdo.resultfile import (
    BYTES_PER_LINE,
    ResultHeader,
    format_record,
    read_results,
    write_results,
)
from ..proteins.library import ProteinLibrary

__all__ = ["merge_couple_results", "DatasetVolume", "dataset_volume"]


def merge_couple_results(chunk_paths: list[Path | str], out_path: Path | str) -> int:
    """Merge one couple's workunit result files into a single file.

    Chunks must belong to the same couple, tile ``[1..Nsep]`` exactly
    (no gap, no overlap) and pass individual parsing; the merged file is
    sorted by ``(isep, irot, igamma)``.  Returns the merged line count.
    """
    if not chunk_paths:
        raise ValueError("nothing to merge")
    tables = [read_results(p) for p in chunk_paths]
    first = tables[0].header
    for t in tables:
        if (t.header.receptor, t.header.ligand) != (first.receptor, first.ligand):
            raise ValueError(
                f"cannot merge couples {t.header.receptor}-{t.header.ligand} and "
                f"{first.receptor}-{first.ligand}"
            )
    slices = sorted((t.header.isep_start, t.header.nsep) for t in tables)
    cursor = 1
    for start, nsep in slices:
        if start != cursor:
            kind = "overlap" if start < cursor else "gap"
            raise ValueError(f"isep {kind} at {start} (expected {cursor})")
        cursor = start + nsep
    total_nsep = cursor - 1

    records = np.concatenate([t.records for t in tables])
    order = np.lexsort((records["igamma"], records["irot"], records["isep"]))
    records = records[order]
    header = ResultHeader(
        receptor=first.receptor,
        ligand=first.ligand,
        isep_start=1,
        nsep=total_nsep,
        n_couples=first.n_couples,
        n_gamma=first.n_gamma,
    )
    lines = (
        format_record(
            int(r["isep"]),
            int(r["irot"]),
            int(r["igamma"]),
            np.array([r["x"], r["y"], r["z"]]),
            np.array([r["alpha"], r["beta"], r["gamma"]]),
            float(r["e_lj"]),
            float(r["e_elec"]),
        )
        for r in records
    )
    return write_results(out_path, header, lines)


@dataclass(frozen=True)
class DatasetVolume:
    """Projected size of the merged result dataset."""

    n_files: int
    total_lines: int
    raw_bytes: int
    #: text compresses roughly 2.7:1 (paper: 123 GB -> 45 GB)
    compression_ratio: float = 123.0 / 45.0

    @property
    def raw_gib(self) -> float:
        return self.raw_bytes / 1024**3

    @property
    def compressed_bytes(self) -> int:
        return int(self.raw_bytes / self.compression_ratio)

    @property
    def compressed_gib(self) -> float:
        return self.compressed_bytes / 1024**3


def dataset_volume(library: ProteinLibrary) -> DatasetVolume:
    """Volume of the full phase-style dataset for ``library``.

    One merged file per ordered couple; one line per
    (starting position, orientation couple) optimum.
    """
    n = len(library)
    lines = int(library.nsep.sum()) * n * constants.N_ROT_COUPLES
    return DatasetVolume(
        n_files=n * n,
        total_lines=lines,
        raw_bytes=lines * BYTES_PER_LINE,
    )
