"""Per-couple result merging and the dataset volume model (Section 5.2).

Workunits slice a couple's starting positions, so a couple's results arrive
in several files; "when the files were checked, we merged result files in
order to have one result file for one couple of proteins.  All these result
files represents 123 Gb of text files (45 Gb compressed) and there are
168^2 files."

:class:`DatasetVolume` models that dataset in **both** result formats: the
line-oriented text files the paper shipped (118 bytes/line) and the packed
columnar store (:mod:`repro.store`, 56 bytes/row plus per-file framing)
that this reproduction uses as its canonical format.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import constants
from ..maxdo.resultfile import (
    BYTES_PER_LINE,
    ResultHeader,
    read_results,
    write_results,
)
from ..proteins.library import ProteinLibrary

__all__ = ["merge_couple_results", "DatasetVolume", "dataset_volume"]


def merge_couple_results(chunk_paths: list[Path | str], out_path: Path | str) -> int:
    """Merge one couple's workunit result files into a single file.

    Chunks must belong to the same couple, tile ``[1..Nsep]`` exactly
    (no gap, no overlap, no duplicate slice) and pass individual parsing;
    the merged file is sorted by ``(isep, irot, igamma)``.  Tiling errors
    name the offending chunk file.  Returns the merged line count.
    """
    if not chunk_paths:
        raise ValueError("nothing to merge")
    chunk_paths = [Path(p) for p in chunk_paths]
    tables = [read_results(p) for p in chunk_paths]
    first = tables[0].header
    for t, p in zip(tables, chunk_paths):
        if (t.header.receptor, t.header.ligand) != (first.receptor, first.ligand):
            raise ValueError(
                f"cannot merge couples {t.header.receptor}-{t.header.ligand} "
                f"({p.name}) and {first.receptor}-{first.ligand} "
                f"({chunk_paths[0].name})"
            )
    slices = sorted(
        (t.header.isep_start, t.header.nsep, p.name)
        for t, p in zip(tables, chunk_paths)
    )
    cursor = 1
    for start, nsep, name in slices:
        if start != cursor:
            kind = "overlap" if start < cursor else "gap"
            raise ValueError(
                f"isep {kind} at {start} (expected {cursor}) in {name}"
            )
        cursor = start + nsep
    total_nsep = cursor - 1

    records = np.concatenate([t.records for t in tables])
    order = np.lexsort((records["igamma"], records["irot"], records["isep"]))
    records = records[order]
    header = ResultHeader(
        receptor=first.receptor,
        ligand=first.ligand,
        isep_start=1,
        nsep=total_nsep,
        n_couples=first.n_couples,
        n_gamma=first.n_gamma,
    )
    from ..store.convert import render_lines

    return write_results(out_path, header, render_lines(records))


@dataclass(frozen=True)
class DatasetVolume:
    """Projected size of the merged result dataset, in both formats."""

    n_files: int
    total_lines: int
    raw_bytes: int  #: line-oriented text (the paper's 123 GB)
    columnar_bytes: int = 0  #: packed columnar store (repro.store)
    #: text compresses roughly 2.7:1 (paper: 123 GB -> 45 GB)
    compression_ratio: float = 123.0 / 45.0

    @property
    def raw_gib(self) -> float:
        return self.raw_bytes / 1024**3

    @property
    def compressed_bytes(self) -> int:
        return int(self.raw_bytes / self.compression_ratio)

    @property
    def compressed_gib(self) -> float:
        return self.compressed_bytes / 1024**3

    @property
    def columnar_gib(self) -> float:
        return self.columnar_bytes / 1024**3

    @property
    def columnar_ratio(self) -> float:
        """Text bytes per columnar byte (>1 = the store is smaller)."""
        if not self.columnar_bytes:
            return float("nan")
        return self.raw_bytes / self.columnar_bytes


def dataset_volume(library: ProteinLibrary) -> DatasetVolume:
    """Volume of the full phase-style dataset for ``library``.

    One merged file per ordered couple; one line per
    (starting position, orientation couple) optimum.  ``columnar_bytes``
    prices the same rows in the packed store (56 bytes/row + per-segment
    framing) — the store's lazy import keeps this module import-light.
    """
    from ..store.format import ROW_BYTES, SEGMENT_OVERHEAD_BYTES

    n = len(library)
    lines = int(library.nsep.sum()) * n * constants.N_ROT_COUPLES
    n_files = n * n
    return DatasetVolume(
        n_files=n_files,
        total_lines=lines,
        raw_bytes=lines * BYTES_PER_LINE,
        columnar_bytes=lines * ROW_BYTES + n_files * SEGMENT_OVERHEAD_BYTES,
    )
