"""Result processing and verification (Section 5.2).

When a protein had been docked against all 168 others, WCG shipped the
results to a storage server where they were validated with three checks —
correct number of files, correct number of lines per file, values within
valid ranges — then merged into one file per couple (123 GB of text for
phase I).

* :mod:`repro.validation.checks` — the three checks;
* :mod:`repro.validation.merge` — per-couple merging and the dataset
  volume model.
"""

from .checks import CheckReport, ValueRanges, check_batch, check_result_file
from .merge import dataset_volume, merge_couple_results

__all__ = [
    "CheckReport",
    "ValueRanges",
    "check_batch",
    "check_result_file",
    "dataset_volume",
    "merge_couple_results",
]
