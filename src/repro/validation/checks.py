"""The three result-validation checks of Section 5.2.

"Each time we received the results, we validated those results with 3
different checks: check if there are the correct number of files, check if
there are the correct number of lines in the files, check if the values in
the file are within a valid range."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..maxdo.resultfile import ResultTable, expected_line_count, read_results

__all__ = ["ValueRanges", "CheckReport", "check_result_file", "check_batch"]


@dataclass(frozen=True)
class ValueRanges:
    """Valid ranges for the result-file columns.

    The energy bounds are generous on purpose: the check catches corrupted
    uploads and cheating clients (NaN, garbage magnitudes), not unusual
    chemistry.
    """

    max_abs_coordinate: float = 500.0  #: Angstrom
    max_abs_energy: float = 1.0e6  #: kcal/mol
    energy_sum_tolerance: float = 1.0e-3  #: |e_tot - (e_lj + e_elec)|

    def violations(self, table: ResultTable) -> list[str]:
        """Names of the range rules the table violates."""
        rec = table.records
        problems: list[str] = []
        if len(rec) == 0:
            return problems
        coords = np.stack([rec["x"], rec["y"], rec["z"]])
        energies = np.stack([rec["e_lj"], rec["e_elec"], rec["e_tot"]])
        if not np.isfinite(coords).all() or not np.isfinite(energies).all():
            problems.append("non-finite values")
        if np.abs(coords).max(initial=0.0) > self.max_abs_coordinate:
            problems.append("coordinate out of range")
        if np.abs(energies).max(initial=0.0) > self.max_abs_energy:
            problems.append("energy out of range")
        if (rec["isep"] < 1).any() or (rec["irot"] < 1).any() or (
            rec["igamma"] < 1
        ).any():
            problems.append("non-positive indices")
        mismatch = np.abs(rec["e_tot"] - (rec["e_lj"] + rec["e_elec"]))
        if mismatch.max(initial=0.0) > self.energy_sum_tolerance:
            problems.append("energy sum mismatch")
        return problems


@dataclass
class CheckReport:
    """Outcome of validating one file or one receptor batch."""

    files_expected: int
    files_found: int
    files_with_bad_line_count: list[str] = field(default_factory=list)
    files_with_bad_values: dict[str, list[str]] = field(default_factory=dict)
    files_unreadable: dict[str, str] = field(default_factory=dict)

    @property
    def file_count_ok(self) -> bool:
        return self.files_found == self.files_expected

    @property
    def ok(self) -> bool:
        return (
            self.file_count_ok
            and not self.files_with_bad_line_count
            and not self.files_with_bad_values
            and not self.files_unreadable
        )


def check_result_file(
    path: Path | str, ranges: ValueRanges | None = None
) -> CheckReport:
    """Run checks 2 and 3 (line count, value ranges) on one result file."""
    ranges = ranges if ranges is not None else ValueRanges()
    report = CheckReport(files_expected=1, files_found=1)
    path = Path(path)
    try:
        table = read_results(path)
    except (ValueError, OSError) as exc:
        report.files_unreadable[path.name] = str(exc)
        return report
    expected = expected_line_count(table.header.nsep, table.header.n_couples)
    if len(table) != expected:
        report.files_with_bad_line_count.append(path.name)
    problems = ranges.violations(table)
    if problems:
        report.files_with_bad_values[path.name] = problems
    return report


def check_batch(
    paths: list[Path | str],
    files_expected: int,
    ranges: ValueRanges | None = None,
) -> CheckReport:
    """Run all three checks on a receptor batch of result files."""
    ranges = ranges if ranges is not None else ValueRanges()
    report = CheckReport(files_expected=files_expected, files_found=len(paths))
    for p in paths:
        sub = check_result_file(p, ranges)
        report.files_with_bad_line_count.extend(sub.files_with_bad_line_count)
        report.files_with_bad_values.update(sub.files_with_bad_values)
        report.files_unreadable.update(sub.files_unreadable)
    return report
