"""Time and size units used throughout the reproduction.

The paper reports CPU durations in the ``y:d:h:m:s`` format (for example the
phase-I total of ``1,488:237:19:45:54``).  Working back from the figures in
the paper, one "year" in that notation is 365 days; this module adopts the
same convention so that reproduced quantities can be compared digit by digit.

All simulation code keeps durations as plain ``float`` seconds; formatting
only happens at the reporting boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: The paper's ``y:d:h:m:s`` notation uses 365-day years.
SECONDS_PER_YEAR = 365 * SECONDS_PER_DAY


@dataclass(frozen=True)
class YDHMS:
    """A duration decomposed in the paper's ``y:d:h:m:s`` notation."""

    years: int
    days: int
    hours: int
    minutes: int
    seconds: int

    def __str__(self) -> str:
        return (
            f"{self.years:,}:{self.days:03d}:{self.hours:02d}:"
            f"{self.minutes:02d}:{self.seconds:02d}"
        )

    def to_seconds(self) -> int:
        """Recompose the duration into integral seconds."""
        return (
            self.years * SECONDS_PER_YEAR
            + self.days * SECONDS_PER_DAY
            + self.hours * SECONDS_PER_HOUR
            + self.minutes * SECONDS_PER_MINUTE
            + self.seconds
        )


def seconds_to_ydhms(seconds: float) -> YDHMS:
    """Decompose a duration in seconds into the paper's ``y:d:h:m:s`` parts.

    Fractional seconds are truncated, matching the paper's integral report.

    >>> str(seconds_to_ydhms(46_946_115_954))
    '1,488:237:19:45:54'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds!r}")
    total = int(seconds)
    years, rem = divmod(total, SECONDS_PER_YEAR)
    days, rem = divmod(rem, SECONDS_PER_DAY)
    hours, rem = divmod(rem, SECONDS_PER_HOUR)
    minutes, secs = divmod(rem, SECONDS_PER_MINUTE)
    return YDHMS(years, days, hours, minutes, secs)


def parse_ydhms(text: str) -> int:
    """Parse a ``y:d:h:m:s`` string (commas allowed in the year part).

    >>> parse_ydhms("1,488:237:19:45:54")
    46946115954
    """
    parts = text.replace(",", "").split(":")
    if len(parts) != 5:
        raise ValueError(f"expected 5 colon-separated fields, got {text!r}")
    y, d, h, m, s = (int(p) for p in parts)
    for name, value, bound in (
        ("days", d, 365),
        ("hours", h, 24),
        ("minutes", m, 60),
        ("seconds", s, 60),
    ):
        if not 0 <= value < bound:
            raise ValueError(f"{name} field out of range in {text!r}")
    if y < 0:
        raise ValueError(f"years must be non-negative in {text!r}")
    return YDHMS(y, d, h, m, s).to_seconds()


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def weeks(value: float) -> float:
    """Convert weeks to seconds."""
    return value * SECONDS_PER_WEEK


def years(value: float) -> float:
    """Convert (365-day) years to seconds."""
    return value * SECONDS_PER_YEAR


def format_duration(seconds: float) -> str:
    """Human-oriented duration string choosing an adequate unit.

    >>> format_duration(90)
    '1.5 min'
    >>> format_duration(7200)
    '2 h'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < SECONDS_PER_MINUTE:
        return f"{seconds:.3g} s"
    if seconds < SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_MINUTE:.3g} min"
    if seconds < SECONDS_PER_DAY:
        return f"{seconds / SECONDS_PER_HOUR:.3g} h"
    if seconds < SECONDS_PER_YEAR:
        return f"{seconds / SECONDS_PER_DAY:.3g} d"
    return f"{seconds / SECONDS_PER_YEAR:.4g} y"


_SIZE_UNITS = ("B", "KiB", "MiB", "GiB", "TiB", "PiB")


def format_bytes(n_bytes: float) -> str:
    """Binary-unit byte formatting used in dataset volume reports.

    >>> format_bytes(123 * 1024**3)
    '123 GiB'
    """
    if n_bytes < 0:
        raise ValueError("byte count must be non-negative")
    if n_bytes == 0:
        return "0 B"
    exponent = min(int(math.log(n_bytes, 1024)), len(_SIZE_UNITS) - 1)
    value = n_bytes / 1024**exponent
    return f"{value:.4g} {_SIZE_UNITS[exponent]}"
