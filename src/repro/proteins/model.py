"""Reduced protein model.

The MAXDo program of the paper uses the reduced protein representation of
Zacharias (Protein Sci. 2003): a few pseudo-atoms per residue, rigid bodies,
and a simplified interaction energy (Lennard-Jones + electrostatics).  This
module provides a synthetic stand-in at the same level of reduction — one
bead per pseudo-residue with a van der Waals radius, a well depth and a
partial charge — generated deterministically from a seed.

Synthesis places beads as a compact globule: candidate positions are drawn
uniformly in a sphere whose volume matches the residue count at typical
protein packing density, subject to a minimum bead separation (vectorized
dart throwing).  The result is rigid; docking only ever applies rigid-body
transforms to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ReducedProtein", "synthesize_protein", "PACKING_RADIUS_A"]

#: Effective radius (Angstrom) of the sphere occupied by one residue at
#: typical globular packing density (~134 A^3 per residue).
PACKING_RADIUS_A = 3.17

#: Minimum separation between bead centers (Angstrom), about one C-alpha
#: virtual bond length.
MIN_BEAD_SEPARATION_A = 3.8

#: Range of per-bead van der Waals radii (Angstrom) in the reduced model.
BEAD_RADIUS_RANGE_A = (1.9, 3.4)

#: Range of Lennard-Jones well depths (kcal/mol).
BEAD_EPSILON_RANGE = (0.05, 0.35)

#: Fraction of surface beads carrying a net charge, and its magnitude (e).
CHARGED_BEAD_FRACTION = 0.30


@dataclass(frozen=True)
class ReducedProtein:
    """A rigid reduced protein: beads with radii, well depths and charges.

    Coordinates are stored centered on the centroid, in Angstrom.  Instances
    are immutable; docking code applies rigid transforms to *copies* of the
    coordinate array.
    """

    name: str
    coords: np.ndarray  #: (n_beads, 3) float64, centroid at origin
    radii: np.ndarray  #: (n_beads,) van der Waals radii
    epsilons: np.ndarray  #: (n_beads,) LJ well depths
    charges: np.ndarray  #: (n_beads,) partial charges (net ~0)
    _bounding_radius: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {coords.shape}")
        n = coords.shape[0]
        for attr in ("radii", "epsilons", "charges"):
            arr = np.asarray(getattr(self, attr), dtype=np.float64)
            if arr.shape != (n,):
                raise ValueError(f"{attr} must have shape ({n},), got {arr.shape}")
            object.__setattr__(self, attr, arr)
        centered = coords - coords.mean(axis=0)
        object.__setattr__(self, "coords", centered)
        extent = np.linalg.norm(centered, axis=1) + self.radii
        object.__setattr__(self, "_bounding_radius", float(extent.max()))
        # Freeze the arrays so the "rigid body" contract is enforced.
        for attr in ("coords", "radii", "epsilons", "charges"):
            getattr(self, attr).setflags(write=False)

    @property
    def n_beads(self) -> int:
        """Number of pseudo-residue beads."""
        return self.coords.shape[0]

    @property
    def bounding_radius(self) -> float:
        """Radius of the smallest origin-centered sphere containing all
        beads including their van der Waals radii (Angstrom)."""
        return self._bounding_radius

    @property
    def radius_of_gyration(self) -> float:
        """Mass-uniform radius of gyration (Angstrom)."""
        return float(np.sqrt((self.coords**2).sum(axis=1).mean()))

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
        """Return bead coordinates under the rigid transform ``R x + t``.

        ``rotation`` is a (3, 3) matrix, ``translation`` a length-3 vector.
        The protein itself is immutable; this returns a fresh array.
        """
        rotation = np.asarray(rotation, dtype=np.float64)
        translation = np.asarray(translation, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be (3, 3), got {rotation.shape}")
        if translation.shape != (3,):
            raise ValueError(f"translation must be (3,), got {translation.shape}")
        return self.coords @ rotation.T + translation


def _globule_radius(n_residues: int) -> float:
    """Radius of a sphere holding ``n_residues`` at protein packing density."""
    return PACKING_RADIUS_A * n_residues ** (1.0 / 3.0)


def _draw_globule(rng: np.random.Generator, n_residues: int) -> np.ndarray:
    """Dart-throwing placement of ``n_residues`` beads in a compact sphere.

    Candidates are drawn in vectorized batches; a candidate is accepted if it
    keeps :data:`MIN_BEAD_SEPARATION_A` to all accepted beads.  The envelope
    radius is relaxed by 2% whenever a batch yields no acceptance, so the
    loop always terminates.
    """
    radius = _globule_radius(n_residues) + 1.0
    accepted = np.empty((n_residues, 3), dtype=np.float64)
    count = 0
    min_sq = MIN_BEAD_SEPARATION_A**2
    while count < n_residues:
        batch = max(64, 4 * (n_residues - count))
        pts = rng.normal(size=(batch, 3))
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        pts *= radius * rng.random((batch, 1)) ** (1.0 / 3.0)
        progressed = False
        for p in pts:
            if count == n_residues:
                break
            if count:
                d2 = ((accepted[:count] - p) ** 2).sum(axis=1)
                if d2.min() < min_sq:
                    continue
            accepted[count] = p
            count += 1
            progressed = True
        if not progressed:
            radius *= 1.02
    return accepted


def synthesize_protein(
    name: str, n_residues: int, rng: np.random.Generator
) -> ReducedProtein:
    """Synthesize a deterministic reduced protein with ``n_residues`` beads.

    Bead radii and well depths are drawn uniformly from the reduced-model
    ranges.  Partial charges of magnitude ~0.5e (Gaussian) are assigned to a
    random :data:`CHARGED_BEAD_FRACTION` of beads and the whole protein is
    then neutralized (net charge exactly zero), matching the behaviour of a
    folded protein at the level of detail the docking energy needs.
    """
    if n_residues < 4:
        raise ValueError(f"a protein needs at least 4 beads, got {n_residues}")
    coords = _draw_globule(rng, n_residues)
    radii = rng.uniform(*BEAD_RADIUS_RANGE_A, size=n_residues)
    epsilons = rng.uniform(*BEAD_EPSILON_RANGE, size=n_residues)
    charges = np.zeros(n_residues)
    n_charged = max(2, int(round(CHARGED_BEAD_FRACTION * n_residues)))
    idx = rng.choice(n_residues, size=n_charged, replace=False)
    charges[idx] = rng.normal(loc=0.0, scale=0.5, size=n_charged)
    charges -= charges.sum() / n_residues
    return ReducedProtein(
        name=name, coords=coords, radii=radii, epsilons=epsilons, charges=charges
    )
