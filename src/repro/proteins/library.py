"""The calibrated protein set.

Phase I of HCMD targets 168 proteins whose starting-position counts
``Nsep(p)`` were "evaluated by another program for each protein"
(Section 2.1).  The paper gives three population-level facts about them:

* Figure 2 — the ``Nsep`` distribution: most proteins below 3,000 starting
  positions, one above 8,000;
* Section 4.1 — the project can generate at most 49,481,544 workunits,
  i.e. ``sum over ordered couples (p1, p2) of Nsep(p1)`` which pins
  ``sum_p Nsep(p)`` to 294,533;
* the per-couple compute times correlate with protein size (10 proteins
  carry 30% of the time).

This module synthesizes a deterministic library matching those facts.  The
shape of the ``Nsep`` distribution is a stratified lognormal (quantile
sampling, so the shape is exact rather than a lucky draw), scaled so the sum
matches the paper's figure to the unit.  Each protein's residue count is
then chosen so that the *geometric* starting-position model of
:mod:`repro.proteins.surface` reproduces its ``Nsep`` at a single global
spacing — keeping the substrate physically self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np
from scipy.special import ndtri

from .. import constants
from ..rng import stream, substream
from .model import ReducedProtein, synthesize_protein
from .surface import CLEARANCE_A, SHELL_STEP_A, SHELLS_PER_RADIUS_A
from .model import PACKING_RADIUS_A

__all__ = ["ProteinLibrary", "NSEP_LOGNORMAL_SIGMA"]

#: Lognormal shape parameter of the Nsep distribution.  Chosen so that, for
#: 168 stratified quantiles, most proteins fall below 3,000 positions while
#: the largest exceeds 8,000 once scaled to the paper's total (Figure 2).
NSEP_LOGNORMAL_SIGMA = 0.65

#: Residue count around which the shell spacing is normalized (a typical
#: globular protein).
_REFERENCE_RESIDUES = 250

#: Mean bead van der Waals radius, used by the analytic envelope estimate.
_MEAN_BEAD_RADIUS_A = 2.65

_MIN_RESIDUES = 16
_MAX_RESIDUES = 40_000


def _analytic_shell_area(n_residues: float) -> float:
    """Total shell area (A^2) of the analytic envelope for ``n_residues``.

    Mirrors :func:`repro.proteins.surface.shell_radii` but uses the analytic
    globule radius instead of synthesized beads, so the library can be
    calibrated without building coordinates (bead synthesis is lazy).
    """
    radius = PACKING_RADIUS_A * n_residues ** (1.0 / 3.0) + _MEAN_BEAD_RADIUS_A
    base = radius + CLEARANCE_A
    n_shells = max(1, int(round(radius / SHELLS_PER_RADIUS_A)))
    radii = base + SHELL_STEP_A * np.arange(n_shells)
    return float(4.0 * np.pi * (radii**2).sum())


def _invert_residues(target_area: float) -> int:
    """Smallest residue count whose analytic shell area reaches ``target_area``."""
    lo, hi = _MIN_RESIDUES, _MAX_RESIDUES
    if _analytic_shell_area(lo) >= target_area:
        return lo
    if _analytic_shell_area(hi) < target_area:
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _analytic_shell_area(mid) < target_area:
            lo = mid
        else:
            hi = mid
    return hi


def _stratified_lognormal(n: int, sigma: float) -> np.ndarray:
    """Unit-median lognormal quantiles at the ``n`` stratified probabilities."""
    q = (np.arange(n) + 0.5) / n
    return np.exp(sigma * ndtri(q))


@dataclass
class ProteinLibrary:
    """A calibrated set of proteins with authoritative ``Nsep`` values.

    ``nsep`` is the table the rest of the system consumes (packaging,
    estimation, simulation) — exactly as in the paper, where the ``Nsep``
    table is an input produced by a separate program.  Bead-level structures
    are synthesized lazily on first access to :meth:`protein`.
    """

    names: list[str]
    nsep: np.ndarray  #: (n,) int64 starting positions per protein
    residue_counts: np.ndarray  #: (n,) int64 pseudo-residues per protein
    spacing: float  #: global starting-position spacing (Angstrom)
    seed: int
    _cache: dict[int, ReducedProtein] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.nsep = np.asarray(self.nsep, dtype=np.int64)
        self.residue_counts = np.asarray(self.residue_counts, dtype=np.int64)
        n = len(self.names)
        if self.nsep.shape != (n,) or self.residue_counts.shape != (n,):
            raise ValueError("names, nsep and residue_counts must have equal length")
        if (self.nsep < 1).any():
            raise ValueError("every protein needs at least one starting position")

    # -- construction ------------------------------------------------------

    @classmethod
    def phase1(cls, seed: int = constants.DEFAULT_SEED) -> "ProteinLibrary":
        """The full 168-protein phase-I library calibrated to the paper."""
        return cls.synthetic(
            n_proteins=constants.N_PROTEINS,
            sum_nsep=constants.SUM_NSEP,
            seed=seed,
        )

    @classmethod
    def synthetic(
        cls,
        n_proteins: int,
        sum_nsep: int | None = None,
        seed: int = constants.DEFAULT_SEED,
        sigma: float = NSEP_LOGNORMAL_SIGMA,
    ) -> "ProteinLibrary":
        """Build a calibrated library of ``n_proteins`` proteins.

        ``sum_nsep`` defaults to the paper's total scaled by the protein
        count, so reduced-size libraries keep the same per-protein scale.
        """
        if n_proteins < 1:
            raise ValueError(f"need at least one protein, got {n_proteins}")
        if sum_nsep is None:
            sum_nsep = max(
                n_proteins, round(constants.SUM_NSEP * n_proteins / constants.N_PROTEINS)
            )
        if sum_nsep < n_proteins:
            raise ValueError("sum_nsep must allow at least one position per protein")

        shape = _stratified_lognormal(n_proteins, sigma)
        rng = stream(seed, "protein-library")
        shape = shape[rng.permutation(n_proteins)]

        raw = shape * (sum_nsep / shape.sum())
        nsep = np.maximum(1, np.round(raw).astype(np.int64))
        # Largest-remainder style correction so the sum is exact: adjust the
        # biggest proteins, which absorb +-1 without distorting the shape.
        residual = int(sum_nsep - nsep.sum())
        if residual:
            order = np.argsort(nsep)[::-1]
            step = 1 if residual > 0 else -1
            i = 0
            while residual != 0:
                j = order[i % n_proteins]
                if nsep[j] + step >= 1:
                    nsep[j] += step
                    residual -= step
                i += 1

        # Normalize the spacing so a reference-size protein carries the
        # median Nsep, then invert the geometry per protein.
        median_nsep = float(np.median(nsep))
        spacing = float(
            np.sqrt(_analytic_shell_area(_REFERENCE_RESIDUES) / median_nsep)
        )
        target_areas = nsep.astype(np.float64) * spacing**2
        residues = np.array(
            [_invert_residues(a) for a in target_areas], dtype=np.int64
        )

        width = len(str(n_proteins))
        names = [f"P{i + 1:0{width}d}" for i in range(n_proteins)]
        return cls(
            names=names,
            nsep=nsep,
            residue_counts=residues,
            spacing=spacing,
            seed=seed,
        )

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Index of the protein called ``name``."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"no protein named {name!r}") from None

    def protein(self, index: int) -> ReducedProtein:
        """Synthesize (lazily, cached) the bead structure of protein ``index``."""
        if not 0 <= index < len(self):
            raise IndexError(f"protein index {index} out of range 0..{len(self) - 1}")
        cached = self._cache.get(index)
        if cached is None:
            rng = substream(self.seed, "protein-structure", index)
            cached = synthesize_protein(
                self.names[index], int(self.residue_counts[index]), rng
            )
            self._cache[index] = cached
        return cached

    def couples(self) -> Iterator[tuple[int, int]]:
        """All ordered (receptor, ligand) index couples, diagonal included.

        The paper docks all 168 x 168 ordered couples (MAXDo is not
        symmetric and self-docking is part of the cross-docking matrix).
        """
        n = len(self)
        for i in range(n):
            for j in range(n):
                yield (i, j)

    @property
    def n_couples(self) -> int:
        """Number of ordered couples (``n**2``)."""
        return len(self) ** 2

    @property
    def total_max_workunits(self) -> int:
        """Maximum generatable workunits: ``sum over couples of Nsep(p1)``.

        For the phase-1 library this reproduces the paper's 49,481,544.
        """
        return int(self.nsep.sum()) * len(self)

    def size_scale(self) -> np.ndarray:
        """Per-protein size factors (unit mean) used by the cost model.

        Compute time grows with the number of bead pairs, i.e. with the
        product of residue counts; this exposes the per-protein factor.
        """
        sizes = self.residue_counts.astype(np.float64)
        return sizes / sizes.mean()
