"""Starting-position geometry around a receptor.

MAXDo explores protein-protein association from a regular array of ligand
starting positions distributed around the receptor; the number of positions
``Nsep(p1)`` "depends on the receptor and is directly linked with the size
and shape of the protein" (Section 2.1 of the paper) and is "evaluated by
another program for each protein".  This module is that other program for
our synthetic substrate.

Positions are laid out on a small number of concentric shells surrounding
the receptor (larger receptors get more shells), each shell carrying a
quasi-uniform Fibonacci point set whose count is proportional to the shell
area at a given linear ``spacing``.  This gives the super-quadratic growth
of ``Nsep`` with receptor size that the paper's Figure 2 distribution
implies (a 10x spread of protein radii yields a ~50x spread of ``Nsep``).
"""

from __future__ import annotations

import numpy as np

from .model import ReducedProtein

__all__ = [
    "CLEARANCE_A",
    "SHELL_STEP_A",
    "fibonacci_sphere",
    "shell_radii",
    "geometric_nsep",
    "starting_positions",
]

#: Clearance between the receptor envelope and the innermost shell, roughly
#: one ligand radius (Angstrom).
CLEARANCE_A = 4.0

#: Radial distance between consecutive shells (Angstrom).
SHELL_STEP_A = 3.0

#: Shells grow with receptor size: one shell per this many Angstrom of
#: receptor bounding radius, at least one.
SHELLS_PER_RADIUS_A = 6.0


def fibonacci_sphere(n: int) -> np.ndarray:
    """Return ``n`` quasi-uniform unit vectors (golden-angle spiral).

    Deterministic; successive points are ~evenly spaced in area, which is
    what a "regular array of starting positions" needs.
    """
    if n < 1:
        raise ValueError(f"need at least one point, got {n}")
    k = np.arange(n, dtype=np.float64)
    # Offset by 0.5 keeps the poles unoccupied for any n.
    z = 1.0 - 2.0 * (k + 0.5) / n
    theta = np.pi * (1.0 + np.sqrt(5.0)) * k
    r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    return np.column_stack((r * np.cos(theta), r * np.sin(theta), z))


def shell_radii(receptor: ReducedProtein) -> np.ndarray:
    """Radii (Angstrom) of the starting-position shells around ``receptor``.

    The innermost shell sits :data:`CLEARANCE_A` outside the receptor
    envelope; the shell count scales with the receptor size.
    """
    base = receptor.bounding_radius + CLEARANCE_A
    n_shells = max(1, int(round(receptor.bounding_radius / SHELLS_PER_RADIUS_A)))
    return base + SHELL_STEP_A * np.arange(n_shells, dtype=np.float64)


def geometric_nsep(receptor: ReducedProtein, spacing: float) -> int:
    """Number of starting positions implied by the receptor geometry.

    Each shell contributes ``area / spacing**2`` positions (at least one).
    Monotonically non-increasing in ``spacing``, which the library's
    calibration relies on.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    radii = shell_radii(receptor)
    per_shell = np.maximum(1, np.floor(4.0 * np.pi * radii**2 / spacing**2))
    return int(per_shell.sum())


#: Identity-keyed memo for :func:`starting_positions`.  ReducedProtein
#: holds numpy arrays and is not hashable, so entries key on ``id`` and
#: keep a strong reference to the receptor — the stored receptor check
#: below makes an ``id`` collision with a collected object impossible.
_POSITIONS_CACHE: dict[tuple[int, int], tuple[ReducedProtein, np.ndarray]] = {}
_POSITIONS_CACHE_MAX = 32


def starting_positions(receptor: ReducedProtein, n: int) -> np.ndarray:
    """Return exactly ``n`` starting positions around ``receptor``.

    The positions are distributed over the receptor's shells proportionally
    to shell area (largest remainder rounding so the counts sum exactly to
    ``n``), each shell holding a Fibonacci point set scaled to its radius.
    The returned array is (n, 3), ordered shell by shell, innermost first —
    a deterministic, index-stable enumeration so that workunit ``isep``
    ranges always denote the same physical positions.

    Results are memoized per ``(receptor, n)`` and returned as shared
    read-only arrays: ``MaxDoRun.run``/``dock_couple`` regenerate the
    enumeration on every call/resume, and the grid only depends on the
    receptor geometry.
    """
    if n < 1:
        raise ValueError(f"need at least one starting position, got {n}")
    key = (id(receptor), int(n))
    hit = _POSITIONS_CACHE.get(key)
    if hit is not None and hit[0] is receptor:
        return hit[1]
    radii = shell_radii(receptor)
    if n < len(radii):
        radii = radii[:n]
    areas = radii**2
    quotas = n * areas / areas.sum()
    counts = np.floor(quotas).astype(int)
    remainder = n - counts.sum()
    if remainder:
        # Largest fractional parts get the leftover points.
        order = np.argsort(quotas - counts)[::-1]
        counts[order[:remainder]] += 1
    parts = [
        fibonacci_sphere(count) * radius
        for count, radius in zip(counts, radii)
        if count > 0
    ]
    positions = np.concatenate(parts, axis=0)
    positions.setflags(write=False)
    if len(_POSITIONS_CACHE) >= _POSITIONS_CACHE_MAX:
        _POSITIONS_CACHE.pop(next(iter(_POSITIONS_CACHE)))
    _POSITIONS_CACHE[key] = (receptor, positions)
    return positions
