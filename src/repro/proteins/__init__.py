"""Synthetic reduced-protein substrate.

The paper docks 168 real proteins (selected from the Mintseris docking
benchmark) using the Zacharias reduced protein model.  We cannot ship those
structures, so this subpackage synthesizes deterministic *reduced* proteins —
one bead per pseudo-residue, with van der Waals radii and partial charges —
whose population statistics are calibrated to the paper:

* the number of starting positions ``Nsep(p)`` around each protein follows
  the distribution of Figure 2 (most proteins below 3,000, one above 8,000),
* the sum of ``Nsep`` over all ordered couples equals the paper's maximum
  workunit count (49,481,544).

See :mod:`repro.proteins.model` for single-protein synthesis,
:mod:`repro.proteins.surface` for starting-position geometry and
:mod:`repro.proteins.library` for the calibrated 168-protein set.
"""

from .library import ProteinLibrary
from .model import ReducedProtein, synthesize_protein
from .surface import geometric_nsep, shell_radii, starting_positions

__all__ = [
    "ProteinLibrary",
    "ReducedProtein",
    "synthesize_protein",
    "geometric_nsep",
    "shell_radii",
    "starting_positions",
]
