"""Reduced-protein file format.

Workunits ship "the 2 proteins files + program + parameters (no more than
2 Mo)" (Section 4.1).  This module defines the on-disk format of a reduced
protein — a PDB-flavoured fixed-width text file with one ``BEAD`` record
per pseudo-residue — and its parser.  The format is what
:mod:`repro.boinc.files` packs into workunit input bundles.

Example::

    # repro reduced protein v1
    NAME  P001
    NBEAD 194
    BEAD     1   12.34500   -3.21000    7.89000  2.7000  0.2100  -0.50000
    ...
    END

Columns of a BEAD record: index, x, y, z (Angstrom), van der Waals radius,
LJ well depth, partial charge.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .model import ReducedProtein

__all__ = ["write_protein", "read_protein", "protein_file_bytes", "FORMAT_VERSION"]

FORMAT_VERSION = 1

#: Exact byte width of one BEAD record including the newline; the 2 MB
#: workunit budget check uses it.
BEAD_RECORD_BYTES = 67


def _bead_record(index: int, coord: np.ndarray, radius: float,
                 epsilon: float, charge: float) -> str:
    return (
        f"BEAD {index:5d} {coord[0]:10.5f} {coord[1]:10.5f} {coord[2]:10.5f} "
        f"{radius:6.4f} {epsilon:6.4f} {charge:8.5f}"
    )


def write_protein(path: Path | str, protein: ReducedProtein) -> int:
    """Write a reduced protein; returns the file size in bytes."""
    path = Path(path)
    lines = [
        f"# repro reduced protein v{FORMAT_VERSION}",
        f"NAME  {protein.name}",
        f"NBEAD {protein.n_beads}",
    ]
    for k in range(protein.n_beads):
        lines.append(
            _bead_record(
                k + 1,
                protein.coords[k],
                float(protein.radii[k]),
                float(protein.epsilons[k]),
                float(protein.charges[k]),
            )
        )
    lines.append("END")
    text = "\n".join(lines) + "\n"
    path.write_text(text, encoding="ascii")
    return len(text)


def read_protein(path: Path | str) -> ReducedProtein:
    """Parse a reduced-protein file written by :func:`write_protein`.

    Raises ``ValueError`` on malformed files: wrong magic, bead-count
    mismatch, missing END, or unparsable records.
    """
    path = Path(path)
    lines = path.read_text(encoding="ascii").splitlines()
    if not lines or not lines[0].startswith("# repro reduced protein v"):
        raise ValueError(f"{path.name}: not a reduced-protein file")
    version = int(lines[0].rsplit("v", 1)[1])
    if version != FORMAT_VERSION:
        raise ValueError(f"{path.name}: unsupported format version {version}")

    name: str | None = None
    n_beads: int | None = None
    beads: list[tuple[float, ...]] = []
    ended = False
    for line in lines[1:]:
        if not line.strip() or line.startswith("#"):
            continue
        if line.startswith("NAME"):
            name = line.split(maxsplit=1)[1].strip()
        elif line.startswith("NBEAD"):
            n_beads = int(line.split()[1])
        elif line.startswith("BEAD"):
            parts = line.split()
            if len(parts) != 8:
                raise ValueError(f"{path.name}: malformed BEAD record: {line!r}")
            beads.append(tuple(float(p) for p in parts[2:]))
        elif line.strip() == "END":
            ended = True
            break
        else:
            raise ValueError(f"{path.name}: unexpected line: {line!r}")
    if name is None or n_beads is None:
        raise ValueError(f"{path.name}: missing NAME or NBEAD header")
    if not ended:
        raise ValueError(f"{path.name}: truncated file (no END record)")
    if len(beads) != n_beads:
        raise ValueError(
            f"{path.name}: NBEAD says {n_beads} but found {len(beads)} records"
        )
    data = np.asarray(beads, dtype=np.float64)
    return ReducedProtein(
        name=name,
        coords=data[:, 0:3],
        radii=data[:, 3],
        epsilons=data[:, 4],
        charges=data[:, 5],
    )


def protein_file_bytes(n_beads: int) -> int:
    """Projected file size for a protein of ``n_beads`` (budget checks)."""
    header = len("# repro reduced protein v1\n") + len("NAME  PXXXXXX\n") + len(
        "NBEAD 99999\n"
    ) + len("END\n")
    return header + n_beads * BEAD_RECORD_BYTES
