"""Typed campaign configuration.

:class:`VolunteerGridSimulation` historically grew a 16-keyword
constructor — one loose argument per knob, with the relationships between
them (which defaults imply which, what a fault plan changes where)
documented nowhere the type checker could see.  :class:`CampaignConfig`
consolidates the knobs into one frozen dataclass that nests the other
policy objects (:class:`~repro.core.packaging.PackagingPolicy`,
:class:`~repro.boinc.server.ServerConfig`,
:class:`~repro.faults.FaultPlan`)::

    from repro import CampaignConfig, FaultPlan, scaled_phase1

    cfg = CampaignConfig(
        seed=7,
        horizon_weeks=30.0,
        faults=FaultPlan.from_spec("corrupt=0.1,outage=2x12"),
    )
    result = scaled_phase1(scale=300, n_proteins=10, config=cfg).run()

``None`` fields mean "use the calibrated phase-I default" (resolved by
the simulation, not here, so a config stays a pure value object).  The
legacy keyword style still works through a deprecation shim —
``server_config=`` maps to the ``server`` field — and
:func:`~repro.boinc.simulator.scaled_phase1` accepts either style.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from .. import constants
from ..core.packaging import PackagingPolicy
from ..faults import FaultPlan
from .credit import AccountingMode
from .server import ServerConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..grid.host import HostPopulationModel
    from ..grid.population import ShareSchedule, WCGPopulationModel
    from .sharding import ShardPlan

__all__ = ["CampaignConfig"]

#: legacy ``VolunteerGridSimulation`` keyword -> CampaignConfig field
_LEGACY_ALIASES = {"server_config": "server"}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that configures a volunteer-grid campaign, in one value.

    All fields default to the calibrated phase-I behaviour; ``None``
    means "let the simulation pick its default".  Instances are frozen —
    derive variants with :meth:`with_`.
    """

    #: workunit packaging (None = deployed ~3.65 h workunits)
    packaging: PackagingPolicy | None = None
    #: grid-server policy (None = quorum->bounds switch at week 16);
    #: the legacy keyword name ``server_config`` maps here
    server: ServerConfig | None = None
    #: fault-injection plan; the default empty plan injects nothing and
    #: keeps the campaign bit-identical to a fault-free one
    faults: FaultPlan = FaultPlan.none()
    #: volunteer host population (None = calibrated HostPopulationModel)
    host_model: "HostPopulationModel | None" = None
    #: HCMD share-of-grid schedule (None = hcmd_share_schedule())
    share_schedule: "ShareSchedule | None" = None
    #: WCG fleet growth trend (None = WCGPopulationModel.calibrated())
    population: "WCGPopulationModel | None" = None
    #: peak host count (None = auto-sized for a ~26-week campaign)
    n_hosts_peak: int | None = None
    #: simulated horizon, weeks
    horizon_weeks: float = 40.0
    #: campaign shrink factor vs real phase I
    scale: float = 1.0
    #: campaign seed (all substreams derive from it)
    seed: int = constants.DEFAULT_SEED
    #: credit accounting mode (None = phase I's UD wall-clock accounting)
    accounting: AccountingMode | None = None
    #: receptor release order ("least-cost" | "largest-first" | "library")
    release_policy: str = "least-cost"
    #: shard the campaign into K independent server+DES slices merged
    #: afterward (None or ``ShardPlan(n_shards=1)`` = one monolithic run;
    #: see :mod:`repro.boinc.sharding`)
    shards: "ShardPlan | None" = None

    def __post_init__(self) -> None:
        if self.horizon_weeks <= 0:
            raise ValueError("horizon_weeks must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def with_(self, **overrides: Any) -> "CampaignConfig":
        """A copy with fields replaced (legacy aliases accepted)."""
        return replace(self, **self._translate(overrides))

    @staticmethod
    def _translate(kwargs: dict[str, Any]) -> dict[str, Any]:
        """Map legacy constructor keywords onto config field names."""
        return {_LEGACY_ALIASES.get(k, k): v for k, v in kwargs.items()}

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "CampaignConfig":
        """Build a config from legacy-style keyword arguments.

        This is the migration adapter for the retired 16-keyword
        ``VolunteerGridSimulation(**kwargs)`` constructor style; every
        use emits a :class:`DeprecationWarning` (see the migration notes
        in docs/usage.md).  New code constructs :class:`CampaignConfig`
        directly — or starts from :class:`repro.Campaign` /
        :class:`repro.GridConfig`, the campaign-first API.
        """
        warnings.warn(
            "legacy keyword-style configuration is deprecated; construct "
            "a CampaignConfig directly (server_config= becomes the "
            "server= field) — see the migration notes in docs/usage.md",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls(**cls._translate(kwargs))
