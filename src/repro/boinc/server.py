"""Grid server: workunit database, scheduling, deadlines, reissue.

The server owns the campaign's workunits, released receptor batch by
receptor batch in least-cost-first order (Section 5.1).  Per workunit it
tracks issued instances, applies the validation policy on incoming results,
reissues after deadline misses or invalid results, and fires callbacks when
workunits and receptor batches complete.

Observability: pass ``tracer=`` to record the server-channel events
(``server.release`` / ``issue`` / ``reissue`` / ``result`` / ``validate``
/ ``batch_complete`` / ``campaign_complete``) — see docs/observability.md
for the taxonomy and field meanings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Tracer

from ..core.workunit import WorkUnit
from ..grid.des import Event, Simulator
from ..units import days
from .validator import AdaptiveReplication, ValidationPolicy, ValidationStats

__all__ = ["ServerConfig", "Instance", "GridServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Server-side policy knobs."""

    #: instance deadline: unreported copies are reissued after this long
    deadline_s: float = days(10.0)
    #: validation regime switch
    validation: ValidationPolicy = field(
        default_factory=lambda: ValidationPolicy(switch_time=days(7 * 12))
    )
    #: BOINC-style adaptive replication (None = phase-I fixed policy)
    adaptive: AdaptiveReplication | None = None


@dataclass
class Instance:
    """One issued copy of a workunit."""

    wu: WorkUnit
    host_id: int
    issued_at: float
    timeout_event: Event | None = None
    reported: bool = False

    def cancel_timeout(self) -> None:
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None


class _WorkunitState:
    """Server-side bookkeeping for one workunit."""

    __slots__ = ("wu", "batch", "n_valid", "done", "outstanding", "trusted_single")

    def __init__(self, wu: WorkUnit, batch: int) -> None:
        self.wu = wu
        self.batch = batch
        self.n_valid = 0
        self.done = False
        self.outstanding = 0  #: live (unreported, un-timed-out) instances
        #: adaptive replication issued this workunit as a single trusted copy
        self.trusted_single = False


class GridServer:
    """The workunit database and scheduler.

    ``workunits`` must arrive in release order with their receptor-batch
    index; batches complete when every one of their workunits is validated
    (that is when results ship to the storage server in France).
    """

    def __init__(
        self,
        sim: Simulator,
        workunits: list[tuple[WorkUnit, int]],
        config: ServerConfig | None = None,
        on_workunit_valid: Callable[[WorkUnit, float], None] | None = None,
        on_batch_complete: Callable[[int, float], None] | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else ServerConfig()
        self.stats = ValidationStats()
        self.tracer = tracer
        self._on_workunit_valid = on_workunit_valid
        self._on_batch_complete = on_batch_complete

        self._states: list[_WorkunitState] = [
            _WorkunitState(wu, batch) for wu, batch in workunits
        ]
        for pos, state in enumerate(self._states):
            if state.wu.wu_id != pos:
                raise ValueError(
                    "workunit ids must equal their release position "
                    f"(got id {state.wu.wu_id} at position {pos})"
                )
        self._fresh = 0  #: index of the next never-issued workunit
        self._reissue: deque[_WorkunitState] = deque()
        self._batch_remaining: dict[int, int] = {}
        for state in self._states:
            self._batch_remaining[state.batch] = (
                self._batch_remaining.get(state.batch, 0) + 1
            )
        self.completion_time: float | None = None
        self.batch_completion: dict[int, float] = {}

    # -- scheduling --------------------------------------------------------

    @property
    def n_workunits(self) -> int:
        return len(self._states)

    @property
    def n_validated(self) -> int:
        return self.stats.effective

    @property
    def all_done(self) -> bool:
        return self.completion_time is not None

    def request_work(self, host_id: int) -> Instance | None:
        """Hand one workunit instance to a requesting agent.

        Reissues take priority over fresh work (a timed-out workunit blocks
        its receptor batch); fresh workunits go out in release order, with
        the initial replication the validation policy demands — unless
        adaptive replication trusts the requesting host, in which case a
        single copy suffices.
        """
        state = self._next_state(host_id)
        if state is None:
            return None
        instance = Instance(wu=state.wu, host_id=host_id, issued_at=self.sim.now)
        state.outstanding += 1
        # Deadline timers share one fixed delay and are cancelled on report
        # in the vast majority of cases, so they go to the kernel's FIFO
        # timer lane instead of churning the main heap as tombstones.
        instance.timeout_event = self.sim.schedule_timer(
            self.config.deadline_s, self._on_timeout, state, instance
        )
        if self.tracer is not None:
            self.tracer.emit(
                "server.issue", t_sim=self.sim.now,
                wu=state.wu.wu_id, host=host_id, batch=state.batch,
            )
        return instance

    def _next_state(self, host_id: int) -> _WorkunitState | None:
        while self._reissue:
            state = self._reissue[0]
            if state.done:
                self._reissue.popleft()
                continue
            return self._reissue.popleft()
        while self._fresh < len(self._states):
            state = self._states[self._fresh]
            if state.done:
                self._fresh += 1
                continue
            # Initial replication: queue the extra copies for the next
            # requesters, advance past this workunit.
            replication = self.config.validation.replication_at(self.sim.now)
            adaptive = self.config.adaptive
            if (
                replication > 1
                and adaptive is not None
                and not adaptive.needs_partner(host_id)
            ):
                replication = 1
                state.trusted_single = True
            for _ in range(replication - 1):
                self._reissue.append(state)
            self._fresh += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "server.release", t_sim=self.sim.now,
                    wu=state.wu.wu_id, batch=state.batch,
                    replication=replication,
                )
            return state
        return None

    def _on_timeout(self, state: _WorkunitState, instance: Instance) -> None:
        """Deadline passed without a report: reclaim and reissue."""
        if instance.reported:
            return
        instance.timeout_event = None
        state.outstanding -= 1
        if not state.done:
            self._reissue.append(state)
            if self.tracer is not None:
                self.tracer.emit(
                    "server.reissue", t_sim=self.sim.now,
                    wu=state.wu.wu_id, host=instance.host_id, reason="deadline",
                )

    # -- results -----------------------------------------------------------

    def on_result(
        self, instance: Instance, valid: bool, accounted_cpu_s: float
    ) -> None:
        """An agent reports a result (possibly after its deadline)."""
        if instance.reported:
            raise RuntimeError("instance reported twice")
        instance.reported = True
        instance.cancel_timeout()
        state = self._state_of(instance.wu)
        state.outstanding = max(0, state.outstanding - 1)
        self.stats.record_result(accounted_cpu_s)
        if self.tracer is not None:
            self.tracer.emit(
                "server.result", t_sim=self.sim.now,
                wu=state.wu.wu_id, host=instance.host_id, valid=valid,
                late=state.done, accounted_cpu_s=accounted_cpu_s,
            )

        adaptive = self.config.adaptive
        if state.done:
            self.stats.late += 1
            return
        if not valid:
            self.stats.invalid += 1
            if adaptive is not None:
                adaptive.record_invalid(instance.host_id)
            self._reissue.append(state)
            if self.tracer is not None:
                self.tracer.emit(
                    "server.reissue", t_sim=self.sim.now,
                    wu=state.wu.wu_id, host=instance.host_id, reason="invalid",
                )
            return

        if adaptive is not None:
            adaptive.record_valid(instance.host_id)
        quorum = self.config.validation.quorum_at(self.sim.now)
        if state.trusted_single:
            quorum = 1
        state.n_valid += 1
        if state.n_valid >= quorum:
            if state.trusted_single:
                regime = "adaptive"
            else:
                regime = "quorum" if quorum >= 2 else "bounds"
            self.stats.quorum_extra += state.n_valid - 1
            self._validate(state, regime)
        elif state.outstanding == 0:
            # Waiting for a quorum partner nobody is computing: reissue.
            self._reissue.append(state)
            if self.tracer is not None:
                self.tracer.emit(
                    "server.reissue", t_sim=self.sim.now,
                    wu=state.wu.wu_id, host=instance.host_id,
                    reason="quorum-stall",
                )

    def _state_of(self, wu: WorkUnit) -> _WorkunitState:
        state = self._states[wu.wu_id]
        if state.wu.wu_id != wu.wu_id:
            raise KeyError(f"unknown workunit {wu.wu_id}")
        return state

    def _validate(self, state: _WorkunitState, regime: str) -> None:
        state.done = True
        self.stats.record_validation(state.wu.cost_reference_s, regime)
        if self.tracer is not None:
            self.tracer.emit(
                "server.validate", t_sim=self.sim.now,
                wu=state.wu.wu_id, batch=state.batch, regime=regime,
            )
        if self._on_workunit_valid is not None:
            self._on_workunit_valid(state.wu, self.sim.now)
        self._batch_remaining[state.batch] -= 1
        if self._batch_remaining[state.batch] == 0:
            self.batch_completion[state.batch] = self.sim.now
            if self.tracer is not None:
                self.tracer.emit(
                    "server.batch_complete", t_sim=self.sim.now,
                    batch=state.batch,
                )
            if self._on_batch_complete is not None:
                self._on_batch_complete(state.batch, self.sim.now)
        if self.stats.effective == len(self._states):
            self.completion_time = self.sim.now
            if self.tracer is not None:
                self.tracer.emit(
                    "server.campaign_complete", t_sim=self.sim.now,
                    n_workunits=len(self._states),
                )
