"""Grid server: workunit database, scheduling, deadlines, reissue.

The server owns the campaign's workunits, released receptor batch by
receptor batch in least-cost-first order (Section 5.1).  Per workunit it
tracks issued instances, applies the validation policy on incoming results,
reissues after deadline misses or invalid results, and fires callbacks when
workunits and receptor batches complete.

Fault tolerance: outage windows (``ServerConfig.outages``) make the
server refuse ``request_work``/``on_result`` RPCs — agents back off and
retry — and a bounded reissue budget (``ServerConfig.max_reissues``)
turns a workunit that keeps failing into a terminal ``failed`` state so a
degraded campaign completes (with an error budget,
:class:`repro.faults.FaultReport`) instead of hanging.  Sabotaged
(plausible-but-wrong) results pass the value-range check and are only
exposed when a quorum partner disagrees; see :mod:`repro.faults`.

Observability: pass ``tracer=`` to record the server-channel events
(``server.release`` / ``issue`` / ``reissue`` / ``result`` / ``validate``
/ ``refuse`` / ``workunit_failed`` / ``batch_complete`` /
``campaign_complete``) plus ``fault.outage`` boundaries — see
docs/observability.md for the taxonomy and field meanings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Tracer

from ..core.workunit import WorkUnit
from ..faults import ResultQuality, ServerUnavailable
from ..grid.des import Event, Simulator
from ..units import days
from .validator import AdaptiveReplication, ValidationPolicy, ValidationStats

__all__ = ["ServerConfig", "Instance", "GridServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Server-side policy knobs."""

    #: instance deadline: unreported copies are reissued after this long
    deadline_s: float = days(10.0)
    #: validation regime switch
    validation: ValidationPolicy = field(
        default_factory=lambda: ValidationPolicy(switch_time=days(7 * 12))
    )
    #: BOINC-style adaptive replication (None = phase-I fixed policy)
    adaptive: AdaptiveReplication | None = None
    #: reissues allowed per workunit before it is terminally failed
    #: (None = unbounded, the phase-I behaviour)
    max_reissues: int | None = None
    #: outage windows ``(start, end)`` during which every RPC is refused
    #: (normally derived from :meth:`repro.faults.FaultPlan.outage_windows`)
    outages: tuple[tuple[float, float], ...] = ()


@dataclass
class Instance:
    """One issued copy of a workunit."""

    wu: WorkUnit
    host_id: int
    issued_at: float
    #: per-workunit issue ordinal (0 for the first copy ever issued); the
    #: span reconstructor uses it to tell copies of one workunit apart
    copy: int = 0
    timeout_event: Event | None = None
    reported: bool = False
    #: the deadline passed before the report arrived (the copy was already
    #: reclaimed and reissued; a late report must not re-credit it)
    timed_out: bool = False

    def cancel_timeout(self) -> None:
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None


class _WorkunitState:
    """Server-side bookkeeping for one workunit."""

    __slots__ = (
        "wu", "batch", "n_valid", "n_valid_bad", "done", "failed",
        "outstanding", "trusted_single", "reissues", "issues",
    )

    def __init__(self, wu: WorkUnit, batch: int) -> None:
        self.wu = wu
        self.batch = batch
        self.n_valid = 0
        #: plausible-but-wrong (sabotaged) results that passed the checks
        self.n_valid_bad = 0
        self.done = False
        self.failed = False  #: terminally failed (reissue budget exhausted)
        self.outstanding = 0  #: live (unreported, un-timed-out) instances
        #: adaptive replication issued this workunit as a single trusted copy
        self.trusted_single = False
        self.reissues = 0  #: times this workunit re-entered the issue queue
        self.issues = 0  #: copies issued so far (the instance `copy` ordinal)


class GridServer:
    """The workunit database and scheduler.

    ``workunits`` must arrive in release order with their receptor-batch
    index; batches complete when every one of their workunits is validated
    (that is when results ship to the storage server in France).

    ``id_base`` is the global id of the first workunit: a campaign shard
    serves a contiguous id range ``[id_base, id_base + len(workunits))``
    while keeping the campaign-global numbering, so merged traces and
    span trees stay collision-free across shards.
    """

    def __init__(
        self,
        sim: Simulator,
        workunits: list[tuple[WorkUnit, int]],
        config: ServerConfig | None = None,
        on_workunit_valid: Callable[[WorkUnit, float], None] | None = None,
        on_batch_complete: Callable[[int, float], None] | None = None,
        tracer: "Tracer | None" = None,
        id_base: int = 0,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else ServerConfig()
        self.stats = ValidationStats()
        self.tracer = tracer
        self._on_workunit_valid = on_workunit_valid
        self._on_batch_complete = on_batch_complete
        self._id_base = id_base

        self._states: list[_WorkunitState] = [
            _WorkunitState(wu, batch) for wu, batch in workunits
        ]
        for pos, state in enumerate(self._states):
            if state.wu.wu_id != id_base + pos:
                raise ValueError(
                    "workunit ids must equal their release position "
                    f"(got id {state.wu.wu_id} at position {id_base + pos})"
                )
        self._fresh = 0  #: index of the next never-issued workunit
        self._reissue: deque[_WorkunitState] = deque()
        self._batch_remaining: dict[int, int] = {}
        for state in self._states:
            self._batch_remaining[state.batch] = (
                self._batch_remaining.get(state.batch, 0) + 1
            )
        self.completion_time: float | None = None
        self.batch_completion: dict[int, float] = {}

        # Outage windows: boundary callbacks flip the _down flag at the
        # exact window edges (so refusals and the fault.outage trace
        # events carry true boundary times).  No windows -> no events.
        self._down = False
        self._down_until = 0.0
        for start, end in self.config.outages:
            sim.schedule_at(start, self._outage_begin, end)
            sim.schedule_at(end, self._outage_end)

    # -- outages -----------------------------------------------------------

    def _outage_begin(self, until: float) -> None:
        self._down = True
        self._down_until = until
        if self.tracer is not None:
            self.tracer.emit(
                "fault.outage", t_sim=self.sim.now, phase="begin", until=until,
            )

    def _outage_end(self) -> None:
        self._down = False
        if self.tracer is not None:
            self.tracer.emit("fault.outage", t_sim=self.sim.now, phase="end")

    def _refuse(self, op: str, host_id: int) -> None:
        """Refuse an RPC mid-outage: count, trace, raise."""
        self.stats.refused_rpcs += 1
        if self.tracer is not None:
            self.tracer.emit(
                "server.refuse", t_sim=self.sim.now, op=op, host=host_id,
                until=self._down_until,
            )
        raise ServerUnavailable(self._down_until)

    # -- scheduling --------------------------------------------------------

    @property
    def n_workunits(self) -> int:
        return len(self._states)

    @property
    def n_validated(self) -> int:
        return self.stats.effective

    @property
    def all_done(self) -> bool:
        return self.completion_time is not None

    def request_work(self, host_id: int) -> Instance | None:
        """Hand one workunit instance to a requesting agent.

        Reissues take priority over fresh work (a timed-out workunit blocks
        its receptor batch); fresh workunits go out in release order, with
        the initial replication the validation policy demands — unless
        adaptive replication trusts the requesting host, in which case a
        single copy suffices.

        Raises :class:`repro.faults.ServerUnavailable` inside an outage
        window (callers back off and retry; ``None`` still means "up, but
        no work left").
        """
        if self._down:
            self._refuse("request_work", host_id)
        state = self._next_state(host_id)
        if state is None:
            return None
        instance = Instance(
            wu=state.wu, host_id=host_id, issued_at=self.sim.now,
            copy=state.issues,
        )
        state.issues += 1
        state.outstanding += 1
        # Deadline timers share one fixed delay and are cancelled on report
        # in the vast majority of cases, so they go to the kernel's FIFO
        # timer lane instead of churning the main heap as tombstones.
        instance.timeout_event = self.sim.schedule_timer(
            self.config.deadline_s, self._on_timeout, state, instance
        )
        if self.tracer is not None:
            self.tracer.emit(
                "server.issue", t_sim=self.sim.now,
                wu=state.wu.wu_id, host=host_id, batch=state.batch,
                copy=instance.copy,
            )
        return instance

    def _next_state(self, host_id: int) -> _WorkunitState | None:
        while self._reissue:
            state = self._reissue[0]
            if state.done:
                self._reissue.popleft()
                continue
            return self._reissue.popleft()
        while self._fresh < len(self._states):
            state = self._states[self._fresh]
            if state.done:
                self._fresh += 1
                continue
            # Initial replication: queue the extra copies for the next
            # requesters, advance past this workunit.
            replication = self.config.validation.replication_at(self.sim.now)
            adaptive = self.config.adaptive
            if replication > 1 and adaptive is not None:
                if not adaptive.needs_partner(host_id):
                    replication = 1
                    state.trusted_single = True
                elif self.tracer is not None and adaptive.is_trusted(host_id):
                    # A trusted host drew its deterministic spot check:
                    # the quorum partner stays despite the trust streak.
                    self.tracer.emit(
                        "host.spot_check", t_sim=self.sim.now,
                        host=host_id, wu=state.wu.wu_id,
                    )
            for _ in range(replication - 1):
                self._reissue.append(state)
            self._fresh += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "server.release", t_sim=self.sim.now,
                    wu=state.wu.wu_id, batch=state.batch,
                    replication=replication,
                    receptor=state.wu.receptor, ligand=state.wu.ligand,
                )
            return state
        return None

    def _on_timeout(self, state: _WorkunitState, instance: Instance) -> None:
        """Deadline passed without a report: reclaim and reissue."""
        if instance.reported:
            return
        instance.timeout_event = None
        instance.timed_out = True
        state.outstanding -= 1
        if not state.done:
            self._requeue(state, instance.host_id, "deadline")

    def _requeue(self, state: _WorkunitState, host_id: int, reason: str) -> None:
        """Re-enter the issue queue — or terminally fail the workunit once
        its reissue budget (``ServerConfig.max_reissues``) is exhausted."""
        state.reissues += 1
        max_reissues = self.config.max_reissues
        if max_reissues is not None and state.reissues > max_reissues:
            self._fail(state, reason)
            return
        self._reissue.append(state)
        if self.tracer is not None:
            self.tracer.emit(
                "server.reissue", t_sim=self.sim.now,
                wu=state.wu.wu_id, host=host_id, reason=reason,
            )

    def _fail(self, state: _WorkunitState, reason: str) -> None:
        """Terminal failure: close the workunit so the campaign degrades
        gracefully (completes with an error budget) instead of hanging."""
        state.done = True
        state.failed = True
        self.stats.failed += 1
        if self.tracer is not None:
            self.tracer.emit(
                "server.workunit_failed", t_sim=self.sim.now,
                wu=state.wu.wu_id, batch=state.batch,
                reissues=state.reissues, reason=reason,
            )
        self._check_campaign_complete()

    # -- results -----------------------------------------------------------

    def on_result(
        self,
        instance: Instance,
        valid: bool,
        accounted_cpu_s: float,
        quality: "ResultQuality | None" = None,
    ) -> None:
        """An agent reports a result (possibly after its deadline).

        ``quality`` is the fault-injection ground truth: ``None`` derives
        it from ``valid`` (the fault-free path).  ``ERRONEOUS`` results
        fail the range check and are rejected; ``SABOTAGED`` results pass
        it and are only caught when a quorum partner disagrees.

        Raises :class:`repro.faults.ServerUnavailable` inside an outage
        window — nothing is recorded, the agent retries later.
        """
        if self._down:
            self._refuse("on_result", instance.host_id)
        if instance.reported:
            raise RuntimeError("instance reported twice")
        if quality is None:
            quality = ResultQuality.OK if valid else ResultQuality.ERRONEOUS
        valid = quality is not ResultQuality.ERRONEOUS
        instance.reported = True
        instance.cancel_timeout()
        state = self._state_of(instance.wu)
        if not instance.timed_out:
            # A timed-out copy already gave its outstanding slot back when
            # the deadline reclaimed it; decrementing again would wrongly
            # zero the count while a reissued copy is still computing (and
            # trigger a spurious quorum-stall reissue).
            state.outstanding = max(0, state.outstanding - 1)
        self.stats.record_result(accounted_cpu_s)
        if self.tracer is not None:
            self.tracer.emit(
                "server.result", t_sim=self.sim.now,
                wu=state.wu.wu_id, host=instance.host_id, valid=valid,
                late=state.done, accounted_cpu_s=accounted_cpu_s,
                copy=instance.copy,
            )

        adaptive = self.config.adaptive
        if state.done:
            self.stats.late += 1
            return
        if not valid:
            self.stats.invalid += 1
            if adaptive is not None:
                if self.tracer is not None and adaptive.is_trusted(
                    instance.host_id
                ):
                    self.tracer.emit(
                        "host.demoted", t_sim=self.sim.now,
                        host=instance.host_id,
                        streak=adaptive.streak(instance.host_id),
                    )
                adaptive.record_invalid(instance.host_id)
            self._requeue(state, instance.host_id, "invalid")
            return

        # The result *looks* valid to the server (OK, or plausible-but-
        # wrong sabotage that the range check cannot catch).
        if adaptive is not None:
            adaptive.record_valid(instance.host_id)
            if (
                self.tracer is not None
                and adaptive.streak(instance.host_id) == adaptive.trust_after
            ):
                self.tracer.emit(
                    "host.trusted", t_sim=self.sim.now,
                    host=instance.host_id, streak=adaptive.trust_after,
                )
        quorum = self.config.validation.quorum_at(self.sim.now)
        if state.trusted_single:
            quorum = 1
        if quality is ResultQuality.SABOTAGED:
            state.n_valid_bad += 1
        else:
            state.n_valid += 1
        if state.n_valid >= quorum:
            if state.trusted_single:
                regime = "adaptive"
            else:
                regime = "quorum" if quorum >= 2 else "bounds"
            self.stats.quorum_extra += state.n_valid + state.n_valid_bad - 1
            # Sabotaged copies that lost the comparison were caught.
            self.stats.sabotage_caught += state.n_valid_bad
            self._validate(state, regime, host=instance.host_id)
        elif state.n_valid_bad >= quorum:
            # Wrong-but-agreeing results met the quorum (or a single
            # sabotaged result passed the bounds check / adaptive trust):
            # the workunit validates with bad science.  FaultReport
            # surfaces these in the error budget.
            if state.trusted_single:
                regime = "adaptive"
            else:
                regime = "quorum" if quorum >= 2 else "bounds"
            self.stats.quorum_extra += state.n_valid + state.n_valid_bad - 1
            self._validate(state, regime, tainted=True, host=instance.host_id)
        elif state.outstanding == 0:
            # Waiting for a quorum partner nobody is computing: reissue.
            self._requeue(state, instance.host_id, "quorum-stall")

    def _state_of(self, wu: WorkUnit) -> _WorkunitState:
        state = self._states[wu.wu_id - self._id_base]
        if state.wu.wu_id != wu.wu_id:
            raise KeyError(f"unknown workunit {wu.wu_id}")
        return state

    def _validate(
        self,
        state: _WorkunitState,
        regime: str,
        tainted: bool = False,
        host: int | None = None,
    ) -> None:
        state.done = True
        self.stats.record_validation(state.wu.cost_reference_s, regime)
        if tainted:
            self.stats.bad_validated += 1
        if self.tracer is not None:
            # `host` correlates the validation with the reporting host whose
            # result closed the quorum (the span reconstructor's terminal
            # lifecycle edge).
            if tainted:
                self.tracer.emit(
                    "server.validate", t_sim=self.sim.now,
                    wu=state.wu.wu_id, batch=state.batch, regime=regime,
                    tainted=True, host=host,
                )
            else:
                self.tracer.emit(
                    "server.validate", t_sim=self.sim.now,
                    wu=state.wu.wu_id, batch=state.batch, regime=regime,
                    host=host,
                )
        if self._on_workunit_valid is not None:
            self._on_workunit_valid(state.wu, self.sim.now)
        self._batch_remaining[state.batch] -= 1
        if self._batch_remaining[state.batch] == 0:
            self.batch_completion[state.batch] = self.sim.now
            if self.tracer is not None:
                self.tracer.emit(
                    "server.batch_complete", t_sim=self.sim.now,
                    batch=state.batch,
                )
            if self._on_batch_complete is not None:
                self._on_batch_complete(state.batch, self.sim.now)
        self._check_campaign_complete()

    def _check_campaign_complete(self) -> None:
        """Close the campaign once every workunit is validated or failed."""
        if self.stats.effective + self.stats.failed == len(self._states):
            self.completion_time = self.sim.now
            if self.tracer is not None:
                self.tracer.emit(
                    "server.campaign_complete", t_sim=self.sim.now,
                    n_workunits=len(self._states),
                )
