"""Task-server capacity model (Section 3.2).

The ~10 h workunit target "is also constrained by the capacity of the
servers at World Community Grid to distribute the work to volunteers
devices.  It determines the rate of transactions with World Community Grid
servers" — referencing the BOINC team's task-server performance study
(Anderson, Korpela, Walton 2005), which measured a task server dispatching
on the order of 8.8 million results per day on commodity hardware.

This model turns a campaign configuration (active devices, per-result
device time, transactions per result cycle) into a server transaction
rate and the smallest workunit duration the server can sustain — the
quantitative backing for the paper's statement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["ServerCapacityModel"]


@dataclass(frozen=True)
class ServerCapacityModel:
    """Transaction-rate capacity of the workunit server.

    ``max_results_per_day`` follows the BOINC task-server study's
    measured throughput; ``transactions_per_result`` counts the scheduler
    round-trips one result costs (work request, input download
    acknowledgement, output upload, completion report).
    """

    max_results_per_day: float = 8_800_000.0
    transactions_per_result: float = 4.0
    #: headroom factor: operators keep sustained load below capacity
    target_utilization: float = 0.7

    def __post_init__(self) -> None:
        if self.max_results_per_day <= 0:
            raise ValueError("capacity must be positive")
        if self.transactions_per_result <= 0:
            raise ValueError("transactions per result must be positive")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target utilization must be in (0, 1]")

    @property
    def max_transactions_per_day(self) -> float:
        return self.max_results_per_day * self.transactions_per_result

    # -- load --------------------------------------------------------------

    def results_per_day(
        self, n_active_devices: float, device_seconds_per_result: float
    ) -> float:
        """Results the fleet returns per day at steady state."""
        if n_active_devices < 0:
            raise ValueError("device count must be non-negative")
        if device_seconds_per_result <= 0:
            raise ValueError("device time per result must be positive")
        return n_active_devices * SECONDS_PER_DAY / device_seconds_per_result

    def transactions_per_day(
        self, n_active_devices: float, device_seconds_per_result: float
    ) -> float:
        return (
            self.results_per_day(n_active_devices, device_seconds_per_result)
            * self.transactions_per_result
        )

    def utilization(
        self, n_active_devices: float, device_seconds_per_result: float
    ) -> float:
        """Fraction of the server's result throughput the fleet consumes."""
        return (
            self.results_per_day(n_active_devices, device_seconds_per_result)
            / self.max_results_per_day
        )

    def sustainable(
        self, n_active_devices: float, device_seconds_per_result: float
    ) -> bool:
        """Whether the load stays under the operator's headroom target."""
        return (
            self.utilization(n_active_devices, device_seconds_per_result)
            <= self.target_utilization
        )

    # -- sizing --------------------------------------------------------------

    def min_workunit_hours(
        self, n_active_devices: float, net_speed_down: float
    ) -> float:
        """Smallest reference workunit duration the server sustains.

        A workunit of ``h`` reference-hours occupies a device for
        ``h x net_speed_down`` wall-hours; shrinking ``h`` raises the
        transaction rate proportionally.  Inverts the utilization target.
        """
        if n_active_devices <= 0:
            return 0.0
        if net_speed_down <= 0:
            raise ValueError("speed-down must be positive")
        sustainable_results = self.max_results_per_day * self.target_utilization
        device_seconds = n_active_devices * SECONDS_PER_DAY / sustainable_results
        return device_seconds / net_speed_down / SECONDS_PER_HOUR

    def max_devices(
        self, device_seconds_per_result: float
    ) -> float:
        """Largest fleet the server sustains at this per-result time."""
        sustainable_results = self.max_results_per_day * self.target_utilization
        return sustainable_results * device_seconds_per_result / SECONDS_PER_DAY
