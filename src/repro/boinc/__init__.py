"""Volunteer-grid (World Community Grid-like) discrete-event simulator.

The real HCMD phase I ran on hundreds of thousands of volunteer devices;
that scale is out of reach, so this subpackage simulates the grid's
*mechanisms* at reduced scale and reports scale-corrected aggregates:

* :mod:`repro.boinc.server` — workunit database, protein-after-protein
  release, instance deadlines and reissue;
* :mod:`repro.boinc.validator` — redundant computing: quorum comparison
  early, value-range validation later (Section 5.1), redundancy accounting;
* :mod:`repro.boinc.agent` — the volunteer agent state machine: fetch,
  compute under availability/throttle, checkpoint-restart losses, delayed
  reporting, silent abandonment;
* :mod:`repro.boinc.simulator` — campaign orchestration, host arrivals
  following the HCMD share schedule, daily telemetry, and the final
  :class:`repro.core.metrics.CampaignMetrics`.
"""

from .config import CampaignConfig
from .credit import AccountingMode, CobblestoneScale, HostBenchmark, vftp_from_credit
from .server import GridServer, ServerConfig
from .sharding import ShardPlan, ShardSpec
from .simulator import CampaignResult, VolunteerGridSimulation, scaled_phase1
from .validator import ValidationPolicy

__all__ = [
    "AccountingMode",
    "CampaignConfig",
    "CobblestoneScale",
    "HostBenchmark",
    "vftp_from_credit",
    "GridServer",
    "ServerConfig",
    "ShardPlan",
    "ShardSpec",
    "CampaignResult",
    "VolunteerGridSimulation",
    "scaled_phase1",
    "ValidationPolicy",
]
