"""Volunteer-grid campaign orchestration.

Wires the grid server, the volunteer agents and the telemetry together and
runs a (scaled) HCMD-like campaign end to end:

* workunits are materialized in release order (least-cost receptor batches
  first, Section 5.1) from a :class:`repro.core.packaging.WorkUnitPlan`;
* hosts join over time following the HCMD share schedule (control period,
  prioritization ramp, full-power phase) applied to the WCG growth trend;
* daily telemetry records consumed CPU (VFTP series, Figure 6a), result
  arrivals (Figure 6b), per-workunit device run times (Figure 8) and
  receptor-batch completions (Figure 7);
* the final :class:`repro.core.metrics.CampaignMetrics` feeds the Table 2
  equivalence.

Real WCG scale (1.4M workunits, tens of thousands of hosts) is out of
laptop reach; campaigns run at a configurable ``scale`` — the protein set
and per-protein position counts shrink — and report scale-corrected
aggregates next to raw ones.  Scale-independent quantities (redundancy
factor, speed-down, useful-result fraction, completion shape) are the
reproduction targets; the fluid model (:mod:`repro.fluid`) provides the
full-scale absolute numbers.

Observability: :class:`Telemetry` is built on a
:class:`repro.obs.MetricsRegistry` (every daily series/counter/histogram
it keeps is uniformly exportable), and passing ``tracer=`` /
``profiler=`` to :class:`VolunteerGridSimulation` (or
:func:`scaled_phase1`) threads structured event tracing and per-callback
timing through the DES kernel, the server and every agent.  See
docs/observability.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharding import ShardSpec

from .. import constants
from ..faults import FaultPlan, FaultReport
from ..obs import MetricsRegistry, Profiler, Tracer
from ..obs.health import HealthMonitor, HealthSink, NullSink, SLOReport
from ..obs.ledger import FleetReport, HostLedger, LedgerSink
from ..core.campaign import CampaignPlan
from ..core.metrics import CampaignMetrics
from ..core.packaging import PackagingPolicy, WorkUnitPlan
from ..core.workunit import WorkUnit
from ..grid.des import Simulator
from ..grid.host import HostPopulationModel
from ..grid.population import hcmd_share_schedule, WCGPopulationModel
from ..maxdo.cost_model import CostModel
from ..proteins.library import ProteinLibrary
from ..rng import substream
from ..units import SECONDS_PER_DAY, SECONDS_PER_WEEK, weeks
from .agent import VolunteerAgent
from .config import CampaignConfig
from .credit import AccountingMode
from .server import GridServer, ServerConfig
from .validator import ValidationPolicy

__all__ = [
    "Telemetry",
    "CampaignResult",
    "CampaignConfig",
    "VolunteerGridSimulation",
    "scaled_phase1",
]


#: Device run-time histogram bucket bounds, in hours (the Figure 8 axis:
#: the paper's mean is ~13 h for ~3.3 h reference workunits).
RUN_HOURS_BUCKETS = (1.0, 2.0, 4.0, 8.0, 13.0, 24.0, 48.0, 96.0)


class Telemetry:
    """Daily-bucketed campaign telemetry, kept in a metrics registry.

    Public accessors (``daily_cpu_s``, ``weekly_vftp`` ...) are unchanged
    from the original hand-rolled class, but the underlying storage is a
    :class:`repro.obs.MetricsRegistry` of daily series / counters /
    histograms, so every recorded quantity exports uniformly through
    ``registry.as_dict()`` (and rides along in ``metrics.json``).

    Out-of-horizon samples are clamped to the edge day *and* counted in
    the ``telemetry.clamped_samples`` counter; with a tracer attached each
    clamp additionally emits a ``telemetry.clamp`` warning event, so the
    information loss is observable instead of silent.
    """

    def __init__(
        self,
        horizon_s: float,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.horizon_s = horizon_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        n_days = int(np.ceil(horizon_s / SECONDS_PER_DAY)) + 1
        reg = self.registry
        self._cpu = reg.daily_series(
            "campaign.daily_cpu_s", n_days,
            help="accounted volunteer CPU seconds per day (VFTP series)",
        )
        self._results = reg.daily_series(
            "campaign.daily_results", n_days, dtype=np.int64,
            help="results disclosed per day",
        )
        self._useful = reg.daily_series(
            "campaign.daily_useful", n_days, dtype=np.int64,
            help="workunits validated per day",
        )
        self._credit = reg.counter(
            "campaign.claimed_credit_points", help="total claimed credit points"
        )
        self._shipped = reg.counter(
            "campaign.shipped_bytes",
            help="result bytes shipped to the storage server",
        )
        self._clamped = reg.counter(
            "telemetry.clamped_samples",
            help="samples clamped to the horizon edge (see telemetry.clamp)",
        )
        self._run_hours = reg.histogram(
            "campaign.run_active_hours", RUN_HOURS_BUCKETS,
            help="per-result device-side active run time (hours, Figure 8)",
        )
        self._last_day = n_days - 1
        self.run_active_s: list[float] = []
        self.run_reference_s: list[float] = []
        #: (time, bytes) per receptor batch shipped to the storage server
        self.shipments: list[tuple[float, int]] = []

    # -- registry-backed views (the original public attributes) -----------

    @property
    def daily_cpu_s(self) -> np.ndarray:
        return self._cpu.values

    @property
    def daily_results(self) -> np.ndarray:
        return self._results.values

    @property
    def daily_useful(self) -> np.ndarray:
        return self._useful.values

    @property
    def total_claimed_credit(self) -> float:
        return self._credit.value

    @property
    def clamped_samples(self) -> int:
        """Samples that fell outside the horizon and were edge-clamped."""
        return int(self._clamped.value)

    # -- recording ---------------------------------------------------------

    def _day(self, t: float) -> int:
        """The day bucket of ``t``, clamped to the horizon — loudly.

        A sample outside ``[0, horizon]`` still lands in the edge bucket
        (the series stays well-formed) but is counted and, when tracing,
        reported as a ``telemetry.clamp`` event instead of being silently
        folded in.
        """
        day = int(t / SECONDS_PER_DAY)
        last = self._last_day
        if 0 <= day <= last:
            return day
        self._clamped.inc()
        if self.tracer is not None:
            self.tracer.emit(
                "telemetry.clamp", t_sim=t, day=day,
                horizon_days=last,
            )
        return min(max(day, 0), last)

    def record_result(self, t: float, accounted_cpu_s: float) -> None:
        day = self._day(t)
        self._results.add(day)
        self._cpu.add(day, accounted_cpu_s)

    def record_validation(self, t: float) -> None:
        self._useful.add(self._day(t))

    def record_credit(self, points: float) -> None:
        self._credit.inc(points)

    def record_fault(self, kind: str) -> None:
        """Count one injected fault / recovery action.

        The ``fault.<kind>`` counter is created lazily on first use, so a
        fault-free campaign's registry export stays byte-identical — no
        zero-valued fault counters appear out of nowhere.
        """
        self.registry.counter(
            f"fault.{kind}",
            help=f"injected faults / recovery actions: {kind}",
        ).inc()

    def record_shipment(self, t: float, n_bytes: int) -> None:
        """A completed receptor batch shipped to the storage server."""
        self.shipments.append((t, n_bytes))
        self._shipped.inc(n_bytes)

    def record_workunit_run(
        self, t: float, active_s: float, reference_s: float
    ) -> None:
        self.run_active_s.append(active_s)
        self.run_reference_s.append(reference_s)
        self._run_hours.observe(active_s / 3600.0)

    def weekly_vftp(self) -> np.ndarray:
        """Average VFTP per project week (the Figure 6a series)."""
        n_weeks = len(self.daily_cpu_s) // 7
        daily_vftp = self.daily_cpu_s[: n_weeks * 7] / SECONDS_PER_DAY
        return daily_vftp.reshape(n_weeks, 7).mean(axis=1)

    def weekly_results(self) -> tuple[np.ndarray, np.ndarray]:
        """Results per week: (all disclosed, useful) — Figure 6b."""
        n_weeks = len(self.daily_results) // 7
        disclosed = self.daily_results[: n_weeks * 7].reshape(n_weeks, 7).sum(axis=1)
        useful = self.daily_useful[: n_weeks * 7].reshape(n_weeks, 7).sum(axis=1)
        return disclosed, useful


@dataclass
class CampaignResult:
    """Everything a finished (or horizon-capped) campaign produced."""

    telemetry: Telemetry
    server: GridServer
    completion_time: float | None
    horizon_s: float
    scale: float
    n_hosts: int
    #: receptor library indices in release order
    release_order: np.ndarray
    #: completion time of each receptor batch (by release position), NaN if
    #: incomplete
    batch_completion_s: np.ndarray
    #: the fault plan the campaign ran under (empty = fault-free)
    faults: FaultPlan = FaultPlan.none()
    #: the final SLO report when a health monitor rode the campaign
    #: (``health=True``), else None
    health: SLOReport | None = None
    #: the final per-host fleet report when a host ledger rode the
    #: campaign (``ledger=True``), else None
    ledger: FleetReport | None = None
    #: per-shard wall-clock seconds when the campaign ran sharded
    #: (:mod:`repro.boinc.sharding`), else None
    shard_walls: list[float] | None = None

    @property
    def span_s(self) -> float:
        """Campaign span: completion if reached, else the horizon."""
        return self.completion_time if self.completion_time is not None else self.horizon_s

    @property
    def completion_weeks(self) -> float | None:
        if self.completion_time is None:
            return None
        return self.completion_time / SECONDS_PER_WEEK

    def metrics(self) -> CampaignMetrics:
        stats = self.server.stats
        return CampaignMetrics(
            span_seconds=self.span_s,
            consumed_cpu_s=stats.consumed_cpu_s,
            useful_reference_cpu_s=stats.useful_reference_s,
            results_disclosed=stats.disclosed,
            results_effective=stats.effective,
        )

    def fault_report(self) -> FaultReport:
        """The campaign-level error budget (what was injected, what the
        defences caught, what slipped through, what failed terminally)."""
        return FaultReport.collect(
            self.faults,
            self.server.stats,
            self.telemetry.registry,
            total_workunits=self.server.n_workunits,
        )

    def mean_device_run_hours(self) -> float:
        """Average device-side run time per result (paper: ~13 h)."""
        runs = np.asarray(self.telemetry.run_active_s)
        if runs.size == 0:
            raise ValueError("no workunit completed")
        return float(runs.mean()) / 3600.0

    def vftp_from_credit(self) -> float:
        """The Section 8 points-based VFTP estimate for this campaign."""
        from .credit import vftp_from_credit

        return vftp_from_credit(self.telemetry.total_claimed_credit, self.span_s)

    def vftp_from_useful_work(self) -> float:
        """Ground truth: reference work delivered per wall-clock second —
        what the points estimator is supposed to approximate."""
        return self.server.stats.useful_reference_s / self.span_s

    def shipped_bytes_total(self) -> int:
        """Result volume shipped to the storage server so far (§5.2)."""
        return sum(b for _, b in self.telemetry.shipments)

    def shipment_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(times_s, cumulative_bytes) of the storage-server deliveries."""
        if not self.telemetry.shipments:
            return np.empty(0), np.empty(0, dtype=np.int64)
        ordered = sorted(self.telemetry.shipments)
        times = np.array([t for t, _ in ordered])
        sizes = np.cumsum([b for _, b in ordered])
        return times, sizes

    def export(self, directory, profiler: Profiler | None = None) -> list:
        """Dump the campaign telemetry as CSV/JSON artifacts.

        Writes daily series, weekly aggregates, the per-result run times
        and the final metrics into ``directory``; returns the paths.
        Passing the campaign's :class:`~repro.obs.Profiler` additionally
        writes its machine-readable dump as ``profile.json``.
        """
        from pathlib import Path

        from ..analysis.export import export_json, export_series_csv

        directory = Path(directory)
        t = self.telemetry
        n_days = len(t.daily_cpu_s)
        paths = [
            export_series_csv(
                directory / "daily.csv",
                {
                    "day": np.arange(n_days),
                    "cpu_seconds": t.daily_cpu_s,
                    "results": t.daily_results,
                    "useful": t.daily_useful,
                },
            ),
            export_series_csv(
                directory / "workunit_runs.csv",
                {
                    "active_seconds": np.asarray(t.run_active_s),
                    "reference_seconds": np.asarray(t.run_reference_s),
                },
            ),
        ]
        m = self.metrics()
        payload = {
            "completion_weeks": self.completion_weeks,
            "n_hosts": self.n_hosts,
            "scale": self.scale,
            "vftp": m.vftp,
            "redundancy": m.redundancy,
            "useful_result_fraction": m.useful_result_fraction,
            "speed_down_raw": m.speed_down_raw,
            "speed_down_net": m.speed_down_net,
            "shipped_bytes": self.shipped_bytes_total(),
            # every registry metric (daily series, counters,
            # histograms) rides along, self-describing
            "registry": t.registry.as_dict(),
        }
        if self.faults.enabled:
            # Fault-free exports stay byte-identical: the error budget
            # only appears when a plan was active.
            payload["faults"] = self.fault_report().as_dict()
        if self.health is not None:
            # Same contract: the SLO report appears only when a monitor
            # rode the campaign.
            payload["health"] = self.health.as_dict()
        if self.ledger is not None:
            # And the fleet forensics only when a host ledger rode it.
            payload["ledger"] = self.ledger.as_dict()
        paths.append(
            export_json(
                directory / "metrics.json",
                payload,
                experiment="scaled phase-I campaign",
            )
        )
        if profiler is not None:
            paths.append(
                export_json(
                    directory / "profile.json",
                    profiler.to_dict(),
                    experiment="scaled phase-I campaign",
                )
            )
        return paths


class VolunteerGridSimulation:
    """A configurable volunteer-grid campaign.

    The preferred construction is a :class:`CampaignConfig`::

        sim = VolunteerGridSimulation(library, cost_model, CampaignConfig(
            seed=7, faults=FaultPlan.from_spec("corrupt=0.1"),
        ))

    (or equivalently :meth:`from_config`).  The historical 16-keyword
    style — ``VolunteerGridSimulation(library, cost_model, packaging=...,
    server_config=..., seed=...)`` — is retired: the keywords are folded
    into a config by :meth:`CampaignConfig.from_kwargs`, which emits the
    :class:`DeprecationWarning` (``server_config`` maps to the ``server``
    field; migration notes in docs/usage.md).
    """

    def __init__(
        self,
        library: ProteinLibrary,
        cost_model: CostModel,
        config: CampaignConfig | None = None,
        *,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        health: "bool | HealthMonitor | None" = None,
        ledger: "bool | HostLedger | None" = None,
        shard: "ShardSpec | None" = None,
        **legacy,
    ) -> None:
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either a CampaignConfig or legacy keyword arguments, "
                    "not both: " + ", ".join(sorted(legacy))
                )
            # from_kwargs owns the DeprecationWarning (one warning per
            # legacy entry point, pointing at the CampaignConfig field
            # mapping and the docs/usage.md migration notes).
            config = CampaignConfig.from_kwargs(**legacy)
        if config is None:
            config = CampaignConfig()
        #: the resolved campaign configuration (frozen)
        self.config = config
        self.library = library
        self.cost_model = cost_model
        #: structured event tracing for the DES/server/agents (opt-in)
        self.tracer = tracer
        #: per-callback and per-phase wall-time aggregation (opt-in)
        self.profiler = profiler
        #: streaming SLO/health monitor riding the trace stream (opt-in;
        #: ``health=True`` builds one with default thresholds)
        if health is True:
            health = HealthMonitor()
        self.health = health if isinstance(health, HealthMonitor) else None
        #: streaming per-host behavioral ledger riding the trace stream
        #: (opt-in; ``ledger=True`` builds one with default thresholds)
        if ledger is True:
            ledger = HostLedger()
        self.ledger = ledger if isinstance(ledger, HostLedger) else None
        #: when set, this simulation runs one shard of a larger campaign:
        #: a contiguous release-order slice with campaign-global workunit
        #: and host numbering (see :mod:`repro.boinc.sharding`)
        self.shard = shard
        if (
            shard is not None
            and config.shards is not None
            and config.shards.n_shards > 1
        ):
            raise ValueError(
                "a shard simulation must carry a config without a "
                "multi-shard plan (run_sharded strips it)"
            )
        self.packaging = (
            config.packaging
            if config.packaging is not None
            else PackagingPolicy(target_hours=3.65)
        )
        self.horizon_s = weeks(config.horizon_weeks)
        self.scale = config.scale
        self.seed = config.seed
        #: the fault-injection plan (empty = fault-free campaign)
        self.faults = config.faults
        self.share_schedule = (
            config.share_schedule
            if config.share_schedule is not None
            else hcmd_share_schedule()
        )
        self.population = (
            config.population
            if config.population is not None
            else WCGPopulationModel.calibrated()
        )
        self.host_model = (
            config.host_model
            if config.host_model is not None
            else HostPopulationModel(seed=self.seed, horizon=self.horizon_s)
        )
        server_config = (
            config.server
            if config.server is not None
            else ServerConfig(
                # The value-range validation method replaced quorum
                # comparison mid-campaign; week 16 reproduces the overall
                # 1.37 redundancy factor for a 26-week campaign.
                validation=ValidationPolicy(switch_time=weeks(16.0))
            )
        )
        if self.faults.enabled:
            overrides = {}
            if self.faults.max_reissues is not None:
                overrides["max_reissues"] = self.faults.max_reissues
            if self.faults.outages is not None:
                overrides["outages"] = self.faults.outage_windows(
                    self.seed, self.horizon_s
                )
            if overrides:
                server_config = replace(server_config, **overrides)
        self.server_config = server_config

        #: phase I ran on the UD agent (wall-clock accounting); pass
        #: ``AccountingMode.BOINC_CPU_TIME`` for a phase-II-style campaign.
        self.accounting = (
            config.accounting
            if config.accounting is not None
            else AccountingMode.UD_WALL_CLOCK
        )
        self.plan = WorkUnitPlan(cost_model, self.packaging)
        self.campaign = CampaignPlan(library, cost_model, policy=config.release_policy)
        if self.shard is not None:
            # The shard planner already prorated the campaign fleet.
            n_hosts_peak = self.shard.n_hosts_peak
        else:
            n_hosts_peak = config.n_hosts_peak
            if n_hosts_peak is None:
                n_hosts_peak = self._auto_host_count()
        self.n_hosts_peak = n_hosts_peak

    @classmethod
    def from_config(
        cls,
        library: ProteinLibrary,
        cost_model: CostModel,
        config: CampaignConfig,
        *,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        health: "bool | HealthMonitor | None" = None,
        ledger: "bool | HostLedger | None" = None,
    ) -> "VolunteerGridSimulation":
        """Build a simulation from a :class:`CampaignConfig` (no shim)."""
        return cls(
            library, cost_model, config,
            tracer=tracer, profiler=profiler, health=health, ledger=ledger,
        )

    # -- sizing ------------------------------------------------------------

    def _auto_host_count(self) -> int:
        """Peak host count so the campaign finishes in ~26 weeks.

        Weekly useful capacity of one peak-share host ~ (availability x
        week-seconds) / net-speed-down; the share schedule scales the host
        count per week.
        """
        profile = self.host_model.profile
        availability = profile.mean_on_hours / (
            profile.mean_on_hours + profile.mean_off_hours
        )
        net_speed_down = profile.expected_net_speed_down(n=20_000)
        weekly_capacity = availability * SECONDS_PER_WEEK / net_speed_down
        shares = np.asarray(
            self.share_schedule.share(np.arange(constants.PROJECT_DURATION_WEEKS) + 0.5)
        )
        share_weeks = float(shares.sum() / self.share_schedule.full_share)
        # Margin over the bare work: quorum/invalid redundancy (~1.3x),
        # checkpoint-kill losses, report/poll dead time, and the straggler
        # tail of the last batches (deadline-bound reissues).
        total = self.campaign.total_work * 2.4
        return max(4, int(np.ceil(total / (weekly_capacity * share_weeks))))

    def _host_arrival_times(self) -> np.ndarray:
        """Join times implementing share(t) x growth(t) host counts."""
        n_weeks = int(np.ceil(self.horizon_s / SECONDS_PER_WEEK))
        week_idx = np.arange(n_weeks, dtype=np.float64)
        shares = np.asarray(self.share_schedule.share(week_idx + 0.5))
        day0 = constants.WCG_LAUNCH_TO_HCMD_DAYS
        growth = np.asarray(
            self.population.trend(day0 + 7.0 * (week_idx + 0.5))
        )
        project_end_week = float(constants.PROJECT_DURATION_WEEKS)
        ref = self.share_schedule.full_share * float(
            self.population.trend(day0 + 7.0 * project_end_week)
        )
        target = np.maximum(
            1, np.round(self.n_hosts_peak * shares * growth / ref).astype(np.int64)
        )
        target = np.maximum.accumulate(target)  # hosts never leave
        arrivals: list[float] = []
        current = 0
        # Shard k draws its fleet from its own substream, so shards of
        # one campaign never share or correlate their arrival processes
        # (shard None / index 0 keeps today's monolithic stream).
        shard_index = self.shard.index if self.shard is not None else 0
        rng = substream(self.seed, "host-arrivals", shard_index)
        for w in range(n_weeks):
            new = int(target[w] - current)
            if new > 0:
                times = w * SECONDS_PER_WEEK + rng.random(new) * SECONDS_PER_WEEK
                arrivals.extend(float(t) for t in np.sort(times))
                current = int(target[w])
        return np.asarray(arrivals)

    # -- campaign materialization -------------------------------------------

    def materialize_workunits(self) -> list[tuple[WorkUnit, int]]:
        """The campaign's ``(workunit, batch)`` list in release order.

        A shard materializes only its own release-order slice; workunit ids
        and batch indices stay campaign-global so merged traces, spans and
        batch telemetry are collision-free.  The list is deterministic for a
        given library/cost-model/config, which is what lets a wire-driven
        load generator rebuild the exact same workunits independently of
        the scheduler service (see :mod:`repro.service`).
        """
        shard = self.shard
        batch_lo = shard.batch_lo if shard is not None else 0
        wu_id_base = shard.wu_id_base if shard is not None else 0
        ordered_couples = self.campaign.ordered_couples(
            batch_lo, shard.batch_hi if shard is not None else None
        )
        n = len(self.library)
        pos_base = batch_lo * n
        workunits: list[tuple[WorkUnit, int]] = []
        wu_id = wu_id_base
        for pos, couple in enumerate(ordered_couples, start=pos_base):
            batch = pos // n
            for wu in self.plan.iter_workunits([couple], id_start=wu_id):
                workunits.append((wu, batch))
                wu_id += 1
        return workunits

    @property
    def wu_id_base(self) -> int:
        """First workunit id of this (shard of the) campaign."""
        return self.shard.wu_id_base if self.shard is not None else 0

    def batch_result_bytes(self, result_format: str = "text") -> list[int]:
        """Result bytes shipped per receptor batch, by release position.

        Result volume ships when a receptor batch completes ("when one
        protein has been docked with the 168 others", Section 5.2): one
        line per (position, orientation couple) against every ligand.

        ``result_format`` prices the shipment in either representation:
        ``"text"`` (the paper's line-oriented files, 118 bytes/line — the
        default, and what the shipment telemetry models) or ``"columnar"``
        (the packed store of :mod:`repro.store`: 56 bytes/row plus one
        segment frame per couple file in the batch).
        """
        from ..maxdo.resultfile import BYTES_PER_LINE
        from ..store.format import ROW_BYTES, SEGMENT_OVERHEAD_BYTES

        if result_format not in ("text", "columnar"):
            raise ValueError(
                f"result_format must be 'text' or 'columnar', "
                f"got {result_format!r}"
            )
        n = len(self.library)
        if result_format == "text":
            per_row, per_batch = BYTES_PER_LINE, 0
        else:
            per_row, per_batch = ROW_BYTES, n * SEGMENT_OVERHEAD_BYTES
        return [
            int(self.library.nsep[int(r)]) * n * constants.N_ROT_COUPLES
            * per_row + per_batch
            for r in self.campaign.release_order
        ]

    # -- execution ----------------------------------------------------------

    def run(self, server_factory: Callable[..., GridServer] | None = None) -> CampaignResult:
        """Run the campaign to completion (or the horizon).

        With a :class:`~repro.boinc.sharding.ShardPlan` of more than one
        shard in the config, execution is delegated to
        :func:`repro.boinc.sharding.run_sharded` (K independent shard
        simulations, merged losslessly); a plan of one shard — or none —
        runs the monolithic path below, bit-identical either way.

        ``server_factory`` swaps the in-process :class:`GridServer` for a
        stand-in with the same agent-facing surface — the wire-driven
        load-generator mode (:mod:`repro.service.loadgen`) injects a
        socket-backed proxy here.  The factory is called with the same
        keyword arguments as the ``GridServer`` constructor and may ignore
        the ones it does not need.
        """
        shards = self.config.shards
        if shards is not None and shards.n_shards > 1:
            if server_factory is not None:
                raise ValueError(
                    "server_factory is incompatible with a multi-shard plan; "
                    "run the load generator against a single-shard campaign"
                )
            from .sharding import run_sharded

            return run_sharded(self)
        if server_factory is not None and self.health is not None:
            raise ValueError(
                "health monitoring needs the in-process server's event "
                "stream; run the wire-driven campaign without health="
            )
        if server_factory is not None and self.ledger is not None:
            raise ValueError(
                "the host ledger needs the in-process server's event "
                "stream; run the wire-driven campaign without ledger= "
                "(the scheduler service keeps its own, see GET /v1/hosts)"
            )
        tracer = self.tracer
        restore_sink = None
        if self.health is not None or self.ledger is not None:
            # Tee the trace stream into the observers.  Without a
            # user-supplied tracer, build an observer-only one: events
            # feed the monitor/ledger and are then discarded (NullSink),
            # restricted to the lifecycle channels so the DES kernel's
            # high-rate events skip the emit path entirely.  With a
            # user tracer, the tee inherits its channel filter — a
            # filter that drops "host" starves the ledger of credit and
            # trust events (documented in repro.obs.ledger).
            if tracer is None:
                channels = ["server", "agent", "fault"]
                if self.health is not None:
                    channels.append("health")
                if self.ledger is not None:
                    channels.append("host")
                sink = NullSink()
                if self.ledger is not None:
                    sink = LedgerSink(self.ledger, sink)
                if self.health is not None:
                    sink = HealthSink(self.health, sink)
                tracer = Tracer(sink=sink, channels=tuple(channels))
            else:
                restore_sink = tracer.sink
                sink = restore_sink
                if self.ledger is not None:
                    sink = LedgerSink(self.ledger, sink)
                if self.health is not None:
                    sink = HealthSink(self.health, sink)
                tracer.sink = sink
            if self.health is not None:
                self.health.bind(tracer)
        # The kernel's vectorized fast path is only disabled by *its own*
        # instrumentation: a tracer whose channel filter excludes ``des``
        # would drop every kernel event anyway (they are all ``des.*``),
        # so hand the kernel None and keep the fast path.
        sim_tracer = tracer
        if (
            tracer is not None
            and tracer.channels is not None
            and "des" not in tracer.channels
        ):
            sim_tracer = None
        sim = Simulator(tracer=sim_tracer, profiler=self.profiler)
        telemetry = Telemetry(self.horizon_s, tracer=tracer)
        profiler = self.profiler if self.profiler is not None else Profiler()

        with profiler.timed("setup.workunits"):
            workunits = self.materialize_workunits()

        batch_bytes = self.batch_result_bytes()

        make_server = server_factory if server_factory is not None else GridServer
        server = make_server(
            sim=sim,
            workunits=workunits,
            config=self.server_config,
            on_workunit_valid=lambda wu, t: telemetry.record_validation(t),
            on_batch_complete=lambda batch, t: telemetry.record_shipment(
                t, batch_bytes[batch]
            ),
            tracer=tracer,
            id_base=self.wu_id_base,
        )
        if self.health is not None:
            self.health.configure_campaign(
                len(workunits), self.server_config.max_reissues
            )

        with profiler.timed("setup.hosts"):
            arrivals = self._host_arrival_times()
            agents: list[VolunteerAgent] = []
            starts: list[tuple[float, Callable[[], None]]] = []
            # Shards number their hosts from disjoint id blocks: every
            # host-keyed substream (behaviour, agent RNG, fault state)
            # stays independent across the shards of one campaign.
            host_id_base = (
                self.shard.host_id_base if self.shard is not None else 0
            )
            for idx, join_t in enumerate(arrivals):
                host_id = host_id_base + idx
                spec = self.host_model.spec(
                    host_id,
                    join_time=float(join_t),
                    faults=self.faults.host_state(self.seed, host_id),
                )
                agent = VolunteerAgent(
                    sim,
                    server,
                    spec,
                    telemetry,
                    rng=substream(self.seed, "agent", host_id),
                    accounting=self.accounting,
                    tracer=tracer,
                )
                agents.append(agent)
                starts.append((float(join_t), agent.start))
            # Arrival times are generated sorted, so the batch load takes
            # the append-only path (no per-event heap sift-up).
            sim.schedule_batch_at(starts)

        with profiler.timed("des.run"):
            sim.run(until=self.horizon_s)

        # A wire-backed server proxy needs a final clock advance on the
        # *remote* side: trailing deadline timers there fire only when told
        # the campaign horizon was reached (the in-process GridServer has
        # no such hook — its timers live in `sim` and already fired).
        finalize = getattr(server, "finalize_campaign", None)
        if finalize is not None:
            finalize(self.horizon_s)

        t_final = (
            server.completion_time
            if server.completion_time is not None
            else self.horizon_s
        )
        health_report = None
        if self.health is not None:
            health_report = self.health.finalize(t_final)
        ledger_report = None
        if self.ledger is not None:
            ledger_report = self.ledger.finalize(t_final)
        if restore_sink is not None:
            tracer.sink = restore_sink  # unwrap: the tracer outlives us

        n_batches = len(self.library)
        batch_completion = np.full(n_batches, np.nan)
        for batch, t in server.batch_completion.items():
            batch_completion[batch] = t
        return CampaignResult(
            telemetry=telemetry,
            server=server,
            completion_time=server.completion_time,
            horizon_s=self.horizon_s,
            scale=self.scale,
            n_hosts=len(agents),
            release_order=self.campaign.release_order.copy(),
            batch_completion_s=batch_completion,
            faults=self.faults,
            health=health_report,
            ledger=ledger_report,
        )


def scaled_phase1(
    scale: float = 200.0,
    n_proteins: int = 24,
    seed: int = constants.DEFAULT_SEED,
    target_hours: float = 3.65,
    horizon_weeks: float = 40.0,
    config: CampaignConfig | None = None,
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
    health: "bool | HealthMonitor | None" = None,
    ledger: "bool | HostLedger | None" = None,
    **kwargs,
) -> VolunteerGridSimulation:
    """A phase-I-like campaign shrunk by ``scale``.

    ``n_proteins`` proteins keep the phase-1 per-protein statistics; the
    per-protein position counts are divided by ``scale``; packaging uses
    the deployed ~3.3 h workunits.  The default configuration yields a few
    thousand workunits — minutes of simulation — while preserving the
    scale-free observables (redundancy, speed-down, useful fraction,
    three-phase shape).

    A :class:`CampaignConfig` passed as ``config=`` supplies the
    remaining knobs (fault plan, server policy, host model, ...); its
    ``scale``/``seed``/``horizon_weeks`` are overridden by this
    function's arguments, and its ``packaging`` only when unset.  Legacy
    keyword arguments (``accounting=``, ``server_config=``,
    ``n_hosts_peak=``, ``faults=``, ...) are folded into the config
    unchanged, so existing callers keep working.  ``tracer=Tracer.
    to_jsonl(path)`` records a structured campaign trace and
    ``profiler=Profiler()`` aggregates per-callback wall time (see
    docs/observability.md).

    This function is a thin adapter over the campaign-first API: the
    library and cost model come from
    :class:`repro.multi.CrossDockingWorkload` (the workload a
    ``Campaign.cross_docking(...)`` runs on a multi-campaign grid), so
    both entry points materialize bit-identical campaigns.
    """
    # Imported lazily: repro.multi.engine imports this module, so a
    # module-level import here would be circular.
    from ..multi.workloads import CrossDockingWorkload

    workload = CrossDockingWorkload(
        scale=scale, n_proteins=n_proteins, target_hours=target_hours
    )
    library, cost_model = workload.library_and_costs(seed)
    if config is None:
        config = CampaignConfig()
    if config.packaging is None:
        config = config.with_(packaging=PackagingPolicy(target_hours=target_hours))
    config = config.with_(horizon_weeks=horizon_weeks, scale=scale, seed=seed)
    if kwargs:
        config = config.with_(**kwargs)
    return VolunteerGridSimulation(
        library, cost_model, config,
        tracer=tracer, profiler=profiler, health=health, ledger=ledger,
    )
