"""Run-time accounting and the points (credit) system (Sections 6 and 8).

Phase I ran on the UD agent, which "measures wall clock time rather than
actual process execution time"; phase II will run on BOINC, which accounts
actual CPU time.  The conclusion sketches a third, middleware-independent
estimator the authors defer to future work:

    "Another way to approach the number of virtual full-time processors is
    to base the estimate on the number of points awarded instead of
    run-time.  Points represent the amount of work done by a computer to
    compute a result and are based on the run time for that result
    multiplied by a weight factor determined by running a benchmark on the
    agent."

This module implements all three accountings on top of the host model:

* **UD**: accounted time = active wall-clock (includes the 60% throttle
  and owner contention — overstates true CPU by ~2x);
* **BOINC**: accounted time = actual CPU time received
  (wall x duty cycle);
* **points**: claimed credit = accounted run time x a per-host benchmark
  weight; the benchmark measures the host's *speed*, so points estimate
  the reference work directly and cancel both the device speed and (for
  BOINC accounting) the throttle.

The VFTP-from-points estimator divides granted points by what one
reference processor would earn full-time — the "more middleware
independent" metric the paper wants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..grid.host import HostSpec

__all__ = [
    "AccountingMode",
    "CobblestoneScale",
    "HostBenchmark",
    "accounted_seconds",
    "claimed_credit",
    "vftp_from_credit",
]


class AccountingMode(enum.Enum):
    """How an agent bills the run time of a result."""

    #: UD agent: wall-clock while the task is active (phase I).
    UD_WALL_CLOCK = "ud"
    #: BOINC agent: actual CPU time the task received (phase II).
    BOINC_CPU_TIME = "boinc"


@dataclass(frozen=True)
class CobblestoneScale:
    """Credit scale: points one reference processor earns per day.

    BOINC's historical constant is 100 cobblestones/day for a reference
    machine; the absolute scale cancels in VFTP estimates, but keeping it
    explicit makes claimed credits comparable with published numbers.
    """

    points_per_reference_day: float = 100.0

    def __post_init__(self) -> None:
        if self.points_per_reference_day <= 0:
            raise ValueError("scale must be positive")


@dataclass(frozen=True)
class HostBenchmark:
    """The agent-side benchmark determining the credit weight factor.

    A real agent runs Whetstone/Dhrystone; here the benchmark *measures*
    the host's true crunch speed with multiplicative error
    ``measurement_bias`` (benchmarks never track application throughput
    exactly — this is the residual middleware dependence the paper
    expects the points system to shrink, not eliminate).
    """

    host_speed: float  #: true reference-work per CPU-second
    measurement_bias: float = 1.0

    def __post_init__(self) -> None:
        if self.host_speed <= 0 or self.measurement_bias <= 0:
            raise ValueError("speeds must be positive")

    @property
    def measured_speed(self) -> float:
        return self.host_speed * self.measurement_bias


def accounted_seconds(
    spec: HostSpec, active_wall_s: float, mode: AccountingMode
) -> float:
    """Run time the agent reports for ``active_wall_s`` of active wall time.

    UD bills the wall time itself; BOINC bills the CPU actually received,
    i.e. wall x duty cycle.
    """
    if active_wall_s < 0:
        raise ValueError("active wall time must be non-negative")
    if mode is AccountingMode.UD_WALL_CLOCK:
        return active_wall_s
    return active_wall_s * spec.duty_cycle


def claimed_credit(
    spec: HostSpec,
    active_wall_s: float,
    mode: AccountingMode,
    benchmark: HostBenchmark,
    scale: CobblestoneScale | None = None,
) -> float:
    """Points claimed for a result: accounted time x benchmark weight.

    With BOINC accounting the claim is proportional to
    ``cpu_time x speed = reference work`` — device speed cancels exactly
    (up to the benchmark bias).  With UD accounting the throttle and
    contention leak into the claim, which is why the paper calls the
    UD-based VFTP "a low estimate".
    """
    scale = scale if scale is not None else CobblestoneScale()
    accounted = accounted_seconds(spec, active_wall_s, mode)
    points_per_second = scale.points_per_reference_day / 86_400.0
    return accounted * benchmark.measured_speed * points_per_second


def vftp_from_credit(
    granted_points: float,
    span_seconds: float,
    scale: CobblestoneScale | None = None,
) -> float:
    """Virtual full-time processors implied by a credit total.

    Granted points over a period, divided by what one reference processor
    earns in that period — the middleware-independent estimator of
    Section 8.
    """
    if span_seconds <= 0:
        raise ValueError("span must be positive")
    if granted_points < 0:
        raise ValueError("points must be non-negative")
    scale = scale if scale is not None else CobblestoneScale()
    reference_points = scale.points_per_reference_day * span_seconds / 86_400.0
    return granted_points / reference_points
