"""Workunit input bundles.

"The data needed for the MAXDo program is small: the 2 proteins files +
program + parameters (no more than 2 Mo)" (Section 4.1).  A bundle is a
directory with exactly those four pieces:

    wu_<id>/
      receptor.rpm     reduced receptor (repro.proteins.io format)
      ligand.rpm       reduced ligand
      params.txt       isep slice + orientation grid + checksums
      program.bin      placeholder for the (screensaver-wrapped) program

``pack_workunit``/``unpack_workunit`` round-trip a workunit through this
bundle, enforcing the grid's 2 MB constraint, and ``run_from_bundle``
executes it with the MAXDo engine — the full volunteer-side path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .. import constants
from ..core.workunit import WorkUnit
from ..maxdo.docking import MaxDoRun
from ..proteins.io import read_protein, write_protein
from ..proteins.model import ReducedProtein

__all__ = ["WorkUnitBundle", "pack_workunit", "unpack_workunit", "run_from_bundle"]

#: Size of the placeholder program binary.  The real MAXDo screensaver
#: build is on the order of a megabyte; the constant keeps bundle sizes
#: honest against the 2 MB budget.
PROGRAM_BYTES = 1_200_000


@dataclass(frozen=True)
class WorkUnitBundle:
    """An unpacked workunit input bundle."""

    directory: Path
    workunit: WorkUnit
    receptor: ReducedProtein
    ligand: ReducedProtein
    total_nsep: int
    n_couples: int
    n_gamma: int

    @property
    def total_bytes(self) -> int:
        return sum(f.stat().st_size for f in self.directory.iterdir())


def _params_text(wu: WorkUnit, total_nsep: int, n_couples: int, n_gamma: int) -> str:
    return "\n".join([
        "# MAXDo workunit parameters",
        f"WU_ID      {wu.wu_id}",
        f"ISEP_START {wu.isep_start}",
        f"NSEP       {wu.nsep}",
        f"TOTAL_NSEP {total_nsep}",
        f"N_COUPLES  {n_couples}",
        f"N_GAMMA    {n_gamma}",
        f"COST_REF_S {wu.cost_reference_s:.3f}",
        "",
    ])


def pack_workunit(
    directory: Path | str,
    wu: WorkUnit,
    receptor: ReducedProtein,
    ligand: ReducedProtein,
    total_nsep: int,
    n_couples: int = constants.N_ROT_COUPLES,
    n_gamma: int = constants.N_GAMMA,
    program_bytes: int = PROGRAM_BYTES,
) -> Path:
    """Write the input bundle for ``wu``; returns the bundle directory.

    Raises ``ValueError`` if the bundle would exceed the grid's 2 MB
    workunit budget (Section 3.2's data constraint).
    """
    directory = Path(directory) / f"wu_{wu.wu_id:08d}"
    directory.mkdir(parents=True, exist_ok=True)
    size = write_protein(directory / "receptor.rpm", receptor)
    size += write_protein(directory / "ligand.rpm", ligand)
    params = _params_text(wu, total_nsep, n_couples, n_gamma)
    (directory / "params.txt").write_text(params, encoding="ascii")
    size += len(params)
    (directory / "program.bin").write_bytes(b"\0" * program_bytes)
    size += program_bytes
    if size > constants.MAX_WORKUNIT_INPUT_BYTES:
        raise ValueError(
            f"bundle {directory.name} is {size} bytes, over the "
            f"{constants.MAX_WORKUNIT_INPUT_BYTES} byte grid budget"
        )
    return directory


def unpack_workunit(directory: Path | str) -> WorkUnitBundle:
    """Parse a bundle back into its pieces (the agent-side view)."""
    directory = Path(directory)
    receptor = read_protein(directory / "receptor.rpm")
    ligand = read_protein(directory / "ligand.rpm")
    fields: dict[str, str] = {}
    for line in (directory / "params.txt").read_text(encoding="ascii").splitlines():
        if line.startswith("#") or not line.strip():
            continue
        key, value = line.split(maxsplit=1)
        fields[key] = value
    try:
        wu = WorkUnit(
            wu_id=int(fields["WU_ID"]),
            receptor=-1,  # library indices are server-side knowledge
            ligand=-1,
            isep_start=int(fields["ISEP_START"]),
            nsep=int(fields["NSEP"]),
            cost_reference_s=float(fields["COST_REF_S"]),
        )
        total_nsep = int(fields["TOTAL_NSEP"])
        n_couples = int(fields["N_COUPLES"])
        n_gamma = int(fields["N_GAMMA"])
    except KeyError as exc:
        raise ValueError(f"params.txt missing field {exc}") from None
    return WorkUnitBundle(
        directory=directory,
        workunit=wu,
        receptor=receptor,
        ligand=ligand,
        total_nsep=total_nsep,
        n_couples=n_couples,
        n_gamma=n_gamma,
    )


def run_from_bundle(
    bundle: WorkUnitBundle,
    workdir: Path | str,
    minimize: bool = True,
    max_iterations: int = 30,
) -> MaxDoRun:
    """Instantiate the MAXDo engine from an unpacked bundle."""
    return MaxDoRun(
        bundle.receptor,
        bundle.ligand,
        isep_start=bundle.workunit.isep_start,
        nsep=bundle.workunit.nsep,
        total_nsep=bundle.total_nsep,
        workdir=workdir,
        n_couples=bundle.n_couples,
        n_gamma=bundle.n_gamma,
        minimize=minimize,
        max_iterations=max_iterations,
    )
