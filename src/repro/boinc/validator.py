"""Result validation and redundancy accounting (Section 5.1).

"World Community Grid's system sends more than one copy of each workunit to
the volunteers.  This is called redundant computing.  [...]  The redundancy
factor for all projects is 1.37 [...].  It was higher at the beginning,
because the results were compared to each other to be validated, but later
we provided a method to validate the results by checking the values
returned in the result file."

Two validation regimes, switched at a configurable campaign time:

* **quorum** (early): a workunit needs two agreeing (valid) results;
* **bounds** (late): a single result passing the value-range check
  validates the workunit.

Accounting definitions (consistent with the paper's numbers — the 3.94M
"effective" results match one canonical result per deployed workunit):

* *disclosed* — every result the server receives, including invalid
  copies, extra quorum copies and results arriving after validation;
* *effective* — one per validated workunit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ValidationPolicy", "AdaptiveReplication", "ValidationStats"]


@dataclass(frozen=True)
class ValidationPolicy:
    """When to switch from quorum comparison to value-range validation."""

    #: campaign time (seconds) at which bounds validation replaces quorum
    switch_time: float
    quorum: int = 2

    def quorum_at(self, t: float) -> int:
        """Valid results required to validate a workunit at time ``t``."""
        return self.quorum if t < self.switch_time else 1

    def replication_at(self, t: float) -> int:
        """Copies initially issued for a workunit entering service at ``t``."""
        return self.quorum_at(t)


class AdaptiveReplication:
    """BOINC-style adaptive replication: trust hosts with a clean record.

    The fixed quorum of the early campaign pays a ~2x redundancy tax on
    every workunit.  BOINC's adaptive replication (the middleware phase II
    moves to, Section 8) drops the second copy for hosts that have
    returned ``trust_after`` consecutive valid results, spot-checking them
    with probability ``spot_check_rate``; any invalid result resets the
    host's record.

    This object tracks per-host streaks; the server consults
    :meth:`needs_partner` when a trusted-host result would otherwise wait
    for a quorum partner.
    """

    def __init__(self, trust_after: int = 10, spot_check_rate: float = 0.1) -> None:
        if trust_after < 1:
            raise ValueError("trust_after must be at least 1")
        if not 0.0 <= spot_check_rate <= 1.0:
            raise ValueError("spot_check_rate must be in [0, 1]")
        self.trust_after = trust_after
        self.spot_check_rate = spot_check_rate
        self._streaks: dict[int, int] = {}
        self._spot_counter = 0

    def is_trusted(self, host_id: int) -> bool:
        return self._streaks.get(host_id, 0) >= self.trust_after

    def streak(self, host_id: int) -> int:
        """The host's current run of consecutive valid results."""
        return self._streaks.get(host_id, 0)

    def streaks(self) -> dict[int, int]:
        """A snapshot of every tracked host's streak (for the ledger)."""
        return dict(self._streaks)

    def record_valid(self, host_id: int) -> None:
        self._streaks[host_id] = self._streaks.get(host_id, 0) + 1

    def record_invalid(self, host_id: int) -> None:
        """An invalid result wipes the host's trust."""
        self._streaks[host_id] = 0

    def needs_partner(self, host_id: int) -> bool:
        """Whether a result from ``host_id`` still needs quorum backup.

        Untrusted hosts always do; trusted hosts are deterministically
        spot-checked every ``1/spot_check_rate``-th trusted result (a
        counter, not a coin flip, so campaigns stay replayable).
        """
        if not self.is_trusted(host_id):
            return True
        if self.spot_check_rate <= 0.0:
            return False
        self._spot_counter += 1
        period = max(1, round(1.0 / self.spot_check_rate))
        return self._spot_counter % period == 0


@dataclass
class ValidationStats:
    """Running counters the campaign metrics are computed from."""

    disclosed: int = 0  #: all results received
    effective: int = 0  #: workunits validated (one canonical result each)
    invalid: int = 0  #: results failing the validity draw / range check
    late: int = 0  #: results for already-validated workunits
    quorum_extra: int = 0  #: valid results consumed by quorum comparison
    consumed_cpu_s: float = 0.0  #: accounted device time, all results
    useful_reference_s: float = 0.0  #: reference cost of validated workunits
    # -- fault-injection accounting (all zero on a fault-free campaign) ----
    failed: int = 0  #: workunits terminally failed (reissue budget exhausted)
    bad_validated: int = 0  #: workunits validated on sabotaged results
    sabotage_caught: int = 0  #: sabotaged results exposed by quorum compare
    refused_rpcs: int = 0  #: RPCs refused during server outage windows
    _by_regime: dict[str, int] = field(
        default_factory=lambda: {"quorum": 0, "bounds": 0, "adaptive": 0}
    )

    def record_result(self, cpu_s: float) -> None:
        self.disclosed += 1
        self.consumed_cpu_s += cpu_s

    def record_validation(self, reference_cost_s: float, regime: str) -> None:
        self.effective += 1
        self.useful_reference_s += reference_cost_s
        self._by_regime[regime] += 1

    @property
    def redundancy_factor(self) -> float:
        """Disclosed / effective (paper: 1.37)."""
        if self.effective == 0:
            raise ValueError("no workunit validated yet")
        return self.disclosed / self.effective

    @property
    def useful_fraction(self) -> float:
        """Effective / disclosed (paper: 73%)."""
        if self.disclosed == 0:
            raise ValueError("no result disclosed yet")
        return self.effective / self.disclosed

    @property
    def validated_by_regime(self) -> dict[str, int]:
        return dict(self._by_regime)
