"""Sharded campaign execution: K servers, one merged result.

A monolithic campaign is one :class:`~repro.boinc.server.GridServer`
plus one DES loop in a single Python process — the one thing the kernel
fast path cannot speed up further.  This module partitions a campaign
into ``K`` *shards* along the release order (contiguous receptor-batch
ranges, balanced by workunit count), runs each shard as an independent
mini-campaign — its own server, DES kernel and volunteer fleet — on a
``ProcessPoolExecutor`` worker, and merges the shard outputs losslessly
into one :class:`~repro.boinc.simulator.CampaignResult`.  The WISDOM
large-scale screening deployments scaled exactly this way: partition the
input database into independently executed chunks, collate afterward.

Determinism contract
--------------------

* Every shard is fully determined by ``(library, cost_model, config,
  ShardSpec)``: shard ``k`` draws its host arrivals from
  ``substream(seed, "host-arrivals", k)`` and numbers its hosts from a
  disjoint id block, so host/agent/fault substreams never collide or
  correlate across shards.
* The merge folds shards in shard-index order regardless of which
  worker finishes first, so the merged result is **bit-identical for
  every worker count** (and for the in-process ``n_workers=1`` path).
* A single shard (``ShardPlan(n_shards=1)``) never reaches this module:
  :meth:`VolunteerGridSimulation.run` short-circuits to the monolithic
  path, which stays bit-identical to a config with no shard plan at all.

Merge semantics
---------------

* :class:`Telemetry` daily series are summed day-aligned; counters
  (credit, shipped bytes, clamps, lazily-created ``fault.*``) add;
  the run-hours histogram merges bucket-wise; per-result run-time lists
  and shipments concatenate in shard order.
* :class:`ValidationStats` merge field-wise (including the per-regime
  validation counts), so :class:`CampaignMetrics` and
  :meth:`CampaignResult.fault_report` are computed from campaign-global
  numbers.
* JSONL traces are interleaved by global ``(t_sim, shard, line)`` into
  the path the caller's tracer pointed at; workunit and host ids are
  campaign-global, so ``trace``/``report``/span reconstruction cannot
  tell a sharded trace from a monolithic one (zero orphans).
* ``completion_time`` is the max over shards once **all** shards
  completed, else ``None`` (the campaign-global definition).

What does *not* cross shards: the streaming health monitor and the
profiler (both are in-process observers); asking for them with
``n_shards > 1`` raises instead of silently dropping data.
"""

from __future__ import annotations

import heapq
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..obs.tracer import JsonlSink, Tracer
from .validator import ValidationStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .server import ServerConfig
    from .simulator import CampaignResult, Telemetry, VolunteerGridSimulation

__all__ = [
    "ShardPlan",
    "ShardSpec",
    "ShardOutput",
    "plan_shards",
    "run_sharded",
    "merge_stats",
    "merge_telemetry",
]

#: host-id stride between shards: shard ``k`` numbers its hosts from
#: ``k * HOST_ID_STRIDE``, so host substreams (behavioural draws, fault
#: states, agent RNGs) are disjoint for any realistic fleet size.
HOST_ID_STRIDE = 2**32


@dataclass(frozen=True)
class ShardPlan:
    """How to shard a campaign: K shards on up to N pool workers.

    ``n_shards=1`` (the default) is the monolithic path — bit-identical
    to a config with no shard plan.  ``n_workers=1`` runs the shards
    sequentially in-process (no pool, no pickling); ``n_workers>1`` fans
    them out over a ``ProcessPoolExecutor``.  The merged result does not
    depend on ``n_workers``.
    """

    n_shards: int = 1
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the campaign (all campaign-global numbers)."""

    index: int  #: shard number in ``[0, n_shards)``
    n_shards: int
    batch_lo: int  #: first release position (receptor batch), inclusive
    batch_hi: int  #: last release position, exclusive
    wu_id_base: int  #: global id of the shard's first workunit
    n_workunits: int  #: workunits in ``[batch_lo, batch_hi)``
    host_id_base: int  #: first global host id (``index * HOST_ID_STRIDE``)
    n_hosts_peak: int  #: the shard's share of the campaign's peak fleet


@dataclass
class ShardOutput:
    """What one shard sends back to the merge (must pickle)."""

    spec: ShardSpec
    telemetry: "Telemetry"  #: tracer stripped before crossing the process
    stats: ValidationStats
    completion_time: float | None
    batch_completion: dict[int, float]  #: global batch index -> t_sim
    n_workunits: int
    n_hosts: int
    wall_s: float  #: the shard's own wall-clock execution time
    trace_path: str | None = None
    trace_counts: dict[str, int] | None = None
    #: per-host ledger records when the campaign ran with ``ledger=``
    #: (host ids are campaign-global and disjoint across shards, so the
    #: merge is a pure union in shard order)
    ledger_records: dict | None = None
    ledger_campaigns: dict | None = None


def plan_shards(sim: "VolunteerGridSimulation", n_shards: int) -> list[ShardSpec]:
    """Partition ``sim``'s campaign into contiguous release-order shards.

    Boundaries fall on receptor-batch edges (the release/shipment unit,
    so batch completion stays shard-local) and are placed to balance the
    cumulative *workunit count* — the DES cost of a shard (events, and
    therefore its wall time) tracks workunits, not reference CPU, so this
    is what evens out the per-shard walls a process pool schedules.

    Each shard's peak host count is the campaign fleet prorated by the
    **larger** of its reference-work share and its workunit share
    (minimum 4, matching the auto-sizing floor): the work share keeps a
    CPU-heavy slice on schedule, the workunit share keeps a slice of
    many cheap workunits from drowning in per-workunit latencies that
    reference work does not see.  ``n_shards=1`` yields the whole
    campaign as shard 0 with the full fleet.
    """
    n = len(sim.library)
    if not 1 <= n_shards <= n:
        raise ValueError(
            f"n_shards must be in [1, {n} receptor batches], got {n_shards}"
        )
    release_order = sim.campaign.release_order
    # Workunits per couple (counts minus merge-tail folds), summed over
    # each receptor batch's ligands — all vectorized, nothing materialized.
    per_couple = (sim.plan.counts - sim.plan.merged).astype(np.int64)
    batch_wus = per_couple[release_order].sum(axis=1)
    batch_work = sim.campaign.batch_work[release_order]
    cum_work = np.concatenate([[0.0], np.cumsum(batch_work)])
    cum_wus = np.concatenate([[0], np.cumsum(batch_wus)])
    total_work = float(cum_work[-1])
    total_wus = int(cum_wus[-1])

    # Boundary k sits where the cumulative workunit count crosses k/K of
    # the total, nudged so every shard keeps at least one batch.
    bounds = [0]
    for k in range(1, n_shards):
        cut = int(np.searchsorted(cum_wus, total_wus * k / n_shards))
        cut = max(cut, bounds[-1] + 1)
        cut = min(cut, n - (n_shards - k))
        bounds.append(cut)
    bounds.append(n)

    specs = []
    for k in range(n_shards):
        lo, hi = bounds[k], bounds[k + 1]
        work = float(cum_work[hi] - cum_work[lo])
        work_share = work / total_work if total_work > 0 else 1.0 / n_shards
        wu_share = (
            (cum_wus[hi] - cum_wus[lo]) / total_wus
            if total_wus > 0
            else 1.0 / n_shards
        )
        share = max(work_share, wu_share)
        n_hosts = max(4, int(round(sim.n_hosts_peak * share)))
        specs.append(
            ShardSpec(
                index=k,
                n_shards=n_shards,
                batch_lo=lo,
                batch_hi=hi,
                wu_id_base=int(cum_wus[lo]),
                n_workunits=int(cum_wus[hi] - cum_wus[lo]),
                host_id_base=k * HOST_ID_STRIDE,
                n_hosts_peak=n_hosts,
            )
        )
    return specs


# -- shard execution ---------------------------------------------------------

def _execute_shard(
    library,
    cost_model,
    config,
    spec: ShardSpec,
    trace_dir: str | None,
    trace_channels: frozenset | None,
    ledger: bool = False,
) -> ShardOutput:
    """Run one shard to completion and package its picklable output."""
    from ..obs.ledger import HostLedger
    from .simulator import VolunteerGridSimulation

    tracer = None
    trace_path = None
    if trace_dir is not None:
        trace_path = os.path.join(trace_dir, f"shard-{spec.index:04d}.jsonl")
        tracer = Tracer.to_jsonl(trace_path, channels=trace_channels)
    t0 = perf_counter()
    sim = VolunteerGridSimulation(
        library, cost_model, config, tracer=tracer, shard=spec,
        ledger=HostLedger() if ledger else None,
    )
    result = sim.run()
    wall_s = perf_counter() - t0
    trace_counts = None
    if tracer is not None:
        tracer.close()
        trace_counts = dict(tracer.counts)
    result.telemetry.tracer = None  # the sink handle must not cross processes
    return ShardOutput(
        spec=spec,
        telemetry=result.telemetry,
        stats=result.server.stats,
        completion_time=result.completion_time,
        batch_completion=dict(result.server.batch_completion),
        n_workunits=result.server.n_workunits,
        n_hosts=result.n_hosts,
        wall_s=wall_s,
        trace_path=trace_path,
        trace_counts=trace_counts,
        ledger_records=sim.ledger.records if sim.ledger is not None else None,
        ledger_campaigns=(
            sim.ledger.by_campaign if sim.ledger is not None else None
        ),
    )


#: worker-process state installed by :func:`_init_worker`.  Under the
#: POSIX ``fork`` start method the initargs are inherited by memory, so
#: the (potentially large) library/cost-model matrices are never pickled;
#: per-task payloads are just the small :class:`ShardSpec`.
_WORKER_STATE: tuple | None = None


def _init_worker(
    library, cost_model, config, trace_dir, trace_channels, ledger=False
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (
        library, cost_model, config, trace_dir, trace_channels, ledger
    )


def _run_shard_task(spec: ShardSpec) -> ShardOutput:
    """Module-level pool worker (must pickle), mirroring the docking
    engine's ``dock_couple(n_workers=N)`` fan-out pattern."""
    assert _WORKER_STATE is not None, "pool worker not initialized"
    library, cost_model, config, trace_dir, trace_channels, ledger = (
        _WORKER_STATE
    )
    return _execute_shard(
        library, cost_model, config, spec, trace_dir, trace_channels,
        ledger=ledger,
    )


# -- merge -------------------------------------------------------------------

class MergedServerView:
    """Duck-typed stand-in for :class:`GridServer` on a merged result.

    Exposes exactly the server surface :class:`CampaignResult` and the
    downstream tooling read — ``stats``, ``n_workunits``,
    ``completion_time``, ``batch_completion``, ``config`` — backed by the
    campaign-global merged numbers.
    """

    def __init__(
        self,
        stats: ValidationStats,
        n_workunits: int,
        completion_time: float | None,
        batch_completion: dict[int, float],
        config: "ServerConfig",
    ) -> None:
        self.stats = stats
        self.n_workunits = n_workunits
        self.completion_time = completion_time
        self.batch_completion = batch_completion
        self.config = config

    @property
    def n_validated(self) -> int:
        return self.stats.effective

    @property
    def all_done(self) -> bool:
        return self.completion_time is not None


def merge_stats(dst: ValidationStats, src: ValidationStats) -> None:
    """Field-wise sum (the counters are all additive across shards).

    Public: the multi-campaign grid (:mod:`repro.multi`) folds
    per-campaign stats into grid-global numbers with the same merge the
    shard collator uses, so both aggregation paths stay one code path.
    """
    for f in fields(ValidationStats):
        if f.name == "_by_regime":
            for regime, count in src._by_regime.items():
                dst._by_regime[regime] = dst._by_regime.get(regime, 0) + count
        else:
            setattr(dst, f.name, getattr(dst, f.name) + getattr(src, f.name))


#: telemetry registry entries merged structurally (everything else in a
#: campaign registry is a counter and merges by addition)
_DAILY_SERIES = (
    "campaign.daily_cpu_s",
    "campaign.daily_results",
    "campaign.daily_useful",
)
_HISTOGRAMS = ("campaign.run_active_hours",)


def merge_telemetry(dst: "Telemetry", src: "Telemetry") -> None:
    """Fold one shard's (or campaign's) telemetry into the accumulator.

    Day-aligned: both registries were built over the same horizon, so
    the daily series add element-wise.  Lazily-created counters (the
    ``fault.*`` family) are created in the destination only when a shard
    actually has them, preserving the monolithic contract that a
    fault-free export carries no zero-valued fault counters.
    """
    for name in src.registry.names():
        metric = src.registry.get(name)
        if name in _DAILY_SERIES:
            target = dst.registry.get(name)
            if len(target.values) != len(metric.values):
                raise ValueError(
                    f"shard horizon mismatch merging {name}: "
                    f"{len(metric.values)} vs {len(target.values)} days"
                )
            target.values += metric.values
        elif name in _HISTOGRAMS:
            target = dst.registry.get(name)
            if target.bounds != metric.bounds:
                raise ValueError(f"histogram bounds mismatch merging {name}")
            for i, count in enumerate(metric.bucket_counts):
                target.bucket_counts[i] += count
            target.sum += metric.sum
            target.count += metric.count
        elif metric.kind == "counter":
            dst.registry.counter(name, help=metric.help).inc(metric.value)
        else:  # pragma: no cover - no other kinds live in campaign telemetry
            raise TypeError(
                f"cannot merge metric {name!r} of kind {metric.kind!r}"
            )
    dst.run_active_s.extend(src.run_active_s)
    dst.run_reference_s.extend(src.run_reference_s)
    dst.shipments.extend(src.shipments)


def _iter_trace_lines(path: str, shard: int) -> Iterator[tuple]:
    """Yield ``(t_sim, shard, line_no, raw_line)`` sort keys from one
    shard's JSONL trace (file order is non-decreasing in ``t_sim``)."""
    with open(path, "r", encoding="ascii") as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            t_sim = json.loads(line).get("t_sim")
            key = t_sim if t_sim is not None else float("-inf")
            yield (key, shard, line_no, line)


def _merge_traces(outputs: list[ShardOutput], target_path: str) -> None:
    """Interleave the shard JSONL traces by global ``(t_sim, shard,
    line)`` into ``target_path``, then remove the shard files."""
    streams = [
        _iter_trace_lines(out.trace_path, out.spec.index)
        for out in outputs
        if out.trace_path is not None
    ]
    with open(target_path, "w", encoding="ascii") as fh:
        for _, _, _, line in heapq.merge(*streams):
            fh.write(line + "\n")
    for out in outputs:
        if out.trace_path is not None and out.trace_path != target_path:
            os.remove(out.trace_path)


def _resolve_trace_target(sim: "VolunteerGridSimulation") -> tuple:
    """Where the merged trace must land, from the caller's tracer.

    Only a JSONL sink can span shard processes; an in-memory ring cannot
    be teed across workers, so asking for one with ``n_shards > 1`` is an
    error rather than a silently incomplete trace.
    """
    tracer = sim.tracer
    if tracer is None:
        return None, None, None
    if not isinstance(tracer.sink, JsonlSink):
        raise ValueError(
            "unsupported artifact for a sharded campaign: the in-memory "
            "ring trace (RingSink) cannot cross shard processes; trace a "
            "sharded campaign to a JSONL path (Tracer.to_jsonl / --trace "
            "PATH) instead, or run monolithically with n_shards=1 "
            "(drop --shards)"
        )
    target_path = str(tracer.sink.path)
    return tracer, target_path, tracer.channels


def run_sharded(sim: "VolunteerGridSimulation") -> "CampaignResult":
    """Execute ``sim`` as ``config.shards`` prescribes and merge.

    Called by :meth:`VolunteerGridSimulation.run` when the config carries
    a :class:`ShardPlan` with ``n_shards > 1``.  Returns a merged
    :class:`CampaignResult` indistinguishable (metrics, fault report,
    exports, trace) from one server having run the whole campaign;
    per-shard wall times are kept on ``result.shard_walls``.
    """
    from .simulator import CampaignResult, Telemetry

    plan = sim.config.shards
    if sim.health is not None:
        raise ValueError(
            "unsupported artifact for a sharded campaign: the streaming "
            "health monitor (--health / health=) runs in-process and its "
            "SLO report cannot be recombined across shard processes; run "
            "monolithically with n_shards=1 (drop --shards), or use the "
            "shard-mergeable host ledger (ledger=) instead"
        )
    if sim.profiler is not None:
        raise ValueError(
            "unsupported artifact for a sharded campaign: the profiler "
            "(--profile / profiler=) cannot aggregate wall times across "
            "shard processes; run monolithically with n_shards=1 "
            "(drop --shards) to profile"
        )
    tracer, target_path, trace_channels = _resolve_trace_target(sim)
    trace_dir = (
        (os.path.dirname(target_path) or ".") if target_path is not None else None
    )

    specs = plan_shards(sim, plan.n_shards)
    shard_config = sim.config.with_(shards=None)
    n_workers = min(plan.n_workers, plan.n_shards)

    if n_workers <= 1:
        outputs = [
            _execute_shard(
                sim.library, sim.cost_model, shard_config, spec,
                trace_dir, trace_channels,
                ledger=sim.ledger is not None,
            )
            for spec in specs
        ]
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(
                sim.library, sim.cost_model, shard_config,
                trace_dir, trace_channels, sim.ledger is not None,
            ),
        ) as pool:
            # submit order == shard order: the list() below is the
            # deterministic ordered merge, whatever order workers finish.
            outputs = list(pool.map(_run_shard_task, specs))

    if tracer is not None:
        # The caller's sink opened the target file; close it and rewrite
        # it with the globally interleaved stream, keeping the tracer's
        # per-type counts campaign-global.
        tracer.sink.close()
        _merge_traces(outputs, target_path)
        n_lines = 0
        for out in outputs:
            if out.trace_counts:
                tracer.counts.update(out.trace_counts)
                n_lines += sum(out.trace_counts.values())
        tracer.sink.n_written = n_lines

    telemetry = Telemetry(sim.horizon_s)
    stats = ValidationStats()
    batch_completion: dict[int, float] = {}
    for out in outputs:
        merge_telemetry(telemetry, out.telemetry)
        merge_stats(stats, out.stats)
        batch_completion.update(out.batch_completion)

    completed = [out.completion_time for out in outputs]
    completion_time = (
        max(completed) if all(t is not None for t in completed) else None
    )
    n_batches = len(sim.library)
    batch_completion_s = np.full(n_batches, np.nan)
    for batch, t in batch_completion.items():
        batch_completion_s[batch] = t

    server = MergedServerView(
        stats=stats,
        n_workunits=sum(out.n_workunits for out in outputs),
        completion_time=completion_time,
        batch_completion=batch_completion,
        config=sim.server_config,
    )
    fleet = None
    if sim.ledger is not None:
        # Shard host-id blocks are disjoint (HOST_ID_STRIDE), so the
        # merged ledger is a pure union absorbed in shard order.
        for out in outputs:
            if out.ledger_records is not None:
                sim.ledger.absorb(out.ledger_records, out.ledger_campaigns)
        fleet = sim.ledger.finalize(
            completion_time if completion_time is not None else sim.horizon_s
        )
    result = CampaignResult(
        telemetry=telemetry,
        server=server,
        completion_time=completion_time,
        horizon_s=sim.horizon_s,
        scale=sim.scale,
        n_hosts=sum(out.n_hosts for out in outputs),
        release_order=sim.campaign.release_order.copy(),
        batch_completion_s=batch_completion_s,
        faults=sim.faults,
        health=None,
        ledger=fleet,
    )
    result.shard_walls = [out.wall_s for out in outputs]
    return result
