"""The volunteer agent state machine.

"The agent connects to the server to get new workunit, then it launches the
program [...].  After the computing work is finished, the computing device
sends back the result [...] and asks for an another workunit." (Section 3.1)

Behaviour modeled per the paper:

* computation only progresses while the host's availability trace is on,
  at the host's ``progress_rate`` (speed x duty cycle);
* every availability interruption may be a clean suspend (in-memory state
  kept) or a kill — after a kill, progress rolls back to the last
  checkpoint, i.e. the last completed starting position (Section 4.3);
* finished results are reported after a reconnection delay; the accounted
  run time is the *active wall-clock* time, reproducing the UD agent's
  accounting bias (Section 6);
* a fetched workunit may be silently abandoned (host never reconnects);
  the server's deadline reclaims it;
* an idle agent with no work available polls again a few hours later.

Fault tolerance (active only when the host spec carries a
:class:`repro.faults.HostFaultState`): injected crashes roll progress
back to the last checkpoint and reboot after a delay; corrupted or
sabotaged results are labelled with their ground-truth
:class:`~repro.faults.ResultQuality`; refused RPCs (server outages) and
lost report uploads are retried with exponential backoff and jitter.
Every retry hop is a named bound method (``_report`` reschedules itself,
fetches go back through ``_when_available``), so traces and profiles stay
attributable.  All fault randomness draws from the host's dedicated fault
stream, never from ``self.rng`` — a fault-free campaign is bit-identical
with or without the machinery.

Observability: pass ``tracer=`` to record the agent-channel events
(``agent.fetch`` / ``idle`` / ``abandon`` / ``checkpoint`` / ``complete``
/ ``report`` / ``retry``) plus the injected ``fault.*`` events — see
docs/observability.md.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..faults import ResultQuality, ServerUnavailable
from ..grid.des import Simulator
from ..grid.host import HostSpec
from ..units import SECONDS_PER_HOUR
from .credit import (
    AccountingMode,
    HostBenchmark,
    accounted_seconds,
    claimed_credit,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Tracer
    from .server import GridServer, Instance
    from .simulator import Telemetry

__all__ = [
    "VolunteerAgent",
    "KILL_PROBABILITY",
    "WORK_POLL_HOURS",
    "RETRY_BASE_S",
    "RETRY_MAX_EXPONENT",
]

#: Probability that an availability interruption kills the process (losing
#: progress back to the last starting-position checkpoint) instead of
#: cleanly suspending it.
KILL_PROBABILITY = 0.30

#: Idle agents retry the server after this many hours without work.
WORK_POLL_HOURS = 8.0

#: Lognormal sigma of the per-host benchmark measurement bias (how far the
#: agent's Whetstone-style benchmark drifts from application throughput).
BENCHMARK_BIAS_SIGMA = 0.05

#: First retry backoff after a refused/lost RPC (seconds); successive
#: attempts double it, with uniform jitter in [0.5x, 1.5x).
RETRY_BASE_S = 600.0

#: Backoff doubling stops at this exponent (2**8 * 600 s ~ 1.8 days), so
#: retries keep probing a long outage instead of receding forever.
RETRY_MAX_EXPONENT = 8


class VolunteerAgent:
    """One volunteer device's agent."""

    def __init__(
        self,
        sim: Simulator,
        server: "GridServer",
        spec: HostSpec,
        telemetry: "Telemetry",
        rng: np.random.Generator,
        accounting: AccountingMode = AccountingMode.UD_WALL_CLOCK,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.sim = sim
        self.server = server
        self.spec = spec
        self.telemetry = telemetry
        self.rng = rng
        self.accounting = accounting
        self.tracer = tracer
        self.benchmark = HostBenchmark(
            host_speed=spec.speed,
            measurement_bias=float(np.exp(rng.normal(0.0, BENCHMARK_BIAS_SIGMA))),
        )
        self.instance: "Instance | None" = None
        # progress state for the current workunit (reference seconds)
        self._cost = 0.0
        self._chunk = 0.0  #: checkpoint granularity = one starting position
        self._done = 0.0  #: committed + in-memory progress
        self._checkpointed = 0.0  #: progress safe on disk
        self._active_s = 0.0  #: accounted active wall-clock so far
        self._fetch_attempt = 0  #: consecutive refused work requests
        self.results_returned = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin operating (called at the host's project-join time)."""
        self._when_available(self._fetch_work)

    def _when_available(self, action) -> None:
        """Run ``action`` now if the host is available, else at the next
        availability start (agents only act while the device computes).

        The continuation is this bound method itself with ``action`` as
        the scheduled argument — not a closure — so each hop is
        allocation-free and ``des.fire`` / the profiler attribute the
        wait to ``VolunteerAgent._when_available`` instead of a
        ``<lambda>``.
        """
        t = self.sim.now
        if self.spec.trace.is_available(t):
            action()
            return
        nxt = self.spec.trace.next_transition(t)
        if nxt is not None:
            self.sim.schedule_at(nxt, self._when_available, action)
        # else: the host never computes again; it falls silent.

    # -- work fetching -----------------------------------------------------

    def _fetch_work(self) -> None:
        if self.server.all_done:
            return
        try:
            instance = self.server.request_work(self.spec.host_id)
        except ServerUnavailable:
            attempt = self._fetch_attempt
            self._fetch_attempt += 1
            self._backoff_retry(
                "refused", attempt, self._when_available, self._fetch_work
            )
            return
        self._fetch_attempt = 0
        if instance is None:
            poll = float(self.rng.exponential(WORK_POLL_HOURS * SECONDS_PER_HOUR))
            if self.tracer is not None:
                self.tracer.emit(
                    "agent.idle", t_sim=self.sim.now,
                    host=self.spec.host_id, poll_s=max(poll, 600.0),
                )
            self.sim.schedule(max(poll, 600.0), self._when_available, self._fetch_work)
            return
        self.instance = instance
        wu = instance.wu
        self._cost = wu.cost_reference_s
        self._chunk = wu.cost_reference_s / wu.nsep
        self._done = 0.0
        self._checkpointed = 0.0
        self._active_s = 0.0
        if self.tracer is not None:
            self.tracer.emit(
                "agent.fetch", t_sim=self.sim.now,
                host=self.spec.host_id, wu=wu.wu_id, copy=instance.copy,
            )
        if self.rng.random() < self.spec.abandon_prob:
            # Volunteer walks away; the deadline will reclaim the copy and
            # this agent only comes back after it has passed.
            self.instance = None
            if self.tracer is not None:
                self.tracer.emit(
                    "agent.abandon", t_sim=self.sim.now,
                    host=self.spec.host_id, wu=wu.wu_id,
                )
            self.sim.schedule(
                self.server.config.deadline_s * 1.5,
                self._when_available, self._fetch_work,
            )
            return
        self._compute_step()

    # -- computing ---------------------------------------------------------

    def _compute_step(self) -> None:
        """Crunch within the current availability interval."""
        t = self.sim.now
        trace = self.spec.trace
        if not trace.is_available(t):
            self._when_available(self._compute_step)
            return
        interval_end = trace.next_transition(t)
        rate = self.spec.progress_rate
        # Float accumulation in _interrupt can push _done a few ulp past
        # _cost; a negative residual would make sim.schedule raise.
        needed_s = max(0.0, (self._cost - self._done) / rate)
        if interval_end is None or t + needed_s <= interval_end:
            if self._maybe_crash(needed_s):
                return
            self.sim.schedule(needed_s, self._complete)
            return
        span = interval_end - t
        if self._maybe_crash(span):
            return
        self.sim.schedule_at(interval_end, self._interrupt, span)

    def _maybe_crash(self, span: float) -> bool:
        """Inject a crash inside the next ``span`` active seconds, maybe.

        Draws the time-to-crash from the host's dedicated fault stream
        (exponential around the crash MTBF; the hazard accrues only over
        active compute time, which is exactly what ``span`` covers).
        Returns True when a crash was scheduled instead of the normal
        continuation.  No-op — and no draw — on fault-free hosts.
        """
        f = self.spec.faults
        if f is None or f.crash_mtbf_s is None or span <= 0.0:
            return False
        crash_in = float(f.rng.exponential(f.crash_mtbf_s))
        if crash_in >= span:
            return False
        self.sim.schedule(crash_in, self._fault_crash, crash_in)
        return True

    def _fault_crash(self, active_span: float) -> None:
        """An injected crash: lose in-memory progress, reboot, resume."""
        self._active_s += active_span
        self._done += active_span * self.spec.progress_rate
        self._checkpointed = math.floor(self._done / self._chunk) * self._chunk
        lost_s = self._done - self._checkpointed
        self._done = self._checkpointed
        f = self.spec.faults
        self.telemetry.record_fault("crashes")
        if self.tracer is not None:
            instance = self.instance
            self.tracer.emit(
                "fault.crash", t_sim=self.sim.now,
                host=self.spec.host_id,
                wu=instance.wu.wu_id if instance is not None else None,
                lost_reference_s=lost_s,
                done_fraction=self._done / self._cost if self._cost else 1.0,
            )
        reboot = float(f.rng.exponential(f.reboot_delay_s)) if f.reboot_delay_s > 0 else 0.0
        self.sim.schedule(reboot, self._when_available, self._compute_step)

    def _interrupt(self, active_span: float) -> None:
        """Availability ended mid-workunit: suspend or kill."""
        self._active_s += active_span
        self._done += active_span * self.spec.progress_rate
        # Checkpoints commit at starting-position boundaries.  (math.floor
        # == np.floor bit-for-bit on float64; the scalar form skips a
        # ufunc dispatch in this per-interruption path.)
        self._checkpointed = math.floor(self._done / self._chunk) * self._chunk
        killed = bool(self.rng.random() < KILL_PROBABILITY)
        lost_s = self._done - self._checkpointed
        if killed:
            # Killed: in-memory progress since the last checkpoint is lost.
            self._done = self._checkpointed
        if self.tracer is not None:
            instance = self.instance
            self.tracer.emit(
                "agent.checkpoint", t_sim=self.sim.now,
                host=self.spec.host_id,
                wu=instance.wu.wu_id if instance is not None else None,
                killed=killed,
                lost_reference_s=lost_s if killed else 0.0,
                done_fraction=self._done / self._cost if self._cost else 1.0,
            )
        self._when_available(self._compute_step)

    def _complete(self) -> None:
        instance = self.instance
        if instance is None:
            raise RuntimeError("completion without an active instance")
        rate = self.spec.progress_rate
        self._active_s += (self._cost - self._done) / rate
        self._done = self._cost
        valid = bool(self.rng.random() < self.spec.reliability)
        active_s = self._active_s
        self.instance = None
        self.telemetry.record_workunit_run(
            self.sim.now, active_s, instance.wu.cost_reference_s
        )
        delay = float(self.rng.exponential(self.spec.report_delay_mean_s))
        if self.tracer is not None:
            self.tracer.emit(
                "agent.complete", t_sim=self.sim.now,
                host=self.spec.host_id, wu=instance.wu.wu_id,
                active_s=active_s, report_delay_s=delay,
            )
        quality = ResultQuality.OK if valid else ResultQuality.ERRONEOUS
        f = self.spec.faults
        if f is not None and valid:
            if f.saboteur:
                # Plausible-but-wrong values: passes the range check; only
                # a disagreeing quorum partner can expose it.
                quality = ResultQuality.SABOTAGED
                self.telemetry.record_fault("sabotaged")
                if self.tracer is not None:
                    self.tracer.emit(
                        "fault.sabotage", t_sim=self.sim.now,
                        host=self.spec.host_id, wu=instance.wu.wu_id,
                    )
            elif f.corrupt_prob > 0.0 and f.rng.random() < f.corrupt_prob:
                # Detectably-garbage result (wrong magnitudes, truncated
                # file): the value-range check always rejects it.
                quality = ResultQuality.ERRONEOUS
                self.telemetry.record_fault("corrupted")
                if self.tracer is not None:
                    self.tracer.emit(
                        "fault.corrupt", t_sim=self.sim.now,
                        host=self.spec.host_id, wu=instance.wu.wu_id,
                    )
        self.sim.schedule(delay, self._report, instance, quality, active_s)

    def _report(
        self,
        instance: "Instance",
        quality: ResultQuality,
        active_s: float,
        attempt: int = 0,
    ) -> None:
        f = self.spec.faults
        if (
            f is not None
            and f.report_loss_prob > 0.0
            and float(f.rng.random()) < f.report_loss_prob
        ):
            self.telemetry.record_fault("report_lost")
            if self.tracer is not None:
                self.tracer.emit(
                    "fault.report_lost", t_sim=self.sim.now,
                    host=self.spec.host_id, wu=instance.wu.wu_id,
                    attempt=attempt,
                )
            self._backoff_retry(
                "report-lost", attempt,
                self._report, instance, quality, active_s, attempt + 1,
            )
            return
        accounted = accounted_seconds(self.spec, active_s, self.accounting)
        credit = claimed_credit(self.spec, active_s, self.accounting, self.benchmark)
        valid = quality is not ResultQuality.ERRONEOUS
        if self.tracer is not None:
            self.tracer.emit(
                "agent.report", t_sim=self.sim.now,
                host=self.spec.host_id, wu=instance.wu.wu_id,
                valid=valid, accounted_cpu_s=accounted,
            )
        try:
            self.server.on_result(instance, valid, accounted, quality=quality)
        except ServerUnavailable:
            self._backoff_retry(
                "refused", attempt,
                self._report, instance, quality, active_s, attempt + 1,
            )
            return
        self.telemetry.record_result(self.sim.now, accounted)
        self.telemetry.record_credit(credit)
        if self.tracer is not None:
            self.tracer.emit(
                "host.credit", t_sim=self.sim.now,
                host=self.spec.host_id, wu=instance.wu.wu_id, points=credit,
            )
        self.results_returned += 1
        self._when_available(self._fetch_work)

    # -- fault recovery ----------------------------------------------------

    def _backoff_retry(self, reason: str, attempt: int, callback, *args) -> None:
        """Schedule ``callback(*args)`` after an exponential jittered backoff.

        ``RETRY_BASE_S * 2**attempt`` (exponent capped) scaled by a
        uniform jitter in [0.5, 1.5) drawn from the host's fault stream —
        synchronized retry storms after an outage ends would otherwise
        hammer the server in lockstep.  The continuation is a named bound
        method, so traces and profiles attribute the hop.
        """
        base = RETRY_BASE_S * (2.0 ** min(attempt, RETRY_MAX_EXPONENT))
        f = self.spec.faults
        jitter = 0.5 + float(f.rng.random()) if f is not None else 1.0
        delay = base * jitter
        self.telemetry.record_fault("retries")
        if self.tracer is not None:
            self.tracer.emit(
                "agent.retry", t_sim=self.sim.now,
                host=self.spec.host_id, reason=reason,
                attempt=attempt, delay_s=delay,
            )
        self.sim.schedule(delay, callback, *args)
