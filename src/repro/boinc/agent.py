"""The volunteer agent state machine.

"The agent connects to the server to get new workunit, then it launches the
program [...].  After the computing work is finished, the computing device
sends back the result [...] and asks for an another workunit." (Section 3.1)

Behaviour modeled per the paper:

* computation only progresses while the host's availability trace is on,
  at the host's ``progress_rate`` (speed x duty cycle);
* every availability interruption may be a clean suspend (in-memory state
  kept) or a kill — after a kill, progress rolls back to the last
  checkpoint, i.e. the last completed starting position (Section 4.3);
* finished results are reported after a reconnection delay; the accounted
  run time is the *active wall-clock* time, reproducing the UD agent's
  accounting bias (Section 6);
* a fetched workunit may be silently abandoned (host never reconnects);
  the server's deadline reclaims it;
* an idle agent with no work available polls again a few hours later.

Observability: pass ``tracer=`` to record the agent-channel events
(``agent.fetch`` / ``idle`` / ``abandon`` / ``checkpoint`` / ``complete``
/ ``report``) — see docs/observability.md.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..grid.des import Simulator
from ..grid.host import HostSpec
from ..units import SECONDS_PER_HOUR
from .credit import (
    AccountingMode,
    HostBenchmark,
    accounted_seconds,
    claimed_credit,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Tracer
    from .server import GridServer, Instance
    from .simulator import Telemetry

__all__ = ["VolunteerAgent", "KILL_PROBABILITY", "WORK_POLL_HOURS"]

#: Probability that an availability interruption kills the process (losing
#: progress back to the last starting-position checkpoint) instead of
#: cleanly suspending it.
KILL_PROBABILITY = 0.30

#: Idle agents retry the server after this many hours without work.
WORK_POLL_HOURS = 8.0

#: Lognormal sigma of the per-host benchmark measurement bias (how far the
#: agent's Whetstone-style benchmark drifts from application throughput).
BENCHMARK_BIAS_SIGMA = 0.05


class VolunteerAgent:
    """One volunteer device's agent."""

    def __init__(
        self,
        sim: Simulator,
        server: "GridServer",
        spec: HostSpec,
        telemetry: "Telemetry",
        rng: np.random.Generator,
        accounting: AccountingMode = AccountingMode.UD_WALL_CLOCK,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.sim = sim
        self.server = server
        self.spec = spec
        self.telemetry = telemetry
        self.rng = rng
        self.accounting = accounting
        self.tracer = tracer
        self.benchmark = HostBenchmark(
            host_speed=spec.speed,
            measurement_bias=float(np.exp(rng.normal(0.0, BENCHMARK_BIAS_SIGMA))),
        )
        self.instance: "Instance | None" = None
        # progress state for the current workunit (reference seconds)
        self._cost = 0.0
        self._chunk = 0.0  #: checkpoint granularity = one starting position
        self._done = 0.0  #: committed + in-memory progress
        self._checkpointed = 0.0  #: progress safe on disk
        self._active_s = 0.0  #: accounted active wall-clock so far
        self.results_returned = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin operating (called at the host's project-join time)."""
        self._when_available(self._fetch_work)

    def _when_available(self, action) -> None:
        """Run ``action`` now if the host is available, else at the next
        availability start (agents only act while the device computes).

        The continuation is this bound method itself with ``action`` as
        the scheduled argument — not a closure — so each hop is
        allocation-free and ``des.fire`` / the profiler attribute the
        wait to ``VolunteerAgent._when_available`` instead of a
        ``<lambda>``.
        """
        t = self.sim.now
        if self.spec.trace.is_available(t):
            action()
            return
        nxt = self.spec.trace.next_transition(t)
        if nxt is not None:
            self.sim.schedule_at(nxt, self._when_available, action)
        # else: the host never computes again; it falls silent.

    # -- work fetching -----------------------------------------------------

    def _fetch_work(self) -> None:
        if self.server.all_done:
            return
        instance = self.server.request_work(self.spec.host_id)
        if instance is None:
            poll = float(self.rng.exponential(WORK_POLL_HOURS * SECONDS_PER_HOUR))
            if self.tracer is not None:
                self.tracer.emit(
                    "agent.idle", t_sim=self.sim.now,
                    host=self.spec.host_id, poll_s=max(poll, 600.0),
                )
            self.sim.schedule(max(poll, 600.0), self._when_available, self._fetch_work)
            return
        self.instance = instance
        wu = instance.wu
        self._cost = wu.cost_reference_s
        self._chunk = wu.cost_reference_s / wu.nsep
        self._done = 0.0
        self._checkpointed = 0.0
        self._active_s = 0.0
        if self.tracer is not None:
            self.tracer.emit(
                "agent.fetch", t_sim=self.sim.now,
                host=self.spec.host_id, wu=wu.wu_id,
            )
        if self.rng.random() < self.spec.abandon_prob:
            # Volunteer walks away; the deadline will reclaim the copy and
            # this agent only comes back after it has passed.
            self.instance = None
            if self.tracer is not None:
                self.tracer.emit(
                    "agent.abandon", t_sim=self.sim.now,
                    host=self.spec.host_id, wu=wu.wu_id,
                )
            self.sim.schedule(
                self.server.config.deadline_s * 1.5,
                self._when_available, self._fetch_work,
            )
            return
        self._compute_step()

    # -- computing ---------------------------------------------------------

    def _compute_step(self) -> None:
        """Crunch within the current availability interval."""
        t = self.sim.now
        trace = self.spec.trace
        if not trace.is_available(t):
            self._when_available(self._compute_step)
            return
        interval_end = trace.next_transition(t)
        rate = self.spec.progress_rate
        # Float accumulation in _interrupt can push _done a few ulp past
        # _cost; a negative residual would make sim.schedule raise.
        needed_s = max(0.0, (self._cost - self._done) / rate)
        if interval_end is None or t + needed_s <= interval_end:
            self.sim.schedule(needed_s, self._complete)
            return
        span = interval_end - t
        self.sim.schedule_at(interval_end, self._interrupt, span)

    def _interrupt(self, active_span: float) -> None:
        """Availability ended mid-workunit: suspend or kill."""
        self._active_s += active_span
        self._done += active_span * self.spec.progress_rate
        # Checkpoints commit at starting-position boundaries.  (math.floor
        # == np.floor bit-for-bit on float64; the scalar form skips a
        # ufunc dispatch in this per-interruption path.)
        self._checkpointed = math.floor(self._done / self._chunk) * self._chunk
        killed = bool(self.rng.random() < KILL_PROBABILITY)
        lost_s = self._done - self._checkpointed
        if killed:
            # Killed: in-memory progress since the last checkpoint is lost.
            self._done = self._checkpointed
        if self.tracer is not None:
            instance = self.instance
            self.tracer.emit(
                "agent.checkpoint", t_sim=self.sim.now,
                host=self.spec.host_id,
                wu=instance.wu.wu_id if instance is not None else None,
                killed=killed,
                lost_reference_s=lost_s if killed else 0.0,
                done_fraction=self._done / self._cost if self._cost else 1.0,
            )
        self._when_available(self._compute_step)

    def _complete(self) -> None:
        instance = self.instance
        if instance is None:
            raise RuntimeError("completion without an active instance")
        rate = self.spec.progress_rate
        self._active_s += (self._cost - self._done) / rate
        self._done = self._cost
        valid = bool(self.rng.random() < self.spec.reliability)
        active_s = self._active_s
        self.instance = None
        self.telemetry.record_workunit_run(
            self.sim.now, active_s, instance.wu.cost_reference_s
        )
        delay = float(self.rng.exponential(self.spec.report_delay_mean_s))
        if self.tracer is not None:
            self.tracer.emit(
                "agent.complete", t_sim=self.sim.now,
                host=self.spec.host_id, wu=instance.wu.wu_id,
                active_s=active_s, report_delay_s=delay,
            )
        self.sim.schedule(delay, self._report, instance, valid, active_s)

    def _report(self, instance: "Instance", valid: bool, active_s: float) -> None:
        accounted = accounted_seconds(self.spec, active_s, self.accounting)
        credit = claimed_credit(self.spec, active_s, self.accounting, self.benchmark)
        if self.tracer is not None:
            self.tracer.emit(
                "agent.report", t_sim=self.sim.now,
                host=self.spec.host_id, wu=instance.wu.wu_id,
                valid=valid, accounted_cpu_s=accounted,
            )
        self.server.on_result(instance, valid, accounted)
        self.telemetry.record_result(self.sim.now, accounted)
        self.telemetry.record_credit(credit)
        self.results_returned += 1
        self._when_available(self._fetch_work)
