"""Deterministic random-stream management.

Every stochastic component of the reproduction (protein synthesis, cost-model
noise, host populations, availability traces, ...) draws from an independent,
named child stream of a single root seed.  Named streams make results
insensitive to the *order* in which components initialize: adding a new
consumer never perturbs the draws of existing ones.

Streams are derived with ``numpy.random.SeedSequence`` using a stable 64-bit
hash of the stream name, so the mapping name -> stream is reproducible across
processes and Python versions (unlike built-in ``hash``).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_hash64", "stream", "substream"]


def stable_hash64(name: str) -> int:
    """A stable (process-independent) 64-bit hash of ``name``.

    >>> stable_hash64("proteins") == stable_hash64("proteins")
    True
    >>> stable_hash64("proteins") != stable_hash64("hosts")
    True
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def stream(seed: int, name: str) -> np.random.Generator:
    """Return the named child generator of ``seed``.

    The same ``(seed, name)`` pair always yields a generator producing the
    same sequence, independent of any other stream created before or after.
    """
    seq = np.random.SeedSequence(entropy=seed, spawn_key=(stable_hash64(name),))
    return np.random.default_rng(seq)


def substream(seed: int, name: str, index: int) -> np.random.Generator:
    """Return the ``index``-th child of the named stream.

    Used for per-entity streams (for example one stream per volunteer host)
    so entities can be simulated in any order, or in parallel, without
    changing their individual behaviour.
    """
    if index < 0:
        raise ValueError(f"substream index must be non-negative, got {index}")
    seq = np.random.SeedSequence(
        entropy=seed, spawn_key=(stable_hash64(name), index)
    )
    return np.random.default_rng(seq)
