"""Deterministic fault injection for the volunteer grid.

The paper's premise is that a volunteer grid is *unreliable by design*:
10-day deadlines reclaim silently abandoned copies, redundant computing
(the 1.37 factor) absorbs erroneous results, value-range validation
catches corrupted uploads, and checkpoint-restart bounds the damage of
mid-compute kills.  The happy-path simulator only exercised a fraction of
that machinery; this module injects the operational pain on purpose, so
the reactive mechanisms can be tested — and ablated — under load.

Fault classes (Section 5 of the paper plus the volunteer-computing
failure taxonomy of the related trust/sabotage literature):

* **host crashes** (:class:`CrashFaults`) — the device dies mid-compute;
  in-memory progress since the last starting-position checkpoint is lost
  and the host reboots after a short delay;
* **corrupted results** (:class:`CorruptionFaults`) — wrong energies or
  truncated result files; the server's value-range/quorum checks detect
  them and the workunit is reissued;
* **sabotage hosts** (:class:`SabotageFaults`) — a fixed fraction of the
  fleet persistently returns *plausible-but-wrong* values that pass the
  range check; only quorum comparison (or an adaptive-replication spot
  check forcing a quorum partner) can catch them;
* **server outages** (:class:`OutageFaults`) — windows during which every
  RPC (`request_work`, `on_result`) is refused; agents back off
  exponentially with jitter and retry;
* **report loss** (:class:`ReportLossFaults`) — the result upload is lost
  in transit; the agent retries with backoff.

A :class:`FaultPlan` composes any subset of these.  Determinism contract:
every random draw a fault makes comes from a *dedicated* named substream
of the campaign seed (``fault-host``/``fault-outage``), never from the
agents' or hosts' own streams — so an **empty plan is exactly the
fault-free campaign**, bit for bit (same :class:`~repro.boinc.simulator.
CampaignResult`, same event trace), and two campaigns with the same plan
and seed are identical.  ``tests/test_faults.py`` pins both properties.

Observability: injectors emit ``fault.*`` events, the server emits
``server.refuse`` / ``server.workunit_failed`` and agents emit
``agent.retry`` (see docs/observability.md); error-rate counters land in
the campaign's metrics registry and are summarized by
:class:`FaultReport` (the campaign-level error budget).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from .rng import substream
from .units import SECONDS_PER_DAY, SECONDS_PER_HOUR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .boinc.validator import ValidationStats
    from .maxdo.resultfile import ResultTable
    from .obs import MetricsRegistry

__all__ = [
    "ResultQuality",
    "ServerUnavailable",
    "CrashFaults",
    "CorruptionFaults",
    "SabotageFaults",
    "OutageFaults",
    "ReportLossFaults",
    "FaultPlan",
    "HostFaultState",
    "FaultReport",
    "corrupt_energies",
    "truncate_table",
]


class ResultQuality(enum.Enum):
    """What a returned result actually contains (ground truth).

    The server never sees this directly — it sees what its checks can
    detect: ``ERRONEOUS`` results fail the value-range check (garbage
    magnitudes, truncated files) and are always rejected; ``SABOTAGED``
    results are plausible-but-wrong and pass the range check, so only a
    disagreeing quorum partner exposes them.
    """

    OK = "ok"
    ERRONEOUS = "erroneous"
    SABOTAGED = "sabotaged"


class ServerUnavailable(RuntimeError):
    """An RPC was refused because the server is inside an outage window."""

    def __init__(self, until: float) -> None:
        super().__init__(f"server unavailable until t={until:.0f}s")
        #: campaign time at which the current outage window ends
        self.until = until


# -- fault specs (frozen, composable) --------------------------------------


@dataclass(frozen=True)
class CrashFaults:
    """Host crashes mid-compute, losing un-checkpointed progress."""

    #: mean active compute time between crashes, in days (the hazard only
    #: accrues while the host is actually crunching)
    mtbf_active_days: float = 5.0
    #: mean reboot downtime before computing resumes (seconds)
    reboot_delay_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.mtbf_active_days <= 0 or self.reboot_delay_s < 0:
            raise ValueError("crash MTBF must be > 0 and reboot delay >= 0")


@dataclass(frozen=True)
class CorruptionFaults:
    """A completed result is corrupted in a *detectable* way."""

    #: probability that an otherwise-valid result is corrupted
    prob: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("corruption probability must be in [0, 1]")


@dataclass(frozen=True)
class SabotageFaults:
    """A fraction of hosts persistently return plausible-but-wrong values."""

    #: fraction of the fleet that sabotages every result it returns
    host_fraction: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 <= self.host_fraction <= 1.0:
            raise ValueError("saboteur fraction must be in [0, 1]")


@dataclass(frozen=True)
class OutageFaults:
    """Server outage windows during which every RPC is refused."""

    #: number of outage windows over the campaign horizon
    n_windows: int = 2
    #: mean window duration, hours (exponentially distributed)
    mean_duration_h: float = 12.0

    def __post_init__(self) -> None:
        if self.n_windows < 1 or self.mean_duration_h <= 0:
            raise ValueError("need >= 1 window with positive mean duration")


@dataclass(frozen=True)
class ReportLossFaults:
    """The result upload RPC is lost in transit (agent retries)."""

    #: probability that any one report attempt is lost
    prob: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob < 1.0:
            raise ValueError("report-loss probability must be in [0, 1)")


class HostFaultState:
    """Per-host fault state, derived deterministically from the plan.

    Holds the host's dedicated fault RNG (``substream(seed, "fault-host",
    host_id)``) plus the resolved per-host knobs.  Backoff jitter for
    retries also draws from this stream, so retry timing never perturbs
    the host's behavioural stream.
    """

    __slots__ = (
        "rng",
        "crash_mtbf_s",
        "reboot_delay_s",
        "corrupt_prob",
        "saboteur",
        "report_loss_prob",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        crash_mtbf_s: float | None = None,
        reboot_delay_s: float = 1800.0,
        corrupt_prob: float = 0.0,
        saboteur: bool = False,
        report_loss_prob: float = 0.0,
    ) -> None:
        self.rng = rng
        self.crash_mtbf_s = crash_mtbf_s
        self.reboot_delay_s = reboot_delay_s
        self.corrupt_prob = corrupt_prob
        self.saboteur = saboteur
        self.report_loss_prob = report_loss_prob


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seeded description of what goes wrong, and how often.

    ``FaultPlan.none()`` is the canonical empty plan: no injector runs, no
    extra RNG stream is consumed, and the campaign is bit-identical to one
    with no plan at all.  Specs compose freely::

        plan = FaultPlan(
            corruption=CorruptionFaults(prob=0.1),
            outages=OutageFaults(n_windows=3, mean_duration_h=8.0),
            max_reissues=12,
        )
        scaled_phase1(config=CampaignConfig(faults=plan)).run()
    """

    crashes: CrashFaults | None = None
    corruption: CorruptionFaults | None = None
    sabotage: SabotageFaults | None = None
    outages: OutageFaults | None = None
    report_loss: ReportLossFaults | None = None
    #: bound on per-workunit reissues before the workunit is declared
    #: ``failed`` (terminal) and the campaign degrades gracefully;
    #: None keeps the server's default (unbounded)
    max_reissues: int | None = None

    def __post_init__(self) -> None:
        if self.max_reissues is not None and self.max_reissues < 0:
            raise ValueError("max_reissues must be >= 0 (or None)")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: inject nothing, change nothing."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether any injector (or the reissue bound) is active."""
        return any(
            spec is not None
            for spec in (
                self.crashes,
                self.corruption,
                self.sabotage,
                self.outages,
                self.report_loss,
            )
        ) or self.max_reissues is not None

    @property
    def injects_host_faults(self) -> bool:
        """Whether any host-side injector (or retry machinery) is needed."""
        return self.enabled

    def with_(self, **overrides: Any) -> "FaultPlan":
        """A copy of this plan with fields replaced."""
        return replace(self, **overrides)

    # -- derivation (all draws from dedicated named substreams) ------------

    def host_state(self, seed: int, host_id: int) -> HostFaultState | None:
        """The per-host fault state, or None for an empty plan.

        Host ``i`` always derives the same state from the same (seed,
        plan): the saboteur draw is the first draw of the host's dedicated
        ``fault-host`` substream, so fleet composition is stable under
        growth exactly like the host population itself.
        """
        if not self.injects_host_faults:
            return None
        rng = substream(seed, "fault-host", host_id)
        saboteur = False
        if self.sabotage is not None:
            saboteur = bool(rng.random() < self.sabotage.host_fraction)
        crashes = self.crashes
        return HostFaultState(
            rng=rng,
            crash_mtbf_s=(
                crashes.mtbf_active_days * SECONDS_PER_DAY
                if crashes is not None
                else None
            ),
            reboot_delay_s=(
                crashes.reboot_delay_s if crashes is not None else 1800.0
            ),
            corrupt_prob=(
                self.corruption.prob if self.corruption is not None else 0.0
            ),
            saboteur=saboteur,
            report_loss_prob=(
                self.report_loss.prob if self.report_loss is not None else 0.0
            ),
        )

    def outage_windows(
        self, seed: int, horizon_s: float
    ) -> tuple[tuple[float, float], ...]:
        """Disjoint, sorted ``(start, end)`` outage windows for a campaign.

        Starts are uniform over the first 90% of the horizon (an outage
        beginning at the horizon edge would be invisible); durations are
        exponential around the spec's mean; overlapping windows merge.
        """
        spec = self.outages
        if spec is None:
            return ()
        rng = substream(seed, "fault-outage", 0)
        starts = np.sort(rng.random(spec.n_windows)) * horizon_s * 0.9
        durations = rng.exponential(
            spec.mean_duration_h * SECONDS_PER_HOUR, size=spec.n_windows
        )
        merged: list[tuple[float, float]] = []
        for start, dur in zip(starts, durations):
            end = min(float(start + dur), horizon_s)
            start = float(start)
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            elif end > start:
                merged.append((start, end))
        return tuple(merged)

    # -- CLI spec ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a compact CLI fault spec.

        Comma-separated ``key=value`` entries::

            crash=5            host crash MTBF of 5 active compute days
            corrupt=0.05       5% of valid results corrupted (detectable)
            sabotage=0.02      2% of hosts return plausible-wrong values
            outage=2x12        2 outage windows, ~12 h mean duration
            loss=0.1           10% of report RPCs lost (agent retries)
            maxreissue=10      fail a workunit after 10 reissues

        ``outage=N`` alone uses the default 12 h mean.  An empty spec is
        :meth:`FaultPlan.none`.
        """
        plan = cls.none()
        spec = spec.strip()
        if not spec:
            return plan
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key = key.strip().lower()
            value = value.strip()
            if key == "crash":
                plan = plan.with_(
                    crashes=CrashFaults(mtbf_active_days=float(value))
                )
            elif key == "corrupt":
                plan = plan.with_(corruption=CorruptionFaults(prob=float(value)))
            elif key == "sabotage":
                plan = plan.with_(
                    sabotage=SabotageFaults(host_fraction=float(value))
                )
            elif key == "outage":
                n, x, hours = value.partition("x")
                plan = plan.with_(outages=OutageFaults(
                    n_windows=int(n),
                    mean_duration_h=float(hours) if x else 12.0,
                ))
            elif key == "loss":
                plan = plan.with_(report_loss=ReportLossFaults(prob=float(value)))
            elif key == "maxreissue":
                plan = plan.with_(max_reissues=int(value))
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} (expected crash, corrupt, "
                    "sabotage, outage, loss or maxreissue)"
                )
        return plan

    def describe(self) -> str:
        """One line summarizing the active injectors."""
        if not self.enabled:
            return "no faults"
        parts = []
        if self.crashes is not None:
            parts.append(f"crash mtbf {self.crashes.mtbf_active_days:g}d")
        if self.corruption is not None:
            parts.append(f"corrupt {self.corruption.prob:.0%}")
        if self.sabotage is not None:
            parts.append(f"sabotage {self.sabotage.host_fraction:.0%} of hosts")
        if self.outages is not None:
            parts.append(
                f"{self.outages.n_windows} outages "
                f"~{self.outages.mean_duration_h:g}h"
            )
        if self.report_loss is not None:
            parts.append(f"report loss {self.report_loss.prob:.0%}")
        if self.max_reissues is not None:
            parts.append(f"fail after {self.max_reissues} reissues")
        return ", ".join(parts)


# -- error budget -----------------------------------------------------------

#: fault counter names kept in the campaign metrics registry
#: (``fault.<kind>``), incremented by the injectors and the server
FAULT_COUNTER_KINDS = (
    "crashes",
    "corrupted",
    "sabotaged",
    "report_lost",
    "refused_rpcs",
    "retries",
)


@dataclass(frozen=True)
class FaultReport:
    """The campaign-level error budget.

    A degraded campaign does not hang: workunits whose reissue budget is
    exhausted become terminally ``failed``, the campaign completes with
    the remainder, and this report says what was injected, what the
    defences caught, and what slipped through.
    """

    plan: "FaultPlan"
    #: injected/observed fault counts by kind (see FAULT_COUNTER_KINDS)
    injected: dict[str, int] = field(default_factory=dict)
    #: workunits terminally failed after exhausting the reissue budget
    workunits_failed: int = 0
    #: workunits validated from plausible-but-wrong (sabotaged) results
    bad_validated: int = 0
    #: sabotaged results exposed by a disagreeing quorum
    sabotage_caught: int = 0
    #: detectable-invalid results rejected by the range/quorum checks
    invalid_rejected: int = 0
    #: workunits validated on genuine results
    validated: int = 0
    total_workunits: int = 0

    @classmethod
    def collect(
        cls,
        plan: "FaultPlan",
        stats: "ValidationStats",
        registry: "MetricsRegistry",
        total_workunits: int,
    ) -> "FaultReport":
        injected = {}
        for kind in FAULT_COUNTER_KINDS:
            name = f"fault.{kind}"
            injected[kind] = int(registry.get(name).value) if name in registry else 0
        # Outage-window refusals are counted authoritatively by the server
        # (`server.refuse` -> ValidationStats.refused_rpcs); agent-side
        # telemetry never sees them, so without this the error budget
        # would report 0 refused RPCs for every outage campaign.
        injected["refused_rpcs"] += int(stats.refused_rpcs)
        return cls(
            plan=plan,
            injected=injected,
            workunits_failed=stats.failed,
            bad_validated=stats.bad_validated,
            sabotage_caught=stats.sabotage_caught,
            invalid_rejected=stats.invalid,
            validated=stats.effective - stats.bad_validated,
            total_workunits=total_workunits,
        )

    @property
    def failed_fraction(self) -> float:
        """Fraction of the campaign's workunits terminally failed."""
        if self.total_workunits == 0:
            return 0.0
        return self.workunits_failed / self.total_workunits

    @property
    def bad_validated_fraction(self) -> float:
        """Fraction of *validated* workunits whose science is wrong."""
        effective = self.validated + self.bad_validated
        if effective == 0:
            return 0.0
        return self.bad_validated / effective

    def as_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan.describe(),
            "injected": dict(self.injected),
            "workunits_failed": self.workunits_failed,
            "failed_fraction": self.failed_fraction,
            "bad_validated": self.bad_validated,
            "bad_validated_fraction": self.bad_validated_fraction,
            "sabotage_caught": self.sabotage_caught,
            "invalid_rejected": self.invalid_rejected,
            "validated": self.validated,
            "total_workunits": self.total_workunits,
        }

    def rows(self) -> list[list[str]]:
        """Human-readable (quantity, value) rows for the CLI table."""
        rows = [["fault plan", self.plan.describe()]]
        for kind in FAULT_COUNTER_KINDS:
            if self.injected.get(kind):
                rows.append([f"injected: {kind}", str(self.injected[kind])])
        rows += [
            ["invalid results rejected", str(self.invalid_rejected)],
            ["sabotage caught by quorum", str(self.sabotage_caught)],
            ["bad validations (slipped through)",
             f"{self.bad_validated} ({self.bad_validated_fraction:.1%})"],
            ["workunits failed (reissue budget)",
             f"{self.workunits_failed} ({self.failed_fraction:.1%})"],
            ["workunits validated",
             f"{self.validated + self.bad_validated}/{self.total_workunits}"],
        ]
        return rows


# -- result-file corruption (exercises validation.checks for real) ---------


def corrupt_energies(
    table: "ResultTable", rng: np.random.Generator, n_lines: int = 1
) -> "ResultTable":
    """Corrupt ``n_lines`` energy entries of a result table in place.

    Models a cheating client or a torn upload: the total energy of the
    chosen lines is replaced by a garbage magnitude that
    :class:`repro.validation.checks.ValueRanges` must flag (both via the
    absolute-energy bound and the ``e_tot = e_lj + e_elec`` consistency
    rule).  Returns the table for chaining.
    """
    rec = table.records
    if len(rec) == 0:
        return table
    idx = rng.integers(0, len(rec), size=min(n_lines, len(rec)))
    rec["e_tot"][idx] = 1e9
    return table


def truncate_table(table: "ResultTable", keep_fraction: float = 0.5) -> "ResultTable":
    """A copy of ``table`` with only the first ``keep_fraction`` of lines.

    Models a truncated upload; the line-count check
    (:func:`repro.validation.checks.check_result_file`) must flag the
    mismatch against ``expected_line_count``.
    """
    from .maxdo.resultfile import ResultTable

    n = max(1, int(len(table.records) * keep_fraction))
    return ResultTable(header=table.header, records=table.records[:n].copy())
