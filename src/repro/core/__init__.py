"""The paper's primary contribution: preparing and accounting a volunteer-grid
campaign.

* :mod:`repro.core.workunit` — workunit/result records and the id scheme;
* :mod:`repro.core.packaging` — slicing the cross-docking workload into
  workunits of a target duration (Section 4.2, Figure 4);
* :mod:`repro.core.estimation` — formula (1) total-work estimation and the
  Grid'5000 calibration experiment (Section 4.1, Table 1);
* :mod:`repro.core.campaign` — protein release ordering and progression
  accounting (Sections 5.1–5.2, Figure 7);
* :mod:`repro.core.metrics` — virtual full-time processors, redundancy,
  speed-down and grid equivalence (Sections 3.1, 5.1, 6, Table 2);
* :mod:`repro.core.projection` — the phase-II scaling model (Section 7,
  Table 3).
"""

from .campaign import CampaignPlan
from .estimation import EstimateReport, calibration_experiment, estimate_total_work
from .metrics import (
    CampaignMetrics,
    dedicated_equivalent,
    redundancy_factor,
    speed_down_net,
    speed_down_raw,
    virtual_full_time_processors,
)
from .packaging import PackagingPolicy, WorkUnitPlan, positions_per_workunit
from .projection import Phase2Projection, project_phase2
from .workunit import WorkUnit, WorkUnitStatus

__all__ = [
    "CampaignPlan",
    "EstimateReport",
    "calibration_experiment",
    "estimate_total_work",
    "CampaignMetrics",
    "dedicated_equivalent",
    "redundancy_factor",
    "speed_down_net",
    "speed_down_raw",
    "virtual_full_time_processors",
    "PackagingPolicy",
    "WorkUnitPlan",
    "positions_per_workunit",
    "Phase2Projection",
    "project_phase2",
    "WorkUnit",
    "WorkUnitStatus",
]
