"""Grid performance metrics (Sections 3.1, 5.1 and 6).

The paper's central measuring stick is the *virtual full-time processor*
(VFTP): "How many processors do we need to generate 10 years of cpu time
for 1 day?" — i.e. CPU time delivered per unit wall-clock, expressed in
always-on processors.  On top of it:

* the **redundancy factor** — results disclosed / effective results
  (1.37 for phase I);
* the **raw speed-down** — volunteer CPU time consumed / reference CPU
  time needed (5.43);
* the **net speed-down** — raw / redundancy (3.96): how much slower one
  volunteer CPU-second is than a reference CPU-second at producing useful
  work;
* the **dedicated equivalent** — reference processors that would complete
  the same useful work in the same wall-clock span (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import SECONDS_PER_DAY

__all__ = [
    "virtual_full_time_processors",
    "redundancy_factor",
    "speed_down_raw",
    "speed_down_net",
    "dedicated_equivalent",
    "CampaignMetrics",
]


def virtual_full_time_processors(cpu_seconds: float, span_seconds: float) -> float:
    """CPU time per wall-clock time, in always-on processors.

    >>> virtual_full_time_processors(10 * 365 * 86400, 86400)  # 10 y in 1 d
    3650.0
    """
    if span_seconds <= 0:
        raise ValueError("span must be positive")
    if cpu_seconds < 0:
        raise ValueError("cpu time must be non-negative")
    return cpu_seconds / span_seconds


def redundancy_factor(results_disclosed: int, results_effective: int) -> float:
    """Disclosed / effective results (paper: 5,418,010 / 3,936,010 = 1.37)."""
    if results_effective <= 0:
        raise ValueError("effective results must be positive")
    if results_disclosed < results_effective:
        raise ValueError("disclosed results cannot be fewer than effective ones")
    return results_disclosed / results_effective


def speed_down_raw(consumed_cpu_s: float, reference_cpu_s: float) -> float:
    """Volunteer CPU consumed over reference CPU needed (paper: 5.43)."""
    if reference_cpu_s <= 0:
        raise ValueError("reference cpu time must be positive")
    return consumed_cpu_s / reference_cpu_s


def speed_down_net(raw: float, redundancy: float) -> float:
    """Speed-down once redundant copies are discounted (paper: 3.96)."""
    if redundancy < 1.0:
        raise ValueError("redundancy factor is at least 1")
    return raw / redundancy


def dedicated_equivalent(reference_cpu_s: float, span_seconds: float) -> float:
    """Dedicated reference processors doing the same useful work in the
    same span (Table 2; assumes the dedicated grid is optimally used)."""
    return virtual_full_time_processors(reference_cpu_s, span_seconds)


@dataclass(frozen=True)
class CampaignMetrics:
    """Aggregated accounting of one campaign (measured or simulated)."""

    span_seconds: float  #: wall-clock duration of the period
    consumed_cpu_s: float  #: volunteer CPU time consumed (all copies)
    useful_reference_cpu_s: float  #: reference CPU time of validated work
    results_disclosed: int
    results_effective: int

    @property
    def vftp(self) -> float:
        """Average virtual full-time processors over the period."""
        return virtual_full_time_processors(self.consumed_cpu_s, self.span_seconds)

    @property
    def redundancy(self) -> float:
        return redundancy_factor(self.results_disclosed, self.results_effective)

    @property
    def useful_result_fraction(self) -> float:
        """Fraction of received results that were useful (paper: 73%)."""
        return self.results_effective / self.results_disclosed

    @property
    def speed_down_raw(self) -> float:
        return speed_down_raw(self.consumed_cpu_s, self.useful_reference_cpu_s)

    @property
    def speed_down_net(self) -> float:
        return speed_down_net(self.speed_down_raw, self.redundancy)

    @property
    def dedicated_equivalent(self) -> float:
        """Table 2's right column for this period."""
        return dedicated_equivalent(self.useful_reference_cpu_s, self.span_seconds)

    @property
    def mean_device_seconds_per_result(self) -> float:
        """Average volunteer CPU time per disclosed result (paper: ~13 h)."""
        if self.results_disclosed == 0:
            raise ValueError("no results disclosed")
        return self.consumed_cpu_s / self.results_disclosed

    def equivalence_row(self) -> tuple[int, int]:
        """One Table 2 row: (VFTP, dedicated-grid processors)."""
        return (round(self.vftp), round(self.dedicated_equivalent))

    def as_dict(self) -> dict[str, float]:
        """JSON-safe dump: the raw accounting plus every derived metric
        (what campaign reports and span reconciliation compare against)."""
        return {
            "span_seconds": self.span_seconds,
            "consumed_cpu_s": self.consumed_cpu_s,
            "useful_reference_cpu_s": self.useful_reference_cpu_s,
            "results_disclosed": self.results_disclosed,
            "results_effective": self.results_effective,
            "vftp": self.vftp,
            "redundancy": self.redundancy,
            "useful_result_fraction": self.useful_result_fraction,
            "speed_down_raw": self.speed_down_raw,
            "speed_down_net": self.speed_down_net,
            "dedicated_equivalent": self.dedicated_equivalent,
        }

    @property
    def cpu_days_per_day(self) -> float:
        """CPU-days delivered per wall-clock day (the VFTP definition)."""
        return self.consumed_cpu_s / SECONDS_PER_DAY / (
            self.span_seconds / SECONDS_PER_DAY
        )
