"""Phase-II projection (Section 7, Table 3).

After phase I, the scientists plan to dock ~4,000 proteins with the number
of docking points cut by a factor of 100, giving a workload ratio of

    R = 4000^2 / (168^2 * 100) ~ 5.66

over phase I.  The projection then answers three questions with VFTP
arithmetic:

* at phase-I throughput, how long would phase II take?  (~90 weeks)
* how many VFTP finish it in 40 weeks?  (59,730)
* how many members is that, given the observed VFTP-per-member yield and a
  25% grid share?  (~1,300,000 members, i.e. ~1,000,000 new volunteers)
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..units import SECONDS_PER_WEEK

__all__ = ["Phase2Projection", "work_ratio", "project_phase2"]


def work_ratio(
    n_proteins_new: int,
    n_proteins_old: int = constants.N_PROTEINS,
    point_reduction: float = constants.PHASE2_POINT_REDUCTION,
) -> float:
    """Workload ratio new/old: quadratic in proteins, linear in points.

    >>> round(work_ratio(4000), 2)
    5.67
    """
    if n_proteins_new < 1 or n_proteins_old < 1:
        raise ValueError("protein counts must be positive")
    if point_reduction <= 0:
        raise ValueError("point reduction must be positive")
    return n_proteins_new**2 / (n_proteins_old**2 * point_reduction)


@dataclass(frozen=True)
class Phase2Projection:
    """Table 3, computed: phase-I observation and phase-II requirement."""

    phase1_cpu_s: float
    phase1_weeks: float
    phase2_cpu_s: float
    phase2_weeks: float
    phase1_vftp: float
    phase2_vftp: float
    vftp_per_member: float
    phase1_members: float
    phase2_members: float

    @property
    def ratio(self) -> float:
        """Phase II / phase I workload ratio."""
        return self.phase2_cpu_s / self.phase1_cpu_s

    @property
    def weeks_at_phase1_rate(self) -> float:
        """Phase-II duration if throughput stays at the phase-I level
        (paper: ~90 weeks, "1 year and 9 months")."""
        return self.phase1_weeks * self.ratio

    def members_needed(self, grid_share: float) -> float:
        """Members required when HCMD only receives ``grid_share`` of the
        grid (paper: 25% share -> ~1,300,000 members)."""
        if not 0 < grid_share <= 1:
            raise ValueError("grid share must be in (0, 1]")
        return self.phase2_members / grid_share

    def rows(self) -> list[tuple[str, float, float]]:
        """Table 3's rows: (label, phase I, phase II)."""
        return [
            ("cpu time in s", self.phase1_cpu_s, self.phase2_cpu_s),
            ("Nb weeks", self.phase1_weeks, self.phase2_weeks),
            ("Nb virtual full-time processors", self.phase1_vftp, self.phase2_vftp),
            ("Nb members", self.phase1_members, self.phase2_members),
        ]


def project_phase2(
    phase1_cpu_s: float = constants.PHASE1_CPU_S,
    phase1_weeks: float = constants.PHASE1_WEEKS,
    phase1_members: float = constants.PHASE1_MEMBERS,
    phase2_weeks: float = constants.PHASE2_WEEKS,
    n_proteins_new: int = constants.PHASE2_N_PROTEINS,
    n_proteins_old: int = constants.N_PROTEINS,
    point_reduction: float = constants.PHASE2_POINT_REDUCTION,
) -> Phase2Projection:
    """Reproduce Table 3 from first principles.

    ``phase1_cpu_s`` is the CPU time consumed during the 16-week full-power
    phase; members are converted through the phase-I VFTP-per-member yield.
    """
    ratio = work_ratio(n_proteins_new, n_proteins_old, point_reduction)
    phase2_cpu_s = phase1_cpu_s * ratio
    phase1_vftp = phase1_cpu_s / (phase1_weeks * SECONDS_PER_WEEK)
    phase2_vftp = phase2_cpu_s / (phase2_weeks * SECONDS_PER_WEEK)
    vftp_per_member = phase1_vftp / phase1_members
    phase2_members = phase2_vftp / vftp_per_member
    return Phase2Projection(
        phase1_cpu_s=phase1_cpu_s,
        phase1_weeks=phase1_weeks,
        phase2_cpu_s=phase2_cpu_s,
        phase2_weeks=phase2_weeks,
        phase1_vftp=phase1_vftp,
        phase2_vftp=phase2_vftp,
        vftp_per_member=vftp_per_member,
        phase1_members=phase1_members,
        phase2_members=phase2_members,
    )
