"""Campaign planning: release order and progression accounting.

"The World Community Grid team decided to launch the workunit of one protein
after an other.  They also decided to first launch the protein that required
less computing time" (Section 5.1) — easier failure detection early, and
newer/faster devices absorb the expensive proteins later.

The release unit is a *receptor batch*: all couples ``(p, *)`` of one
receptor protein ``p``.  Results ship back to the scientists "when one
protein has been docked with the 168 others" (Section 5.2).

This module orders the batches, exposes per-batch work totals, and converts
"useful work done so far" into the per-protein progression curve of
Figure 7 (where 85% of the proteins docked corresponds to only 47% of the
computation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..maxdo.cost_model import CostModel
from ..proteins.library import ProteinLibrary

__all__ = ["CampaignPlan", "ProgressionSnapshot"]


@dataclass(frozen=True)
class ProgressionSnapshot:
    """Per-protein completion state at one instant (Figure 7).

    ``fractions`` follows the release order: entry ``k`` is the completed
    fraction of the ``k``-th *released* protein batch.
    """

    work_fraction: float  #: fraction of total useful work done
    fractions: np.ndarray  #: per-batch completion in release order

    @property
    def proteins_complete(self) -> int:
        # Tolerate cumulative-sum rounding when the campaign is exactly done.
        return int((self.fractions >= 1.0 - 1e-9).sum())

    @property
    def protein_fraction_complete(self) -> float:
        """Fraction of proteins fully docked — the Figure 7 X-axis anchor."""
        return self.proteins_complete / len(self.fractions)


class CampaignPlan:
    """Receptor-batch release schedule over a cost model.

    The paper's deployment released the cheapest receptor first
    (``least-cost``, the default): failures surface early on fast-turnaround
    batches and the ever-growing fleet absorbs the expensive proteins
    later.  Alternative policies back the scheduling ablation:

    * ``largest-first`` — LPT-style, classically good for makespan but the
      opposite of the paper's early-feedback goal;
    * ``index`` — natural library order (no policy);
    * ``random`` — seeded shuffle.
    """

    POLICIES = ("least-cost", "largest-first", "index", "random")

    def __init__(
        self,
        library: ProteinLibrary,
        cost_model: CostModel,
        policy: str = "least-cost",
    ) -> None:
        if len(library) != cost_model.n_proteins:
            raise ValueError("library and cost model sizes differ")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown release policy {policy!r}")
        self.library = library
        self.cost_model = cost_model
        self.policy = policy
        #: reference CPU seconds of each receptor batch (all its couples)
        self.batch_work = (
            library.nsep.astype(np.float64) * cost_model.mct.sum(axis=1)
        )
        #: receptor indices in release order
        self.release_order = self._order(policy)
        self._ordered_work = self.batch_work[self.release_order]
        self._cum_work = np.concatenate([[0.0], np.cumsum(self._ordered_work)])

    def _order(self, policy: str) -> np.ndarray:
        if policy == "least-cost":
            return np.argsort(self.batch_work, kind="stable")
        if policy == "largest-first":
            return np.argsort(-self.batch_work, kind="stable")
        if policy == "index":
            return np.arange(len(self.library))
        from ..rng import stream

        rng = stream(self.library.seed, "release-order")
        return rng.permutation(len(self.library))

    @property
    def total_work(self) -> float:
        """Total reference CPU seconds (formula (1))."""
        return float(self._cum_work[-1])

    def batch_release_fraction(self, k: int) -> float:
        """Fraction of total work contained in the first ``k`` batches."""
        if not 0 <= k <= len(self.library):
            raise ValueError(f"k out of range: {k}")
        return float(self._cum_work[k] / self.total_work)

    def ordered_couples(
        self, batch_lo: int = 0, batch_hi: int | None = None
    ) -> list[tuple[int, int]]:
        """Couples in release order: batch by batch, ligands in index
        order — the order workunits become available on the server.

        ``batch_lo``/``batch_hi`` select a contiguous release-position
        range of receptor batches (a campaign shard materializes only its
        own slice instead of the full couple list); the default is the
        whole campaign.
        """
        n = len(self.library)
        if batch_hi is None:
            batch_hi = n
        if not 0 <= batch_lo <= batch_hi <= n:
            raise ValueError(
                f"batch range [{batch_lo}, {batch_hi}) outside [0, {n}]"
            )
        return [
            (int(r), j)
            for r in self.release_order[batch_lo:batch_hi]
            for j in range(n)
        ]

    def snapshot(self, work_done: float) -> ProgressionSnapshot:
        """Progression after ``work_done`` reference seconds of useful work.

        Work is modeled as flowing through the batches in release order
        (the server drains one receptor batch before the next), which is
        how the protein-after-protein launch behaves at fluid scale.
        """
        work_done = float(np.clip(work_done, 0.0, self.total_work))
        fractions = np.clip(
            (work_done - self._cum_work[:-1]) / self._ordered_work, 0.0, 1.0
        )
        return ProgressionSnapshot(
            work_fraction=work_done / self.total_work, fractions=fractions
        )

    def cumulative_percent_curve(
        self, work_done: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """The Figure 7 rendering: X = protein rank (release order),
        Y = cumulative percentage of total computation up to that protein,
        split into computed and remaining parts via the snapshot."""
        snap = self.snapshot(work_done)
        cum_pct = self._cum_work[1:] / self.total_work * 100.0
        done_pct = (
            np.cumsum(self._ordered_work * snap.fractions) / self.total_work * 100.0
        )
        return cum_pct, done_pct

    def work_at_protein_fraction(self, protein_fraction: float) -> float:
        """Useful-work fraction when ``protein_fraction`` of the proteins
        are complete — the Figure 7 anchor (85% proteins -> 47% work)."""
        if not 0.0 <= protein_fraction <= 1.0:
            raise ValueError("protein_fraction must be in [0, 1]")
        k = int(round(protein_fraction * len(self.library)))
        return self.batch_release_fraction(k)
