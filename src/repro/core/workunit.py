"""Workunit records.

A workunit is the unit of distribution on the volunteer grid: "computing
work (data + program)" (Section 3.1).  For HCMD a workunit is a slice of
one couple's starting positions — never more than one couple per workunit
(Section 4.2's technical constraint, which avoids merge complications).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import constants

__all__ = ["WorkUnit", "WorkUnitStatus", "workunit_input_bytes"]


class WorkUnitStatus(enum.Enum):
    """Server-side lifecycle of a workunit."""

    UNRELEASED = "unreleased"  #: receptor batch not yet opened
    READY = "ready"  #: available for distribution
    IN_FLIGHT = "in_flight"  #: at least one copy on a volunteer
    VALID = "valid"  #: a canonical (validated) result exists


@dataclass(frozen=True)
class WorkUnit:
    """One slice of one couple's starting positions.

    ``isep_start`` is 1-based, matching the paper's notation
    ``isep in [1..Nsep(p1)]``; the slice covers positions
    ``[isep_start, isep_start + nsep - 1]``.
    """

    wu_id: int
    receptor: int  #: library index of p1 (fixed protein)
    ligand: int  #: library index of p2 (mobile protein)
    isep_start: int
    nsep: int  #: number of starting positions in this slice
    cost_reference_s: float  #: reference-CPU seconds (Opteron 2 GHz)

    def __post_init__(self) -> None:
        if self.isep_start < 1:
            raise ValueError(f"isep_start is 1-based, got {self.isep_start}")
        if self.nsep < 1:
            raise ValueError(f"a workunit needs >= 1 position, got {self.nsep}")
        if self.cost_reference_s <= 0:
            raise ValueError("cost must be positive")

    @property
    def isep_end(self) -> int:
        """Last starting position of the slice (inclusive, 1-based)."""
        return self.isep_start + self.nsep - 1

    @property
    def couple(self) -> tuple[int, int]:
        return (self.receptor, self.ligand)


def workunit_input_bytes(
    receptor_beads: int, ligand_beads: int, program_bytes: int = 1_200_000
) -> int:
    """Input volume of one workunit: program + the two protein files +
    parameters.

    The paper bounds this at 2 MB; each bead line costs ~60 ASCII bytes in
    a reduced-model coordinate file.
    """
    protein_bytes = 60 * (receptor_beads + ligand_beads)
    params_bytes = 512
    total = program_bytes + protein_bytes + params_bytes
    if total > constants.MAX_WORKUNIT_INPUT_BYTES:
        raise ValueError(
            f"workunit input {total} exceeds the {constants.MAX_WORKUNIT_INPUT_BYTES}"
            " byte grid constraint"
        )
    return total
