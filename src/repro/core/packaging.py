"""Workunit packaging (Section 4.2).

The whole work of formula (1) must be sliced into pieces that last
approximately ``h`` hours on the reference processor, under two technical
constraints: a workunit covers exactly one couple ``(p1, p2)``, and only the
number of starting positions may vary (orientations are fixed at 21
couples).  The paper's slicing rule per couple is

    nsep = 1                      if floor(h / Mct(p1,p2)) <= 1
    nsep = Nsep(p1)               if floor(h / Mct(p1,p2)) >= Nsep(p1)
    nsep = floor(h / Mct(p1,p2))  otherwise

yielding ``ceil(Nsep(p1) / nsep)`` workunits for the couple.  The paper
notes there are "several methods to build workunits" with sub-goals such as
decreasing the number of small workunits or minimizing the workunit count —
those variants are implemented as strategies and compared in the ablation
benchmarks:

* ``floor`` — the paper's rule (default);
* ``round`` — rounds instead of flooring (softer ``h``, fewer workunits);
* ``merge-tail`` — the paper's rule, but a small remainder slice is merged
  into its neighbour (fewer tiny workunits);
* ``even`` — same workunit count as ``floor`` but positions spread evenly
  (narrower duration distribution).

Everything population-level (workunit counts, duration histograms — the
data behind Figure 4) is computed vectorized over the 168 x 168 couple
matrix without materializing millions of workunit records; materialization
is reserved for the (scaled) discrete-event simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Literal

import numpy as np

from ..maxdo.cost_model import CostModel
from ..units import hours as hours_to_s
from .workunit import WorkUnit

__all__ = ["PackagingPolicy", "WorkUnitPlan", "positions_per_workunit"]

Strategy = Literal["floor", "round", "merge-tail", "even"]


@dataclass(frozen=True)
class PackagingPolicy:
    """How to slice couples into workunits."""

    target_hours: float = 10.0
    strategy: Strategy = "floor"
    #: ``merge-tail``: remainders at most this fraction of a full slice are
    #: folded into a neighbouring workunit.
    merge_tail_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.target_hours <= 0:
            raise ValueError(f"target_hours must be positive, got {self.target_hours}")
        if self.strategy not in ("floor", "round", "merge-tail", "even"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if not 0.0 <= self.merge_tail_fraction <= 1.0:
            raise ValueError("merge_tail_fraction must be in [0, 1]")

    @property
    def target_seconds(self) -> float:
        return hours_to_s(self.target_hours)


def positions_per_workunit(
    mct: np.ndarray, nsep: np.ndarray, target_seconds: float, rounding: str = "floor"
) -> np.ndarray:
    """The paper's ``nsep`` rule, vectorized over the couple matrix.

    Returns an (n, n) integer matrix: positions per (full) workunit for each
    couple, clamped to ``[1, Nsep(p1)]``.
    """
    if target_seconds <= 0:
        raise ValueError("target duration must be positive")
    raw = target_seconds / np.asarray(mct, dtype=np.float64)
    if rounding == "floor":
        per_wu = np.floor(raw)
    elif rounding == "round":
        per_wu = np.round(raw)
    else:
        raise ValueError(f"unknown rounding {rounding!r}")
    per_wu = np.maximum(per_wu, 1.0)
    limit = np.asarray(nsep, dtype=np.float64)[:, None]
    return np.minimum(per_wu, limit).astype(np.int64)


class WorkUnitPlan:
    """A packaged campaign: per-couple slice sizes and lazy aggregates.

    The plan never materializes individual workunits for aggregate queries;
    each couple contributes at most two distinct workunit durations, so the
    full duration distribution is exact with O(n^2) memory.
    """

    def __init__(self, cost_model: CostModel, policy: PackagingPolicy) -> None:
        self.cost_model = cost_model
        self.policy = policy
        self.nsep = cost_model.nsep
        self.mct = cost_model.mct
        n = cost_model.n_proteins

        rounding = "round" if policy.strategy == "round" else "floor"
        self.per_wu = positions_per_workunit(
            self.mct, self.nsep, policy.target_seconds, rounding
        )
        nsep_col = self.nsep[:, None].astype(np.int64)
        self.counts = -(-nsep_col // self.per_wu)  # ceil division
        #: positions in the last (remainder) slice, in [1, per_wu]
        self.remainders = nsep_col - (self.counts - 1) * self.per_wu

        if policy.strategy == "merge-tail":
            mergeable = (self.counts >= 2) & (
                self.remainders <= policy.merge_tail_fraction * self.per_wu
            )
        else:
            mergeable = np.zeros((n, n), dtype=bool)
        self.merged = mergeable

    # -- aggregate queries (exact, vectorized) ---------------------------

    def total_workunits(self) -> int:
        """Number of workunits the plan generates."""
        return int(self.counts.sum() - self.merged.sum())

    def _duration_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All distinct (duration, multiplicity) pairs, flattened.

        Each couple yields at most two duration values; see the strategy
        definitions in the module docstring.
        """
        mct = self.mct
        if self.policy.strategy == "even":
            # counts preserved, sizes evened: Nsep = count*lo + hi_extra
            nsep_col = self.nsep[:, None].astype(np.int64)
            lo = nsep_col // self.counts
            hi_extra = nsep_col - lo * self.counts  # couples with size lo+1
            d1 = lo * mct
            w1 = self.counts - hi_extra
            d2 = (lo + 1) * mct
            w2 = hi_extra
        else:
            full_w = self.counts - 1
            d1 = self.per_wu * mct
            d2 = self.remainders * mct
            w1 = full_w.copy()
            w2 = np.ones_like(full_w)
            if self.policy.strategy == "merge-tail":
                # merged couples: one full slice absorbs the remainder
                m = self.merged
                w1 = np.where(m, full_w - 1, full_w)
                d2 = np.where(m, (self.per_wu + self.remainders) * mct, d2)
        durations = np.concatenate([d1.ravel(), d2.ravel()])
        weights = np.concatenate([w1.ravel(), w2.ravel()])
        keep = weights > 0
        return durations[keep], weights[keep].astype(np.float64)

    def duration_histogram(
        self, bin_edges: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Workunit-duration histogram (reference seconds) — Figure 4.

        Returns ``(bin_edges, counts)``; durations outside the edges are
        clipped into the terminal bins so the counts sum to the total.
        """
        durations, weights = self._duration_pairs()
        edges = np.asarray(bin_edges, dtype=np.float64)
        clipped = np.clip(durations, edges[0], np.nextafter(edges[-1], 0))
        counts, _ = np.histogram(clipped, bins=edges, weights=weights)
        return edges, counts

    def duration_stats(self) -> dict[str, float]:
        """Weighted stats of the workunit reference durations (seconds)."""
        durations, weights = self._duration_pairs()
        total_w = weights.sum()
        mean = float((durations * weights).sum() / total_w)
        var = float((weights * (durations - mean) ** 2).sum() / total_w)
        return {
            "count": float(total_w),
            "mean": mean,
            "std": float(np.sqrt(var)),
            "min": float(durations.min()),
            "max": float(durations.max()),
        }

    def total_reference_cpu(self) -> float:
        """Total reference CPU seconds across all workunits.

        Invariant under the packaging strategy: slicing never creates or
        destroys work (equals ``cost_model.total_reference_cpu()``).
        """
        durations, weights = self._duration_pairs()
        return float((durations * weights).sum())

    # -- materialization (for the discrete-event simulations) ------------

    def couple_sizes(self, receptor: int, ligand: int) -> list[int]:
        """Slice sizes (positions per workunit) for one couple, in isep
        order.  Sums exactly to ``Nsep(receptor)`` for every strategy."""
        count = int(self.counts[receptor, ligand])
        per = int(self.per_wu[receptor, ligand])
        rem = int(self.remainders[receptor, ligand])
        if self.policy.strategy == "even":
            total = int(self.nsep[receptor])
            lo = total // count
            hi_extra = total - lo * count
            return [lo + 1] * hi_extra + [lo] * (count - hi_extra)
        sizes = [per] * (count - 1) + [rem]
        if self.policy.strategy == "merge-tail" and self.merged[receptor, ligand]:
            sizes = [per] * (count - 2) + [per + rem]
        return sizes

    def iter_workunits(
        self,
        couples: Iterable[tuple[int, int]] | None = None,
        id_start: int = 0,
    ) -> Iterator[WorkUnit]:
        """Materialize workunits couple by couple (1-based isep slices)."""
        if couples is None:
            n = self.cost_model.n_proteins
            couples = ((i, j) for i in range(n) for j in range(n))
        wu_id = id_start
        for i, j in couples:
            mct = float(self.mct[i, j])
            isep = 1
            for size in self.couple_sizes(i, j):
                yield WorkUnit(
                    wu_id=wu_id,
                    receptor=i,
                    ligand=j,
                    isep_start=isep,
                    nsep=size,
                    cost_reference_s=size * mct,
                )
                wu_id += 1
                isep += size
