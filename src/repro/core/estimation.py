"""Total-work estimation and the calibration experiment (Section 4.1).

Before launching on the grid, the total workload is estimated with
formula (1):

    T_total = sum_{p1, p2 in P} Nsep(p1) * 21 * ct_iter(p1, p2)

where ``ct_iter`` comes from a one-day calibration campaign on a dedicated
grid (Grid'5000: 640 Opteron 2 GHz processors, all 168^2 couples sampled,
~73 CPU-days consumed).  This module reproduces both the estimate and the
calibration campaign itself (on the simulated dedicated grid the sampling
plan is executed by :mod:`repro.dedicated`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..maxdo.cost_model import CostModel
from ..maxdo.resultfile import BYTES_PER_LINE
from ..proteins.library import ProteinLibrary
from ..units import SECONDS_PER_DAY, seconds_to_ydhms

__all__ = [
    "EstimateReport",
    "estimate_total_work",
    "CalibrationPlan",
    "calibration_experiment",
]


@dataclass(frozen=True)
class EstimateReport:
    """Everything Section 4.1 derives before packaging."""

    n_proteins: int
    total_reference_cpu_s: float
    max_workunits: int
    result_lines: int
    result_bytes: int

    @property
    def total_ydhms(self) -> str:
        """The paper's headline figure, e.g. ``1,488:237:19:45:54``."""
        return str(seconds_to_ydhms(self.total_reference_cpu_s))

    @property
    def result_gib(self) -> float:
        """Projected result-dataset volume in GiB (paper: 123 GB)."""
        return self.result_bytes / 1024**3


def estimate_total_work(
    library: ProteinLibrary, cost_model: CostModel
) -> EstimateReport:
    """Apply formula (1) and derive the campaign-scale quantities."""
    total = cost_model.total_reference_cpu()
    max_wu = library.total_max_workunits
    # One result line per (isep, orientation couple) optimum.
    lines = int(library.nsep.sum()) * len(library) * constants.N_ROT_COUPLES
    return EstimateReport(
        n_proteins=len(library),
        total_reference_cpu_s=total,
        max_workunits=max_wu,
        result_lines=lines,
        result_bytes=lines * BYTES_PER_LINE,
    )


@dataclass(frozen=True)
class CalibrationPlan:
    """The Grid'5000 calibration campaign: one sample per couple.

    ``samples_per_couple`` is the number of orientation-couple evaluations
    measured per couple (at one starting position); the slope of the linear
    model then predicts everything else.  The paper's campaign consumed
    ~73 CPU-days on 640 processors within a one-day reservation.
    """

    n_couples: int
    samples_per_couple: int
    n_processors: int
    cpu_seconds: float
    longest_task_s: float

    @property
    def cpu_days(self) -> float:
        return self.cpu_seconds / SECONDS_PER_DAY

    @property
    def makespan_lower_bound_s(self) -> float:
        """LPT-style bound: max(total/p, longest single task)."""
        return max(self.cpu_seconds / self.n_processors, self.longest_task_s)

    @property
    def fits_in_reservation(self) -> bool:
        """Whether the bound fits the paper's one-day reservation."""
        return self.makespan_lower_bound_s <= SECONDS_PER_DAY


def calibration_experiment(
    cost_model: CostModel,
    n_processors: int = constants.CALIBRATION_PROCESSORS,
    samples_per_couple: int = 7,
) -> tuple[CalibrationPlan, np.ndarray]:
    """Plan and "run" the calibration campaign.

    Returns the plan and the *recovered* ``Mct`` matrix: per-couple measured
    time divided by the sampled fraction — what the packaging layer would
    have used, had it only seen the measurements.  With the default 7
    orientation-couple samples per couple the campaign consumes ~73 CPU-days
    for the phase-1 matrix, matching the paper's figure.
    """
    if samples_per_couple < 1:
        raise ValueError("need at least one sample per couple")
    n = cost_model.n_proteins
    measured = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            measured[i, j] = cost_model.measured_ct(i, j, 1, samples_per_couple)
    recovered = measured * (cost_model.n_couples / samples_per_couple)
    plan = CalibrationPlan(
        n_couples=n * n,
        samples_per_couple=samples_per_couple,
        n_processors=n_processors,
        cpu_seconds=float(measured.sum()),
        longest_task_s=float(measured.max()),
    )
    return plan, recovered
