"""Dedicated-grid (Grid'5000-like) simulator.

The paper uses a dedicated grid twice: to run the one-day calibration
campaign that measures the ``Mct`` matrix (640 Opteron 2 GHz processors,
Section 4.1), and as the comparison point for the volunteer grid
(Section 6, Table 2 — with the caveat that the comparison "supposes the
dedicated grid is optimally used").

:mod:`repro.dedicated.cluster` models homogeneous always-on processors;
:mod:`repro.dedicated.simulator` schedules task lists on them (FCFS list
scheduling, which for identical machines is a 2-approximation of the
optimal makespan — close enough to "optimally used").
"""

from .cluster import Cluster
from .simulator import DedicatedGridSimulation, DedicatedRunResult

__all__ = ["Cluster", "DedicatedGridSimulation", "DedicatedRunResult"]
