"""Dedicated-grid campaign simulation.

Two uses, mirroring the paper:

* :meth:`DedicatedGridSimulation.run_calibration` — the Grid'5000
  measurement campaign of Section 4.1: every couple sampled once on 640
  reference processors inside a one-day reservation;
* :meth:`DedicatedGridSimulation.run_workunits` — executing a packaged
  workload on a dedicated cluster, giving the wall-clock the Table 2
  equivalence promises (useful work / processors), which the ablation
  bench compares against the volunteer grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..core.packaging import WorkUnitPlan
from ..maxdo.cost_model import CostModel
from ..units import SECONDS_PER_DAY
from .cluster import Cluster

__all__ = ["DedicatedRunResult", "DedicatedGridSimulation"]


@dataclass(frozen=True)
class DedicatedRunResult:
    """Outcome of a dedicated-grid run."""

    n_processors: int
    n_tasks: int
    cpu_seconds: float  #: processor time consumed (= reference work here)
    makespan_s: float
    utilization: float

    @property
    def cpu_days(self) -> float:
        return self.cpu_seconds / SECONDS_PER_DAY

    @property
    def makespan_days(self) -> float:
        return self.makespan_s / SECONDS_PER_DAY

    @property
    def effective_processors(self) -> float:
        """Useful work per wall-clock — the dedicated grid's 'VFTP'."""
        return self.cpu_seconds / self.makespan_s


class DedicatedGridSimulation:
    """A Grid'5000-like homogeneous cluster campaign runner."""

    def __init__(self, n_processors: int, speed: float = 1.0) -> None:
        self.n_processors = n_processors
        self.speed = speed

    def _run(self, costs: np.ndarray, lpt: bool) -> DedicatedRunResult:
        cluster = Cluster(self.n_processors, speed=self.speed)
        order = np.argsort(costs)[::-1] if lpt else np.arange(len(costs))
        cluster.schedule_tasks(costs[order])
        return DedicatedRunResult(
            n_processors=self.n_processors,
            n_tasks=len(costs),
            cpu_seconds=float(costs.sum()) / self.speed,
            makespan_s=cluster.makespan,
            utilization=cluster.utilization(),
        )

    def run_calibration(
        self,
        cost_model: CostModel,
        samples_per_couple: int = 7,
        lpt: bool = True,
    ) -> DedicatedRunResult:
        """Execute the Section 4.1 measurement campaign.

        Each of the ``n^2`` couples contributes one task: ``measured_ct``
        of one starting position over ``samples_per_couple`` orientation
        couples.  LPT ordering (longest task first) keeps the makespan near
        the lower bound, as a real reservation would aim for.
        """
        n = cost_model.n_proteins
        costs = np.array(
            [
                cost_model.measured_ct(i, j, 1, samples_per_couple)
                for i in range(n)
                for j in range(n)
            ]
        )
        return self._run(costs, lpt)

    def run_workunits(
        self, plan: WorkUnitPlan, max_workunits: int | None = None, lpt: bool = False
    ) -> DedicatedRunResult:
        """Execute (a prefix of) a packaged workload on the cluster.

        Dedicated processors run at full duty with no redundancy, so the
        consumed CPU equals the useful reference work — the defining
        contrast with the volunteer grid in Table 2.
        """
        costs = []
        for wu in plan.iter_workunits():
            costs.append(wu.cost_reference_s)
            if max_workunits is not None and len(costs) >= max_workunits:
                break
        return self._run(np.asarray(costs), lpt)

    @classmethod
    def grid5000_calibration_setup(cls) -> "DedicatedGridSimulation":
        """The paper's reservation: 640 reference processors."""
        return cls(n_processors=constants.CALIBRATION_PROCESSORS, speed=1.0)
