"""Homogeneous dedicated cluster model.

Grid'5000 nodes in the paper's calibration run are "similar nodes (dual
Opteron 246 @ 2 GHz)" — the reference processor.  A cluster is therefore
just a number of always-available processors at a common relative speed,
with per-processor busy accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Cluster"]


@dataclass
class Cluster:
    """``n_processors`` identical, always-on processors.

    The cluster executes a fixed task list with list scheduling: each task
    goes to the processor that frees up first.  This is deterministic and,
    on identical machines, within 2x of the optimal makespan (Graham's
    bound) — the paper's "optimally used" dedicated grid.
    """

    n_processors: int
    speed: float = 1.0  #: relative to the reference Opteron 2 GHz
    _free_at: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        self._free_at = [0.0] * self.n_processors

    def reset(self) -> None:
        """Forget all scheduled work."""
        self._free_at = [0.0] * self.n_processors

    def schedule_tasks(self, costs_reference_s: np.ndarray) -> np.ndarray:
        """List-schedule tasks (reference-CPU seconds); returns finish times.

        Tasks start in the given order on the earliest-free processor;
        the returned array gives each task's completion time.
        """
        costs = np.asarray(costs_reference_s, dtype=np.float64)
        if (costs < 0).any():
            raise ValueError("task costs must be non-negative")
        heap = list(self._free_at)
        heapq.heapify(heap)
        finish = np.empty(len(costs))
        for k, cost in enumerate(costs):
            start = heapq.heappop(heap)
            end = start + cost / self.speed
            finish[k] = end
            heapq.heappush(heap, end)
        self._free_at = sorted(heap)
        return finish

    @property
    def makespan(self) -> float:
        """Completion time of the last scheduled task."""
        return max(self._free_at)

    @property
    def busy_seconds(self) -> float:
        """Total processor-seconds occupied so far."""
        return float(sum(self._free_at))

    def utilization(self) -> float:
        """Busy fraction of the cluster up to the makespan."""
        span = self.makespan
        if span == 0:
            return 0.0
        return self.busy_seconds / (self.n_processors * span)
