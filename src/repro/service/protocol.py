"""The scheduler service wire protocol (versioned).

Single source of truth for the HTTP/JSON RPC surface of
:class:`repro.service.SchedulerService`: the endpoint table (checked
against the registered routes and the ``docs/service.md`` reference by
``tests/test_docs_consistency.py``), the JSON marshalling of
:class:`~repro.boinc.validator.ValidationStats`, and the refusal payload
shapes.

Every request and response body is a single JSON object.  Mutating RPCs
may carry a campaign timestamp ``t`` (simulated seconds); the service
advances its discrete-event clock to ``t`` before applying the mutation,
which is what makes a wire-driven replay reconcile exactly with an
in-process run (see docs/service.md).
"""

from __future__ import annotations

from typing import Any, Mapping

from ..boinc.validator import ValidationStats

__all__ = [
    "WIRE_PROTOCOL_VERSION",
    "ENDPOINTS",
    "REFUSAL_REASONS",
    "stats_as_dict",
    "stats_from_dict",
    "refusal_payload",
    "error_payload",
]

#: Stamped into ``GET /`` discovery responses; bump on any
#: backwards-incompatible change to a request or response shape.
WIRE_PROTOCOL_VERSION = 1

#: ``(method, path, summary)`` — every route the service registers, in
#: documentation order.  ``tests/test_docs_consistency.py`` asserts this
#: table, the dispatcher's routes and the docs/service.md endpoint table
#: stay mutually consistent.
ENDPOINTS: tuple[tuple[str, str, str], ...] = (
    ("GET", "/", "protocol discovery: version, endpoint table, campaign identity"),
    ("GET", "/v1/status", "campaign snapshot: validation stats, queue depth, "
                          "refusal counters, RPC latency quantiles"),
    ("GET", "/v1/hosts", "fleet snapshot: the per-host behavioral ledger "
                         "(counts, classes, trust trajectory) as JSON"),
    ("GET", "/v1/metrics", "Prometheus text exposition of the service "
                           "metrics registry (RPC latency sketches included)"),
    ("POST", "/v1/request-work", "hand one workunit instance to a host "
                                 "(may 503-refuse with Retry-After)"),
    ("POST", "/v1/report-result", "report a finished instance by token "
                                  "(may 503-refuse with Retry-After)"),
    ("POST", "/v1/heartbeat", "host liveness ping; returns campaign progress "
                              "without advancing the clock"),
    ("POST", "/v1/finalize", "advance the campaign clock to a final time and "
                             "return the campaign summary"),
)

#: Why a 503 happened.  ``outage`` mirrors the in-process
#: :class:`~repro.faults.ServerUnavailable` (a scheduled fault window,
#: counted in ``ValidationStats.refused_rpcs``); ``overload`` means the
#: bounded write queue was full (socket-level backpressure); ``draining``
#: means a graceful shutdown is in progress.
REFUSAL_REASONS = ("outage", "overload", "draining")

#: ValidationStats fields carried over the wire, in dataclass order.
_STATS_FIELDS = (
    "disclosed", "effective", "invalid", "late", "quorum_extra",
    "consumed_cpu_s", "useful_reference_s", "failed", "bad_validated",
    "sabotage_caught", "refused_rpcs",
)


def stats_as_dict(stats: ValidationStats) -> dict[str, Any]:
    """JSON shape of :class:`ValidationStats` (status/finalize payloads)."""
    payload: dict[str, Any] = {f: getattr(stats, f) for f in _STATS_FIELDS}
    payload["by_regime"] = dict(stats.validated_by_regime)
    return payload


def stats_from_dict(payload: Mapping[str, Any]) -> ValidationStats:
    """Rebuild :class:`ValidationStats` from its wire shape.

    Round-trips exactly: ``stats_from_dict(stats_as_dict(s)) == s`` for
    every reachable stats value (int fields stay int, CPU-second fields
    stay float) — the wire-driven replay's reconciliation check depends
    on this being lossless.
    """
    kwargs: dict[str, Any] = {}
    for f in _STATS_FIELDS:
        value = payload[f]
        if f in ("consumed_cpu_s", "useful_reference_s"):
            kwargs[f] = float(value)
        else:
            kwargs[f] = int(value)
    stats = ValidationStats(**kwargs)
    by_regime = payload.get("by_regime", {})
    for regime, count in by_regime.items():
        stats._by_regime[regime] = int(count)
    return stats


def refusal_payload(reason: str, retry_after_s: float, **extra: Any) -> dict[str, Any]:
    """Body of every 503 response (paired with a ``Retry-After`` header)."""
    if reason not in REFUSAL_REASONS:
        raise ValueError(f"unknown refusal reason: {reason!r}")
    payload = {
        "error": "unavailable",
        "reason": reason,
        "retry_after_s": retry_after_s,
    }
    payload.update(extra)
    return payload


def error_payload(error: str, detail: str = "") -> dict[str, Any]:
    """Body of non-refusal error responses (400/404/410/500)."""
    payload: dict[str, Any] = {"error": error}
    if detail:
        payload["detail"] = detail
    return payload
