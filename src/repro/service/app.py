"""The live scheduler service: an asyncio HTTP/JSON facade on GridServer.

The paper's campaign ran on a real BOINC server fielding scheduler RPCs
from ~100k volunteer hosts; here the same :class:`~repro.boinc.server.
GridServer` that the DES drives in-process answers ``request-work`` /
``report-result`` / ``heartbeat`` over real sockets.

Design (see docs/service.md for the wire reference):

* **Single-writer loop.**  All server mutations go through one bounded
  :class:`asyncio.Queue` drained by one writer task, so RPCs apply in a
  total order and the determinism contract survives the network: a
  deterministic replay driven over the wire reconciles exactly with the
  in-process run.
* **Clock carried on the wire.**  A mutating RPC may carry a campaign
  timestamp ``t``; the writer advances the service's discrete-event clock
  with ``sim.run(until=t)`` first, firing any due deadline timers and
  outage boundaries *before* the mutation — exactly the interleaving the
  shared-heap in-process run produces.  Without ``t`` (live mode) the
  clock advances with scaled wall time.
* **Backpressure to the socket.**  A full write queue refuses the RPC
  with ``503`` + ``Retry-After`` (reason ``overload``) instead of
  buffering unboundedly; outage windows from :mod:`repro.faults` surface
  the in-process :class:`~repro.faults.ServerUnavailable` as ``503``
  (reason ``outage``); graceful shutdown refuses new mutations (reason
  ``draining``) while the queue drains.  Every refusal is counted and,
  with a tracer, emitted as a ``service.refuse`` event.

The HTTP layer is a deliberately small hand-rolled HTTP/1.1 on asyncio
streams (keep-alive, JSON bodies) — no third-party server dependency.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..boinc.server import GridServer
from ..boinc.simulator import Telemetry
from ..faults import ResultQuality, ServerUnavailable
from ..grid.des import Simulator
from ..obs import HostLedger, LedgerSink, MetricsRegistry, Tracer
from ..obs.health import NullSink
from ..obs.metrics import render_prometheus
from .protocol import (
    ENDPOINTS,
    WIRE_PROTOCOL_VERSION,
    error_payload,
    refusal_payload,
    stats_as_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..boinc.simulator import VolunteerGridSimulation

__all__ = ["ServiceConfig", "SchedulerService", "ServiceHandle", "serve_in_thread"]

#: RPC op keys, used for route dispatch and latency sketch names.
_OPS = (
    "discover", "status", "hosts", "metrics",
    "heartbeat", "request_work", "report_result", "finalize",
)

#: (method, path) -> op key.  Kept in lockstep with
#: :data:`repro.service.protocol.ENDPOINTS` (tested).
ROUTES: dict[tuple[str, str], str] = {
    ("GET", "/"): "discover",
    ("GET", "/v1/status"): "status",
    ("GET", "/v1/hosts"): "hosts",
    ("GET", "/v1/metrics"): "metrics",
    ("POST", "/v1/heartbeat"): "heartbeat",
    ("POST", "/v1/request-work"): "request_work",
    ("POST", "/v1/report-result"): "report_result",
    ("POST", "/v1/finalize"): "finalize",
}

#: Ops that mutate GridServer state and therefore go through the
#: single-writer queue; the rest are answered inline (read-only).
_WRITER_OPS = frozenset({"request_work", "report_result", "finalize"})

_MAX_HEADER_LINES = 64


@dataclass(frozen=True)
class ServiceConfig:
    """Socket and backpressure knobs for :class:`SchedulerService`."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick a free port (read it back from ``address``)
    port: int = 0
    #: bound on queued-but-unapplied mutations; a full queue refuses with
    #: 503 ``overload`` instead of buffering unboundedly
    max_pending: int = 1024
    #: live mode: simulated seconds per wall-clock second (ignored by
    #: RPCs that carry an explicit ``t``)
    time_scale: float = 1.0
    #: Retry-After for overload refusals (seconds)
    overload_retry_s: float = 1.0
    #: Retry-After for refusals during graceful drain (seconds)
    drain_retry_s: float = 5.0
    #: artificial per-mutation writer delay — a test/bench knob that makes
    #: overload deterministic to provoke (0 = off)
    writer_delay_s: float = 0.0
    #: largest accepted request body
    max_body_bytes: int = 1 << 20


class SchedulerService:
    """HTTP/JSON RPC front-end over one campaign's :class:`GridServer`.

    Built from a :class:`~repro.boinc.simulator.VolunteerGridSimulation`
    (which supplies the materialized workunits, server policy and
    horizon); owns a private DES kernel whose clock the RPCs advance.
    Start with :meth:`start` inside a running event loop, or use
    :func:`serve_in_thread` from synchronous code.
    """

    def __init__(
        self,
        sim_model: "VolunteerGridSimulation",
        config: ServiceConfig | None = None,
        tracer: Tracer | None = None,
        campaign: str = "hcmd",
    ) -> None:
        shards = sim_model.config.shards
        if shards is not None and shards.n_shards > 1:
            raise ValueError(
                "the scheduler service fronts a single GridServer; "
                "serve a campaign without a multi-shard plan"
            )
        self.cfg = config if config is not None else ServiceConfig()
        self.tracer = tracer
        # The kernel's fast path is only disabled by its own
        # instrumentation (same contract as VolunteerGridSimulation.run).
        sim_tracer = tracer
        if (
            tracer is not None
            and tracer.channels is not None
            and "des" not in tracer.channels
        ):
            sim_tracer = None
        self.sim = Simulator(tracer=sim_tracer)
        self.horizon_s = sim_model.horizon_s
        self.telemetry = Telemetry(sim_model.horizon_s, tracer=tracer)
        # Per-host behavioral ledger behind GET /v1/hosts, fed by a tee on
        # the server's event stream (same pattern as the in-process run).
        # With a caller-supplied tracer the tee rides its sink (a channel
        # filter excluding "server"/"host" starves the ledger — documented
        # in docs/observability.md); without one, a private tracer feeds
        # the ledger and nothing else.
        self.ledger = HostLedger()
        self._ledger_restore_sink = None
        if tracer is not None:
            self._ledger_restore_sink = tracer.sink
            tracer.sink = LedgerSink(self.ledger, tracer.sink)
            server_tracer = tracer
        else:
            server_tracer = Tracer(
                sink=LedgerSink(self.ledger, NullSink()),
                channels=("server", "host"),
            )
        workunits = sim_model.materialize_workunits()
        batch_bytes = sim_model.batch_result_bytes()
        self.server = GridServer(
            sim=self.sim,
            workunits=workunits,
            config=sim_model.server_config,
            on_workunit_valid=lambda wu, t: self.telemetry.record_validation(t),
            on_batch_complete=lambda batch, t: self.telemetry.record_shipment(
                t, batch_bytes[batch]
            ),
            tracer=server_tracer,
            id_base=sim_model.wu_id_base,
        )
        #: the served campaign's name; scopes every assignment on the
        #: wire (multi-campaign grids run one service per campaign)
        self.campaign_name = campaign
        #: campaign identity echoed by ``GET /`` so a load generator can
        #: verify it rebuilt the same campaign before driving it
        self.identity = {
            "campaign": campaign,
            "n_workunits": self.server.n_workunits,
            "seed": sim_model.seed,
            "deadline_s": sim_model.server_config.deadline_s,
            "horizon_s": sim_model.horizon_s,
            "scale": sim_model.scale,
        }
        # -- wire-layer state ------------------------------------------------
        self._next_token = 1
        self._instances: dict[int, Any] = {}
        self.metrics = MetricsRegistry()
        self._latency = {
            op: self.metrics.quantiles(
                f"service.rpc_wall_s.{op}",
                help=f"wall-clock seconds to answer one {op} RPC",
            )
            for op in _OPS
        }
        self.refused: dict[str, int] = {"overload": 0, "draining": 0, "outage": 0}
        self.requests_total = 0
        self.max_queue_depth = 0
        #: mutations whose ``t`` was behind the clock and got clamped
        self.clock_clamps = 0
        self.draining = False
        self.address: tuple[str, int] | None = None
        self._queue: asyncio.Queue | None = None
        self._writer_task: asyncio.Task | None = None
        self._http: asyncio.AbstractServer | None = None
        self._t0_wall: float | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the socket and start the writer loop; returns (host, port)."""
        self._queue = asyncio.Queue(maxsize=self.cfg.max_pending)
        self._writer_task = asyncio.create_task(self._writer_loop())
        self._http = await asyncio.start_server(
            self._handle_conn, self.cfg.host, self.cfg.port
        )
        self.address = self._http.sockets[0].getsockname()[:2]
        self._t0_wall = time.monotonic()
        if self.tracer is not None:
            self.tracer.emit(
                "service.listen", t_sim=self.sim.now,
                host=self.address[0], port=self.address[1],
                n_workunits=self.server.n_workunits,
            )
        return self.address

    async def drain(self) -> None:
        """Refuse new mutations, then wait for the queued ones to apply."""
        if self._queue is None:
            return
        self.draining = True
        pending = self._queue.qsize()
        if self.tracer is not None:
            self.tracer.emit(
                "service.drain", t_sim=self.sim.now, phase="begin", pending=pending,
            )
        await self._queue.join()
        if self.tracer is not None:
            self.tracer.emit(
                "service.drain", t_sim=self.sim.now, phase="end", pending=0,
            )

    async def shutdown(self) -> None:
        """Graceful stop: drain the write queue, then close the socket."""
        await self.drain()
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
        # Nudge idle keep-alive connections off their readline and wait
        # for the handlers to unwind, so nothing is left mid-await when
        # the event loop goes away.
        for conn in list(self._conn_writers):
            conn.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._writer_task is not None:
            self._writer_task.cancel()
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass
        if self._ledger_restore_sink is not None and self.tracer is not None:
            # Unwrap the ledger tee: the caller's tracer outlives us.
            self.tracer.sink = self._ledger_restore_sink
            self._ledger_restore_sink = None

    # -- clock --------------------------------------------------------------

    def _resolve_t(self, body: dict[str, Any]) -> float:
        """The campaign time a mutation applies at.

        Replay mode sends ``t`` explicitly; live mode maps wall-clock
        seconds since start through ``time_scale``.
        """
        t = body.get("t")
        if t is None:
            elapsed = time.monotonic() - (self._t0_wall or time.monotonic())
            t = elapsed * self.cfg.time_scale
        return float(t)

    def _advance(self, t: float) -> None:
        """Run the DES clock up to ``t`` (clamped into [now, horizon]).

        Fires every due server-side event — deadline timeouts, outage
        window boundaries — in (time, seq) order before the caller's
        mutation, the same interleaving an in-process run produces.
        """
        t = min(t, self.horizon_s)
        if t < self.sim.now:
            self.clock_clamps += 1
            return
        self.sim.run(until=t)

    # -- writer (the only place GridServer state changes) --------------------

    async def _writer_loop(self) -> None:
        assert self._queue is not None
        while True:
            op, body, fut = await self._queue.get()
            try:
                if self.cfg.writer_delay_s > 0.0:
                    await asyncio.sleep(self.cfg.writer_delay_s)
                result = self._apply(op, body)
            except KeyError as exc:
                result = (400, error_payload("bad-request", f"missing field {exc}"), {})
            except (TypeError, ValueError) as exc:
                result = (400, error_payload("bad-request", str(exc)), {})
            except Exception as exc:  # defensive: a bug must not kill the loop
                result = (500, error_payload("internal", f"{type(exc).__name__}: {exc}"), {})
            finally:
                self._queue.task_done()
            if not fut.done():
                fut.set_result(result)

    def _apply(self, op: str, body: dict[str, Any]):
        if op == "request_work":
            return self._apply_request_work(body)
        if op == "report_result":
            return self._apply_report_result(body)
        return self._apply_finalize(body)

    def _outage(self, exc: ServerUnavailable):
        self.refused["outage"] += 1
        retry_after = max(0.0, exc.until - self.sim.now)
        return (
            503,
            refusal_payload("outage", retry_after, until_s=exc.until),
            {"Retry-After": f"{retry_after:.0f}"},
        )

    def _apply_request_work(self, body: dict[str, Any]):
        host = int(body["host"])
        self._advance(self._resolve_t(body))
        try:
            instance = self.server.request_work(host)
        except ServerUnavailable as exc:
            return self._outage(exc)
        if instance is None:
            return 200, {"assignment": None, "all_done": self.server.all_done}, {}
        token = self._next_token
        self._next_token += 1
        self._instances[token] = instance
        wu = instance.wu
        assignment = {
            "token": token,
            "campaign": self.campaign_name,
            "wu": wu.wu_id,
            "copy": instance.copy,
            "receptor": wu.receptor,
            "ligand": wu.ligand,
            "nsep": wu.nsep,
            "cost_reference_s": wu.cost_reference_s,
            "deadline_s": self.server.config.deadline_s,
        }
        return 200, {"assignment": assignment, "all_done": False}, {}

    def _apply_report_result(self, body: dict[str, Any]):
        token = int(body["token"])
        instance = self._instances.get(token)
        if instance is None:
            return 410, error_payload("unknown-token", f"token {token}"), {}
        self._advance(self._resolve_t(body))
        quality_name = body.get("quality")
        quality = ResultQuality(quality_name) if quality_name is not None else None
        try:
            self.server.on_result(
                instance,
                bool(body["valid"]),
                float(body["accounted_cpu_s"]),
                quality=quality,
            )
        except ServerUnavailable as exc:
            # Token survives: the agent backs off and re-reports the same
            # instance, exactly like the in-process retry path.
            return self._outage(exc)
        del self._instances[token]
        return 200, {"accepted": True, "all_done": self.server.all_done}, {}

    def _apply_finalize(self, body: dict[str, Any]):
        self._advance(float(body["t"]))
        return 200, {"summary": self._summary()}, {}

    # -- read-only payloads --------------------------------------------------

    def _summary(self) -> dict[str, Any]:
        server = self.server
        return {
            "now_s": self.sim.now,
            "all_done": server.all_done,
            "completion_time": server.completion_time,
            "n_workunits": server.n_workunits,
            "stats": stats_as_dict(server.stats),
            "batch_completion": {
                str(batch): t for batch, t in sorted(server.batch_completion.items())
            },
        }

    def _status_payload(self) -> dict[str, Any]:
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        latency = {
            op: sketch.as_dict()
            for op, sketch in self._latency.items()
            if sketch.count
        }
        payload = self._summary()
        payload.update(
            n_validated=self.server.stats.effective,
            draining=self.draining,
            queue_depth=queue_depth,
            max_queue_depth=self.max_queue_depth,
            requests_total=self.requests_total,
            refused=dict(self.refused),
            clock_clamps=self.clock_clamps,
            outstanding_tokens=len(self._instances),
            rpc_wall_s=latency,
        )
        return payload

    def _hosts_payload(self) -> dict[str, Any]:
        """The fleet snapshot behind ``GET /v1/hosts`` (ledger as JSON)."""
        fleet = self.ledger.finalize(self.sim.now)
        payload = fleet.as_dict()
        payload["campaign"] = self.campaign_name
        payload["now_s"] = self.sim.now
        return payload

    def _metrics_text(self) -> str:
        """``GET /v1/metrics``: the registry in Prometheus text format."""
        return render_prometheus(self.metrics)

    def _discover_payload(self) -> dict[str, Any]:
        return {
            "service": "repro-scheduler",
            "wire_protocol": WIRE_PROTOCOL_VERSION,
            "endpoints": [
                {"method": m, "path": p, "summary": s} for m, p, s in ENDPOINTS
            ],
            "campaign": self.identity,
        }

    def _heartbeat_payload(self, body: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "host": int(body.get("host", -1)),
            "now_s": self.sim.now,
            "all_done": self.server.all_done,
            "n_validated": self.server.stats.effective,
            "n_workunits": self.server.n_workunits,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "draining": self.draining,
        }

    # -- HTTP ---------------------------------------------------------------

    async def _dispatch(self, op: str, body: dict[str, Any]):
        """Route one parsed request; returns (status, payload, headers)."""
        if op in _WRITER_OPS:
            if self.draining:
                self._refuse_wire(op, "draining")
                return (
                    503,
                    refusal_payload("draining", self.cfg.drain_retry_s),
                    {"Retry-After": f"{self.cfg.drain_retry_s:.0f}"},
                )
            assert self._queue is not None
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            try:
                self._queue.put_nowait((op, body, fut))
            except asyncio.QueueFull:
                self._refuse_wire(op, "overload")
                return (
                    503,
                    refusal_payload("overload", self.cfg.overload_retry_s),
                    {"Retry-After": f"{self.cfg.overload_retry_s:.0f}"},
                )
            self.max_queue_depth = max(self.max_queue_depth, self._queue.qsize())
            return await fut
        if op == "discover":
            return 200, self._discover_payload(), {}
        if op == "status":
            return 200, self._status_payload(), {}
        if op == "hosts":
            return 200, self._hosts_payload(), {}
        if op == "metrics":
            return 200, self._metrics_text(), {}
        return 200, self._heartbeat_payload(body), {}

    def _refuse_wire(self, op: str, reason: str) -> None:
        self.refused[reason] += 1
        if self.tracer is not None:
            self.tracer.emit(
                "service.refuse", t_sim=self.sim.now, op=op, reason=reason,
            )

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, raw_body = request
                t0 = time.perf_counter()
                op = ROUTES.get((method, path))
                if op is None:
                    status, payload, extra = (
                        404, error_payload("unknown-endpoint", f"{method} {path}"), {}
                    )
                else:
                    self.requests_total += 1
                    try:
                        body = json.loads(raw_body) if raw_body else {}
                        if not isinstance(body, dict):
                            raise ValueError("request body must be a JSON object")
                    except ValueError as exc:
                        body = None
                        status, payload, extra = (
                            400, error_payload("bad-request", str(exc)), {}
                        )
                    if body is not None:
                        try:
                            status, payload, extra = await self._dispatch(op, body)
                        except KeyError as exc:
                            status, payload, extra = (
                                400,
                                error_payload("bad-request", f"missing field {exc}"),
                                {},
                            )
                wall = time.perf_counter() - t0
                if op is not None:
                    self._latency[op].observe(wall)
                    if self.tracer is not None:
                        self.tracer.emit(
                            "service.request", t_sim=self.sim.now,
                            op=op, status=status, wall_ms=wall * 1e3,
                        )
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip().lower()
        length = int(headers.get("content-length", "0"))
        if length > self.cfg.max_body_bytes:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: "dict[str, Any] | str",
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   410: "Gone", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        if isinstance(payload, str):
            # Text exposition (GET /v1/metrics); everything else is JSON.
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, separators=(",", ":")).encode()
            content_type = "application/json"
        head = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head += [f"{k}: {v}" for k, v in extra_headers.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()


class ServiceHandle:
    """A running service on a background thread (synchronous control)."""

    def __init__(
        self,
        service: SchedulerService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        assert self.service.address is not None
        return self.service.address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, close the socket, join the thread."""
        fut = asyncio.run_coroutine_threadsafe(self.service.shutdown(), self.loop)
        fut.result(timeout=timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)


def serve_in_thread(
    sim_model: "VolunteerGridSimulation",
    config: ServiceConfig | None = None,
    tracer: Tracer | None = None,
    campaign: str = "hcmd",
) -> ServiceHandle:
    """Start a :class:`SchedulerService` on a daemon thread.

    The campaign materialization happens on the calling thread (so errors
    surface immediately); the returned handle exposes the bound address
    and a blocking :meth:`~ServiceHandle.stop`.
    """
    service = SchedulerService(
        sim_model, config=config, tracer=tracer, campaign=campaign
    )
    started = threading.Event()
    failure: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(service.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-scheduler", daemon=True)
    thread.start()
    started.wait()
    if failure:
        raise failure[0]
    return ServiceHandle(service, loop, thread)
