"""Live scheduler service: the wire front-end on :class:`GridServer`.

The paper's campaign ran on a real BOINC server fielding scheduler RPCs
from the volunteer fleet; this package puts the same request-work /
report-result / heartbeat surface on real sockets:

* :class:`SchedulerService` / :func:`serve_in_thread` — the asyncio
  HTTP/JSON service (single-writer mutation loop, bounded queue,
  socket-level backpressure with 503 + Retry-After);
* :class:`SchedulerClient` / :class:`RemoteGridServer` — the blocking
  client and the agent-facing proxy;
* :func:`replay_campaign` / :func:`storm` — the simulator's
  load-generator modes (deterministic replay over the wire, and an
  open-loop throughput storm).

Wire protocol reference: docs/service.md.
"""

from .app import SchedulerService, ServiceConfig, ServiceHandle, serve_in_thread
from .client import (
    RemoteGridServer,
    SchedulerClient,
    ServiceError,
    ServiceRefused,
)
from .loadgen import StormReport, replay_campaign, storm
from .protocol import ENDPOINTS, WIRE_PROTOCOL_VERSION

__all__ = [
    "SchedulerService",
    "ServiceConfig",
    "ServiceHandle",
    "serve_in_thread",
    "SchedulerClient",
    "RemoteGridServer",
    "ServiceError",
    "ServiceRefused",
    "replay_campaign",
    "storm",
    "StormReport",
    "ENDPOINTS",
    "WIRE_PROTOCOL_VERSION",
]
