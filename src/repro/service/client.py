"""Blocking wire client and the agent-facing GridServer proxy.

:class:`SchedulerClient` speaks the docs/service.md protocol over a
keep-alive ``http.client`` connection (one request in flight at a time —
which is exactly what deterministic replay needs).

:class:`RemoteGridServer` adapts that client to the surface
:class:`~repro.boinc.agent.VolunteerAgent` expects from a server
(``request_work`` / ``on_result`` / ``all_done`` / ``config``), stamping
every mutation with the local DES clock so the service replays the
campaign timeline.  An outage 503 is re-raised as the in-process
:class:`~repro.faults.ServerUnavailable`, so the agents' backoff-retry
machinery works unchanged over the wire.
"""

from __future__ import annotations

import http.client
import json
from typing import TYPE_CHECKING, Any
from urllib.parse import urlsplit

from ..boinc.validator import ValidationStats
from ..faults import ResultQuality, ServerUnavailable
from .protocol import WIRE_PROTOCOL_VERSION, stats_from_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..boinc.server import ServerConfig
    from ..core.workunit import WorkUnit
    from ..grid.des import Simulator

__all__ = [
    "ServiceError",
    "ServiceRefused",
    "SchedulerClient",
    "RemoteInstance",
    "RemoteGridServer",
]


class ServiceError(RuntimeError):
    """A non-2xx wire response that is not a backpressure refusal."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceRefused(ServiceError):
    """A 503 refusal (reason ``overload`` or ``draining``).

    Outage refusals are *not* raised as this class — they become
    :class:`~repro.faults.ServerUnavailable` so the agent retry path is
    identical in-process and over the wire.
    """

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(status, payload)
        self.reason = payload.get("reason", "unknown")
        self.retry_after_s = float(payload.get("retry_after_s", 1.0))


class SchedulerClient:
    """Thin blocking JSON-RPC client for one scheduler service."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, timeout: float = 30.0) -> "SchedulerClient":
        """``http://host:port`` (or bare ``host:port``) -> client."""
        parts = urlsplit(url if "//" in url else f"//{url}")
        if parts.hostname is None or parts.port is None:
            raise ValueError(f"need host:port in service URL, got {url!r}")
        return cls(parts.hostname, parts.port, timeout=timeout)

    # -- transport ----------------------------------------------------------

    def _call_raw(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, bytes]:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                # Stale keep-alive connection: reconnect once.
                self.close()
                if attempt:
                    raise
        return response.status, raw

    def _call(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        status, raw = self._call_raw(method, path, body)
        return status, json.loads(raw) if raw else {}

    def _checked(self, method: str, path: str, body: dict[str, Any] | None = None):
        status, payload = self._call(method, path, body)
        if status == 503:
            if payload.get("reason") == "outage":
                raise ServerUnavailable(float(payload.get("until_s", 0.0)))
            raise ServiceRefused(status, payload)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- RPCs ---------------------------------------------------------------

    def discover(self) -> dict[str, Any]:
        return self._checked("GET", "/")

    def status(self) -> dict[str, Any]:
        return self._checked("GET", "/v1/status")

    def hosts(self) -> dict[str, Any]:
        """``GET /v1/hosts`` — the fleet snapshot (ledger as JSON)."""
        return self._checked("GET", "/v1/hosts")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — the Prometheus text page, verbatim."""
        status, raw = self._call_raw("GET", "/v1/metrics")
        if status >= 400:
            raise ServiceError(status, {"detail": raw.decode(errors="replace")})
        return raw.decode()

    def heartbeat(self, host: int, t: float | None = None) -> dict[str, Any]:
        body: dict[str, Any] = {"host": host}
        if t is not None:
            body["t"] = t
        return self._checked("POST", "/v1/heartbeat", body)

    def request_work(self, host: int, t: float | None = None) -> dict[str, Any]:
        body: dict[str, Any] = {"host": host}
        if t is not None:
            body["t"] = t
        return self._checked("POST", "/v1/request-work", body)

    def report_result(
        self,
        token: int,
        valid: bool,
        accounted_cpu_s: float,
        quality: str | None = None,
        t: float | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {
            "token": token, "valid": valid, "accounted_cpu_s": accounted_cpu_s,
        }
        if quality is not None:
            body["quality"] = quality
        if t is not None:
            body["t"] = t
        return self._checked("POST", "/v1/report-result", body)

    def finalize(self, t: float) -> dict[str, Any]:
        return self._checked("POST", "/v1/finalize", {"t": t})["summary"]


class RemoteInstance:
    """Client-side view of an issued workunit instance.

    Quacks like :class:`~repro.boinc.server.Instance` for everything the
    agent touches (``wu``, ``copy``, ``host_id``) and carries the wire
    token the report must echo.
    """

    __slots__ = ("token", "wu", "host_id", "copy")

    def __init__(self, token: int, wu: "WorkUnit", host_id: int, copy: int) -> None:
        self.token = token
        self.wu = wu
        self.host_id = host_id
        self.copy = copy


class RemoteGridServer:
    """Agent-facing proxy: the GridServer surface, backed by RPCs.

    Drop-in for the ``server`` argument of
    :class:`~repro.boinc.agent.VolunteerAgent` (injected through
    ``VolunteerGridSimulation.run(server_factory=...)``).  Workunit
    payloads come from the *locally* materialized campaign — the wire
    carries only ids — and the campaign identity is verified against the
    service's ``GET /`` discovery before any work flows.
    """

    def __init__(
        self,
        client: SchedulerClient,
        sim: "Simulator",
        workunits: list[tuple["WorkUnit", int]],
        config: "ServerConfig",
        id_base: int = 0,
        **_ignored: Any,
    ) -> None:
        self.client = client
        self.sim = sim
        self.config = config
        self._wu_by_id = {wu.wu_id: wu for wu, _batch in workunits}
        self._all_done = False
        self._summary: dict[str, Any] | None = None
        remote = client.discover()
        if remote.get("wire_protocol") != WIRE_PROTOCOL_VERSION:
            raise ValueError(
                f"wire protocol mismatch: client {WIRE_PROTOCOL_VERSION}, "
                f"service {remote.get('wire_protocol')}"
            )
        campaign = remote.get("campaign", {})
        if campaign.get("n_workunits") != len(self._wu_by_id) or (
            campaign.get("deadline_s") != config.deadline_s
        ):
            raise ValueError(
                "load-generator campaign does not match the served one: "
                f"local {len(self._wu_by_id)} workunits / deadline "
                f"{config.deadline_s}s, service {campaign.get('n_workunits')} "
                f"workunits / deadline {campaign.get('deadline_s')}s"
            )

    # -- the agent-facing surface -------------------------------------------

    @property
    def all_done(self) -> bool:
        return self._all_done

    def request_work(self, host_id: int) -> RemoteInstance | None:
        response = self.client.request_work(host_id, t=self.sim.now)
        self._all_done = bool(response.get("all_done", False))
        assignment = response.get("assignment")
        if assignment is None:
            return None
        return RemoteInstance(
            token=int(assignment["token"]),
            wu=self._wu_by_id[int(assignment["wu"])],
            host_id=host_id,
            copy=int(assignment["copy"]),
        )

    def on_result(
        self,
        instance: RemoteInstance,
        valid: bool,
        accounted_cpu_s: float,
        quality: "ResultQuality | None" = None,
    ) -> None:
        response = self.client.report_result(
            instance.token,
            valid,
            accounted_cpu_s,
            quality=quality.value if quality is not None else None,
            t=self.sim.now,
        )
        self._all_done = bool(response.get("all_done", False))

    # -- campaign wrap-up (CampaignResult surface) ---------------------------

    def finalize_campaign(self, t: float) -> None:
        """Advance the remote clock to the horizon and snapshot the summary.

        Called by ``VolunteerGridSimulation.run`` after the local DES
        drains: trailing server-side deadline timers (which can still fail
        or reissue workunits) fire remotely before the summary is taken.
        """
        self._summary = self.client.finalize(t)
        self._all_done = bool(self._summary["all_done"])

    def _final(self) -> dict[str, Any]:
        if self._summary is None:
            raise RuntimeError(
                "campaign summary not fetched yet — finalize_campaign() runs "
                "at the end of VolunteerGridSimulation.run"
            )
        return self._summary

    @property
    def stats(self) -> ValidationStats:
        return stats_from_dict(self._final()["stats"])

    @property
    def completion_time(self) -> float | None:
        return self._final()["completion_time"]

    @property
    def n_workunits(self) -> int:
        return int(self._final()["n_workunits"])

    @property
    def batch_completion(self) -> dict[int, float]:
        return {
            int(batch): float(t)
            for batch, t in self._final()["batch_completion"].items()
        }
