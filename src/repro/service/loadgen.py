"""Load-generator modes of the simulator, driving the wire.

Two modes, both against a live :class:`~repro.service.SchedulerService`:

* :func:`replay_campaign` — **deterministic replay**: the simulator runs
  its seeded host population locally (same arrival traces, same RNG
  substreams), but every scheduler interaction goes over real sockets
  through a :class:`~repro.service.client.RemoteGridServer` proxy.  One
  RPC is in flight at a time and each carries the local DES clock, so the
  wire-driven campaign reconciles exactly with the in-process run — same
  validated-result counts, same :class:`ValidationStats`.
* :func:`storm` — **open-loop throughput storm**: N concurrent
  keep-alive connections sweeping a host-id range through
  heartbeat / request-work / report-result cycles as fast as the service
  answers, measuring sustained requests/s, latency quantiles and refusal
  behaviour under overload.  Every request is accounted for: answered,
  refused (503) or errored — nothing is silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .client import RemoteGridServer, SchedulerClient

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..boinc.simulator import CampaignResult, VolunteerGridSimulation

__all__ = ["replay_campaign", "storm", "StormReport"]


def replay_campaign(
    sim_model: "VolunteerGridSimulation",
    url: str | SchedulerClient,
    timeout: float = 60.0,
) -> "CampaignResult":
    """Replay ``sim_model``'s seeded campaign as a real RPC client.

    The service must be serving the *same* campaign (same library, seed
    and config) — the proxy verifies workunit count and deadline against
    ``GET /`` before driving it, and raises :class:`ValueError` on
    mismatch.  Returns the usual :class:`CampaignResult`; its ``server``
    is the wire proxy, whose stats/completion come from the service's
    final summary.
    """
    client = (
        SchedulerClient.from_url(url, timeout=timeout)
        if isinstance(url, str)
        else url
    )

    def factory(*, sim, workunits, config, id_base, **_ignored):
        return RemoteGridServer(
            client, sim, workunits, config, id_base=id_base,
        )

    try:
        return sim_model.run(server_factory=factory)
    finally:
        client.close()


# -- open-loop storm ---------------------------------------------------------


@dataclass
class StormReport:
    """What the storm sent and what came back (nothing unaccounted)."""

    n_hosts: int
    connections: int
    sent: int = 0
    answered: int = 0
    ok: int = 0
    errors: int = 0
    refused: dict[str, int] = field(
        default_factory=lambda: {"overload": 0, "draining": 0, "outage": 0}
    )
    assignments: int = 0
    reports: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list, repr=False)
    #: the service's own per-op ``service.rpc_wall_s.<op>`` P² sketches
    #: (from ``GET /v1/status`` after the storm), keyed by sketch name
    service_rpc_wall_s: dict[str, Any] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Requests that got *no* response at all (target: zero — a
        refusal is an answer, a drop is a failure)."""
        return self.sent - self.answered

    @property
    def refused_total(self) -> int:
        return sum(self.refused.values())

    @property
    def requests_per_s(self) -> float:
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    def latency_quantiles(self) -> dict[str, float]:
        if not self.latencies_s:
            return {}
        ordered = sorted(self.latencies_s)
        last = len(ordered) - 1
        return {
            f"p{q * 100:g}": ordered[min(last, int(q * len(ordered)))]
            for q in (0.5, 0.9, 0.99)
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_hosts": self.n_hosts,
            "connections": self.connections,
            "sent": self.sent,
            "answered": self.answered,
            "dropped": self.dropped,
            "ok": self.ok,
            "errors": self.errors,
            "refused": dict(self.refused),
            "assignments": self.assignments,
            "reports": self.reports,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "latency_s": self.latency_quantiles(),
            "service_rpc_wall_s": dict(self.service_rpc_wall_s),
        }


async def _raw_call(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: dict[str, Any] | None,
) -> tuple[int, dict[str, Any]]:
    """One keep-alive HTTP/1.1 exchange on an open connection."""
    payload = json.dumps(body, separators=(",", ":")).encode() if body else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: storm\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("service closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        hline = await reader.readline()
        if hline in (b"\r\n", b"\n", b""):
            break
        if hline.lower().startswith(b"content-length:"):
            length = int(hline.split(b":", 1)[1])
    raw = await reader.readexactly(length) if length else b""
    return status, json.loads(raw) if raw else {}


async def _storm_worker(
    host: str,
    port: int,
    host_ids: list[int],
    t_step_s: float,
    report_results: bool,
    out: StormReport,
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i, host_id in enumerate(host_ids):
            t = i * t_step_s
            calls: list[tuple[str, str, dict[str, Any] | None]] = [
                ("POST", "/v1/heartbeat", {"host": host_id}),
                ("POST", "/v1/request-work", {"host": host_id, "t": t}),
            ]
            assignment = None
            for method, path, body in calls:
                out.sent += 1
                t0 = time.perf_counter()
                try:
                    status, payload = await _raw_call(reader, writer, method, path, body)
                except (ConnectionError, asyncio.IncompleteReadError):
                    return  # remaining requests on this conn count as dropped
                out.latencies_s.append(time.perf_counter() - t0)
                out.answered += 1
                if status == 200:
                    out.ok += 1
                    if path.endswith("request-work"):
                        assignment = payload.get("assignment")
                        if assignment is not None:
                            out.assignments += 1
                elif status == 503:
                    out.refused[payload.get("reason", "overload")] = (
                        out.refused.get(payload.get("reason", "overload"), 0) + 1
                    )
                else:
                    out.errors += 1
            if report_results and assignment is not None:
                out.sent += 1
                t0 = time.perf_counter()
                try:
                    status, payload = await _raw_call(
                        reader, writer, "POST", "/v1/report-result",
                        {
                            "token": assignment["token"],
                            "valid": True,
                            "accounted_cpu_s": assignment["cost_reference_s"],
                            "t": t,
                        },
                    )
                except (ConnectionError, asyncio.IncompleteReadError):
                    return
                out.latencies_s.append(time.perf_counter() - t0)
                out.answered += 1
                if status == 200:
                    out.ok += 1
                    out.reports += 1
                elif status == 503:
                    out.refused[payload.get("reason", "overload")] = (
                        out.refused.get(payload.get("reason", "overload"), 0) + 1
                    )
                else:
                    out.errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _storm(
    host: str,
    port: int,
    n_hosts: int,
    connections: int,
    requests_per_host: int,
    t_step_s: float,
    report_results: bool,
) -> StormReport:
    report = StormReport(n_hosts=n_hosts, connections=connections)
    # Round-robin the host-id space over the connections; every host id in
    # [0, n_hosts) is exercised at least requests_per_host times in total.
    ids = [h for _ in range(requests_per_host) for h in range(n_hosts)]
    chunks = [ids[c::connections] for c in range(connections)]
    t0 = time.perf_counter()
    await asyncio.gather(
        *(
            _storm_worker(host, port, chunk, t_step_s, report_results, report)
            for chunk in chunks
            if chunk
        )
    )
    report.wall_s = time.perf_counter() - t0
    return report


def storm(
    url: str,
    n_hosts: int = 10_000,
    connections: int = 32,
    requests_per_host: int = 1,
    t_step_s: float = 1.0,
    report_results: bool = True,
) -> StormReport:
    """Open-loop request storm against a running service (blocking).

    Sweeps ``n_hosts`` distinct host ids over ``connections`` keep-alive
    connections; each visit is a heartbeat + request-work pair (plus a
    report-result when work was assigned).  The mutating requests carry a
    slowly-advancing campaign time so issued work stays within the
    horizon.  Returns a :class:`StormReport`; ``report.dropped == 0``
    means the service answered every single request — refusals included.
    """
    client = SchedulerClient.from_url(url)
    report = asyncio.run(
        _storm(
            client.host, client.port, n_hosts, connections,
            requests_per_host, t_step_s, report_results,
        )
    )
    try:
        # The service's own view of the storm: per-op wall-time sketches.
        report.service_rpc_wall_s = client.status().get("rpc_wall_s", {})
    except OSError:  # pragma: no cover - service died mid-teardown
        pass
    finally:
        client.close()
    return report
