"""Legacy setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable.  This shim
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use the
legacy ``setup.py develop`` path instead.
"""
from setuptools import setup

setup()
