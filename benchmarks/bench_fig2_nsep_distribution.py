"""Figure 2 — distribution of the number of starting positions (NsepMax).

Paper: "most of the proteins have less than 3000 starting positions to
compute.  One of them has more than 8000."  The sum over couples pins the
49,481,544 maximum workunit count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.distributions import histogram, nsep_bins
from repro.analysis.report import paper_vs_measured, render_histogram
from repro.proteins.library import ProteinLibrary


def test_fig2_nsep_distribution(record_artifact, record_data, benchmark):
    library = benchmark(ProteinLibrary.phase1)

    edges, counts = histogram(library.nsep.astype(float), nsep_bins())
    record_data(
        "fig2_nsep_distribution",
        {"nsep": library.nsep, "bin_edges": edges, "counts": counts},
        experiment="Figure 2",
    )
    chart = render_histogram(
        edges, counts, label=lambda lo, hi: f"{lo:>5.0f}-{hi:<5.0f}"
    )
    comparison = paper_vs_measured([
        ("proteins", C.N_PROTEINS, len(library)),
        ("sum of Nsep", C.SUM_NSEP, int(library.nsep.sum())),
        ("max workunits", C.TOTAL_MAX_WORKUNITS, library.total_max_workunits),
        ("proteins below 3000", "most", f"{(library.nsep < 3000).mean():.0%}"),
        ("max Nsep", "> 8000", int(library.nsep.max())),
        ("median Nsep", "-", float(np.median(library.nsep))),
    ])
    record_artifact("fig2_nsep_distribution", chart + "\n\n" + comparison)

    assert counts.sum() == 168
    assert (library.nsep < 3000).mean() > 0.75
    assert library.nsep.max() > 8000
    assert library.total_max_workunits == C.TOTAL_MAX_WORKUNITS
