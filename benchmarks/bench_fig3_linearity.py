"""Figure 3 — linearity of the MAXDo computing time.

Paper: for fixed couples the run time is linear in the orientation count
(3a) and in the starting-position count (3b); "the linear property was
checked over 400 random couples of proteins.  The correlation coefficient
is always around 0.99."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_table


def test_fig3_linearity(cost_model, record_artifact, benchmark):
    rot_fits, sep_fits = benchmark.pedantic(
        cost_model.linearity_experiment,
        kwargs={"n_samples": C.LINEARITY_CHECK_COUPLES},
        rounds=1,
        iterations=1,
    )

    rot_corr = np.array([f.correlation for f in rot_fits])
    sep_corr = np.array([f.correlation for f in sep_fits])

    # One example couple rendered like the figure's fitted line.
    example = rot_fits[0]
    counts = np.arange(1, 22)
    example_rows = [
        [int(c), f"{cost_model.measured_ct(0, 1, 1, int(c)):.1f}",
         f"{example.slope * c + example.intercept:.1f}"]
        for c in counts[::5]
    ]

    comparison = paper_vs_measured([
        ("couples checked", C.LINEARITY_CHECK_COUPLES, len(rot_fits)),
        ("min correlation (rot sweep)", 0.99, float(rot_corr.min())),
        ("min correlation (sep sweep)", 0.99, float(sep_corr.min())),
        ("mean correlation (rot)", 0.99, float(rot_corr.mean())),
        ("mean correlation (sep)", 0.99, float(sep_corr.mean())),
        ("intercept ~ 0 (median |b|, s)", 0,
         float(np.median(np.abs([f.intercept for f in sep_fits])))),
    ])
    record_artifact(
        "fig3_linearity",
        "example couple, time vs orientation count (a*x+b fit):\n"
        + render_table(["n_rot", "measured (s)", "fit (s)"], example_rows)
        + "\n\n" + comparison,
    )

    assert rot_corr.min() >= C.LINEARITY_MIN_CORRELATION
    assert sep_corr.min() >= C.LINEARITY_MIN_CORRELATION


def test_fig3_real_engine_linearity(record_artifact, benchmark):
    """Cross-check with the real docking engine: wall time per evaluation
    grows linearly in the position count (the structural property the
    cost model encodes)."""
    import time

    from repro.maxdo.docking import dock_couple
    from repro.proteins.model import synthesize_protein
    from repro.rng import stream

    receptor = synthesize_protein("R", 40, stream(1, "lin-r"))
    ligand = synthesize_protein("L", 30, stream(1, "lin-l"))

    def measure(nsep: int) -> float:
        best = float("inf")
        for _ in range(3):  # best-of-3 damps scheduler noise
            t0 = time.perf_counter()
            dock_couple(
                receptor, ligand, isep_start=1, nsep=nsep, total_nsep=16,
                n_couples=3, n_gamma=2, minimize=False,
            )
            best = min(best, time.perf_counter() - t0)
        return best

    def sweep():
        measure(1)  # warm caches
        return np.array([measure(n) for n in (1, 2, 4, 8)])

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = np.array([1.0, 2.0, 4.0, 8.0])
    r = float(np.corrcoef(counts, times)[0, 1])
    record_artifact(
        "fig3_real_engine",
        f"real-engine wall time vs nsep: {np.round(times * 1e3, 2).tolist()} ms"
        f"\ncorrelation: {r:.4f}",
    )
    assert r > 0.95
