"""Ablation — interaction-energy model variants.

The reduced docking energy has physical knobs (dielectric, implicit-solvent
screening, LJ scaling, soft-core softening).  This bench docks the same
tiny couple under each variant and records how the energy decomposition
responds — the sanity panel for anyone swapping the Zacharias-style
defaults for their own parametrization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.maxdo.docking import dock_couple
from repro.maxdo.energy import EnergyParams
from repro.proteins.model import synthesize_protein
from repro.rng import stream

VARIANTS = {
    "default (eps=15, Debye 8 A)": EnergyParams(),
    "weak electrostatics (eps=60)": EnergyParams(dielectric=60.0),
    "strong screening (Debye 2 A)": EnergyParams(debye_length_a=2.0),
    "LJ halved": EnergyParams(lj_scale=0.5),
    "softer core (3 A)": EnergyParams(softening_a=3.0),
}


def test_energy_model_variants(record_artifact, benchmark):
    receptor = synthesize_protein("R", 45, stream(21, "em-r"))
    ligand = synthesize_protein("L", 35, stream(21, "em-l"))

    def sweep():
        out = {}
        for label, params in VARIANTS.items():
            result = dock_couple(
                receptor, ligand, isep_start=1, nsep=4, total_nsep=30,
                n_couples=4, n_gamma=2, minimize=True, max_iterations=20,
                energy_params=params,
            )
            best = result.best()
            out[label] = (
                float(result.e_total.min()),
                float(result.e_lj[best]),
                float(result.e_elec[best]),
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [label, f"{tot:.2f}", f"{lj:.2f}", f"{el:.2f}"]
        for label, (tot, lj, el) in results.items()
    ]
    record_artifact(
        "ablation_energy_model",
        "same couple, same starting grid, different energy models\n"
        "(best pose of a 4-position x 8-orientation map):\n"
        + render_table(
            ["model", "best E_tot", "E_lj at best", "E_elec at best"], rows
        ),
    )

    default = results["default (eps=15, Debye 8 A)"]
    # Halving LJ weakens the best total binding (minimization included).
    assert results["LJ halved"][0] > default[0]
    # Every variant still finds an attractive optimum.
    for tot, _, _ in results.values():
        assert tot < 0

    # Parameter monotonicity is asserted at a FIXED pose (minimization
    # relocates the optimum, so post-optimization components need not be
    # monotone in the parameters).
    from repro.maxdo.energy import interaction_energy

    pose_t = np.array(
        [receptor.bounding_radius + ligand.bounding_radius + 2.0, 0.0, 0.0]
    )
    at_pose = {
        label: interaction_energy(
            receptor, ligand, np.eye(3), pose_t, params=params
        )
        for label, params in VARIANTS.items()
    }
    base = at_pose["default (eps=15, Debye 8 A)"]
    assert abs(at_pose["weak electrostatics (eps=60)"][1]) < abs(base[1])
    assert abs(at_pose["strong screening (Debye 2 A)"][1]) < abs(base[1])
    assert at_pose["LJ halved"][0] == pytest.approx(0.5 * base[0])
