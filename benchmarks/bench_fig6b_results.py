"""Figure 6b — number of results received during the project.

Paper: 5,418,010 results disclosed vs 3,936,010 effective ("only 73% are
useful results"); redundancy factor 1.37, higher at the beginning while
results were validated by comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_table


def test_fig6b_results(fluid_result, record_artifact, record_data, benchmark):
    fluid, _ = fluid_result
    result = benchmark(fluid.run)
    record_data(
        "fig6b_results",
        {
            "week": result.weeks,
            "results_disclosed": result.results_disclosed,
            "results_useful": result.results_useful,
        },
        experiment="Figure 6b",
    )

    rows = []
    for w in range(0, len(result.weeks), 4):
        rows.append([
            int(w),
            f"{result.results_disclosed[w]:,.0f}",
            f"{result.results_useful[w]:,.0f}",
            f"{result.results_useful[w] / max(result.results_disclosed[w], 1):.0%}",
        ])
    table = render_table(["week", "results received", "useful", "useful %"], rows)

    early = result.results_disclosed[:12].sum() / max(
        result.results_useful[:12].sum(), 1
    )
    late = result.results_disclosed[17:].sum() / max(
        result.results_useful[17:].sum(), 1
    )
    comparison = paper_vs_measured([
        ("results disclosed", C.RESULTS_DISCLOSED,
         float(result.results_disclosed.sum())),
        ("effective results", C.RESULTS_EFFECTIVE,
         float(result.results_useful.sum())),
        ("redundancy factor", C.REDUNDANCY_FACTOR, result.overall_redundancy),
        ("useful fraction", C.USEFUL_RESULT_FRACTION, result.useful_fraction),
        ("early redundancy (weeks 0-12)", "higher", f"{early:.2f}"),
        ("late redundancy (weeks 17+)", "lower", f"{late:.2f}"),
    ])
    record_artifact("fig6b_results", table + "\n\n" + comparison)

    assert result.results_disclosed.sum() == pytest.approx(
        C.RESULTS_DISCLOSED, rel=0.05
    )
    assert result.results_useful.sum() == pytest.approx(C.RESULTS_EFFECTIVE, rel=0.05)
    assert result.overall_redundancy == pytest.approx(C.REDUNDANCY_FACTOR, abs=0.06)
    # "It was higher at the beginning."
    assert early > late
