"""Infrastructure benchmark — observability overhead on a live campaign.

Measures what lifecycle tracing and the riding SLO/health monitor cost a
``scaled_phase1`` campaign against the instrumentation-free baseline:

* **baseline** — no tracer, no monitor (the DES fast path end to end);
* **lifecycle** — a ring-buffer tracer on the ``server``/``agent``/
  ``fault`` channels (the spans/post-mortem input; the ``des`` channel
  stays off, so the kernel keeps its fast path);
* **lifecycle+health** — the same tracer with a :class:`HealthMonitor`
  teed into the sink (P² sketches + SLO rules evaluated per event).

The project target is < 5 % overhead over tracing disabled; the bench
records honestly whether each variant met it (``target_met``).  On a
scale-reduced campaign the overhead *fraction* is dominated by how many
events the simulated work emits per wall-millisecond — a property of
the workload, not of the emission path — so the enforced regression
thresholds are (a) the **marginal cost per emitted event** in
microseconds and (b) a generous ceiling on the overhead fraction that
only trips on a gross (several-fold) regression of the emit/observe
chain.  Bit-identity of the campaign outcome across all three variants
is asserted outright.

Records machine-readable results under ``benchmarks/artifacts/`` and as
``BENCH_obs.json`` at the repo root.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` to shrink the campaign ~8x; the
file then runs in a couple of seconds and still fails on a gross
per-event-cost regression.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.boinc.simulator import scaled_phase1
from repro.obs.tracer import RingSink, Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: campaign size; smoke trades event count for wall time (~1k events vs ~13k)
CAMPAIGN_SCALE = 700 if SMOKE else 100
CAMPAIGN_PROTEINS = 6 if SMOKE else 24
TIMING_REPEATS = 3 if SMOKE else 5

#: the lifecycle channels the span reconstructor consumes.  ``des`` is
#: deliberately absent: the simulator hands the kernel no tracer at all
#: when the filter excludes it, keeping the DES fast path.
LIFECYCLE_CHANNELS = ("server", "agent", "fault")

#: the stated project target — recorded, not enforced (see module docstring)
TARGET_FRACTION = 0.05

#: enforced ceilings.  Per-event marginal cost is the real invariant of
#: the emit/observe chain (~2 us measured for plain tracing, ~10 us with
#: the health monitor teed in); the ceilings are sized ~2x above measured
#: so they trip on a real regression, not on a loaded CI machine, and
#: the fraction ceiling is a gross-regression backstop sized to the known
#: event density of the workload, not a performance claim.
MAX_US_PER_EVENT = 25.0 if SMOKE else 20.0
MAX_OVERHEAD_FRACTION = 4.0 if SMOKE else 3.0


def _run(tracer=None, health=None):
    return scaled_phase1(
        scale=CAMPAIGN_SCALE,
        n_proteins=CAMPAIGN_PROTEINS,
        tracer=tracer,
        health=health,
    ).run()


def _best_of(make_kwargs):
    """Best-of-N wall time; returns (seconds, last result, last tracer)."""
    best = float("inf")
    result = tracer = None
    for _ in range(TIMING_REPEATS):
        kwargs = make_kwargs()
        t0 = perf_counter()
        result = _run(**kwargs)
        best = min(best, perf_counter() - t0)
        tracer = kwargs.get("tracer")
    return best, result, tracer


VARIANTS = [
    ("baseline", lambda: {}),
    (
        "lifecycle",
        lambda: {
            "tracer": Tracer(
                sink=RingSink(capacity=2_000_000), channels=LIFECYCLE_CHANNELS
            )
        },
    ),
    (
        "lifecycle+health",
        lambda: {
            "tracer": Tracer(
                sink=RingSink(capacity=2_000_000), channels=LIFECYCLE_CHANNELS
            ),
            "health": True,
        },
    ),
]


def test_bench_obs_overhead(record_artifact, record_bench_json):
    rows = {}
    results = {}
    base_s = None
    for name, make_kwargs in VARIANTS:
        wall_s, result, tracer = _best_of(make_kwargs)
        n_events = tracer.n_events if tracer is not None else 0
        if base_s is None:
            base_s = wall_s
        overhead = wall_s / base_s - 1.0
        us_per_event = (
            (wall_s - base_s) / n_events * 1e6 if n_events else 0.0
        )
        results[name] = result
        rows[name] = {
            "wall_seconds": wall_s,
            "n_events": n_events,
            "overhead_fraction": overhead,
            "us_per_event": us_per_event,
            "target_met": overhead < TARGET_FRACTION,
        }

    # The monitor must not perturb the campaign: identical outcomes
    # across all three variants (the health channel never reaches the
    # lifecycle stream, and the monitor draws no randomness).
    base = results["baseline"]
    for name, result in results.items():
        assert result.completion_time == base.completion_time, name
        assert result.server.stats.disclosed == base.server.stats.disclosed, name
        assert result.server.stats.effective == base.server.stats.effective, name

    lines = [
        f"campaign scale={CAMPAIGN_SCALE} n_proteins={CAMPAIGN_PROTEINS} "
        f"(smoke={SMOKE}, best of {TIMING_REPEATS})",
        f"{'variant':<18}{'wall ms':>10}{'events':>9}{'overhead':>10}"
        f"{'us/event':>10}{'<5%':>6}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<18}{row['wall_seconds'] * 1e3:>10.2f}"
            f"{row['n_events']:>9,}"
            f"{row['overhead_fraction']:>9.1%}"
            f"{row['us_per_event']:>10.2f}"
            f"{'yes' if row['target_met'] else 'NO':>6}"
        )
    lines.append(
        f"enforced: us/event < {MAX_US_PER_EVENT:.0f}, "
        f"overhead < {MAX_OVERHEAD_FRACTION:.0%} (gross-regression backstop); "
        f"recorded target: {TARGET_FRACTION:.0%}"
    )
    record_artifact("bench_obs_overhead", "\n".join(lines))
    record_bench_json(
        "obs",
        {
            "smoke": SMOKE,
            "campaign": {
                "scale": CAMPAIGN_SCALE,
                "n_proteins": CAMPAIGN_PROTEINS,
                "timing_repeats": TIMING_REPEATS,
            },
            "variants": rows,
            "target_fraction": TARGET_FRACTION,
            "max_us_per_event": MAX_US_PER_EVENT,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "outcome_bit_identical": True,
        },
        experiment="Tracing + health-monitor overhead on scaled_phase1",
    )

    for name, row in rows.items():
        if name == "baseline":
            continue
        assert row["us_per_event"] < MAX_US_PER_EVENT, (
            f"{name}: {row['us_per_event']:.2f} us/event "
            f"(ceiling {MAX_US_PER_EVENT})"
        )
        assert row["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
            f"{name}: {row['overhead_fraction']:.1%} overhead "
            f"(backstop {MAX_OVERHEAD_FRACTION:.0%})"
        )
