"""Infrastructure benchmark — observability overhead on a live campaign.

Measures what lifecycle tracing and the riding SLO/health monitor cost a
``scaled_phase1`` campaign against the instrumentation-free baseline:

* **baseline** — no tracer, no monitor (the DES fast path end to end);
* **lifecycle** — a ring-buffer tracer on the ``server``/``agent``/
  ``fault`` channels (the spans/post-mortem input; the ``des`` channel
  stays off, so the kernel keeps its fast path);
* **lifecycle+health** — the same tracer with a :class:`HealthMonitor`
  teed into the sink (stride-drained batch fold, P² sketches, SLO rules
  swept once per drain);
* **lifecycle+ledger** — the same tracer with a :class:`HostLedger`
  teed into the sink (the same stride-drained tee pattern folding
  per-host counters, trust trajectory and turnaround sketches).

Methodology.  End-to-end walls are timed in **interleaved rounds** (one
run of each variant per round, best-of across rounds) so slow drift of
the host machine hits all variants alike.  The health monitor's own
cost — an ~0.5 us/event marginal that end-to-end deltas cannot resolve
against multi-millisecond host noise — is measured by **replaying the
captured lifecycle event stream** through the exact tee the campaign
uses (``HealthSink`` wrapping a ring) versus the plain ring, best-of
many short repeats.  The replay exercises the identical code path the
live campaign does (the digest-identity assertions below prove the
monitor changes nothing else), so the difference *is* the monitor's
cost, isolated from scheduler noise.

What "< 5 %" means per variant — recorded as ``target_met``:

* ``lifecycle`` is held against the instrumentation-free baseline.  At
  this workload's event density (~13k events over a ~10^2 ms campaign)
  the pure-Python emit path costs ~2-3 us/event, so this target is not
  currently met; the number is recorded honestly rather than gamed by
  lowering the event density.
* ``lifecycle+health`` and ``lifecycle+ledger`` are held against
  **lifecycle tracing alone**: each is an add-on to an already-traced
  campaign, so its cost is the replay-measured marginal as a fraction
  of the lifecycle wall (``marginal_fraction``).  The shared fast path
  (immediate-forward tee, dispatch-filtered stride drain, batched fold)
  keeps both under 5 %.

Enforced thresholds are generous gross-regression backstops on the
per-event marginals; bit-identity of the campaign outcome across all
three variants is asserted outright.

Records machine-readable results under ``benchmarks/artifacts/`` and as
``BENCH_obs.json`` at the repo root.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` to shrink the campaign ~8x; the
file then runs in a couple of seconds and still fails on a gross
per-event-cost regression.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.boinc.simulator import scaled_phase1
from repro.obs.health import HealthMonitor, HealthSink
from repro.obs.ledger import HostLedger, LedgerSink
from repro.obs.tracer import RingSink, Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: campaign size; smoke trades event count for wall time (~1k events vs ~13k)
CAMPAIGN_SCALE = 700 if SMOKE else 100
CAMPAIGN_PROTEINS = 6 if SMOKE else 24
TIMING_ROUNDS = 3 if SMOKE else 5
REPLAY_REPEATS = 7 if SMOKE else 15

#: the lifecycle channels the span reconstructor consumes.  ``des`` is
#: deliberately absent: the simulator hands the kernel no tracer at all
#: when the filter excludes it, keeping the DES fast path.
LIFECYCLE_CHANNELS = ("server", "agent", "fault")

#: the stated project target (see module docstring for the per-variant
#: reference point)
TARGET_FRACTION = 0.05

#: enforced ceilings, sized well above measured so they trip on a real
#: regression, not on a loaded CI machine: per-event emit cost ~2.5 us
#: measured, monitor tee+fold marginal ~0.5 us/event measured.
MAX_US_PER_EVENT = 25.0 if SMOKE else 20.0
MAX_OVERHEAD_FRACTION = 4.0 if SMOKE else 3.0
MAX_MARGINAL_US_PER_EVENT = 5.0


def _run(**kwargs):
    return scaled_phase1(
        scale=CAMPAIGN_SCALE,
        n_proteins=CAMPAIGN_PROTEINS,
        **kwargs,
    ).run()


VARIANTS = [
    ("baseline", lambda: {}),
    (
        "lifecycle",
        lambda: {
            "tracer": Tracer(
                sink=RingSink(capacity=2_000_000), channels=LIFECYCLE_CHANNELS
            )
        },
    ),
    (
        "lifecycle+health",
        lambda: {
            "tracer": Tracer(
                sink=RingSink(capacity=2_000_000), channels=LIFECYCLE_CHANNELS
            ),
            "health": True,
        },
    ),
    (
        "lifecycle+ledger",
        lambda: {
            "tracer": Tracer(
                sink=RingSink(capacity=2_000_000), channels=LIFECYCLE_CHANNELS
            ),
            "ledger": True,
        },
    ),
]


def _replay_marginal_s(events, make_tee):
    """The tee+fold cost of one observer on ``events``, via paired replays.

    ``make_tee(ring)`` builds the observer's sink tee around a plain ring
    (``HealthSink`` or ``LedgerSink`` — the identical forward-first
    stride-drain pattern), so the measured difference is the observer's
    cost on the exact code path the live campaign uses.
    """

    def through_tee():
        sink = make_tee(RingSink(capacity=2_000_000))
        append = sink.append
        t0 = perf_counter()
        for event in events:
            append(event)
        sink.flush()
        return perf_counter() - t0

    def through_plain():
        append = RingSink(capacity=2_000_000).append
        t0 = perf_counter()
        for event in events:
            append(event)
        return perf_counter() - t0

    tee_s = min(through_tee() for _ in range(REPLAY_REPEATS))
    plain_s = min(through_plain() for _ in range(REPLAY_REPEATS))
    return max(0.0, tee_s - plain_s)


def test_bench_obs_overhead(record_artifact, record_bench_json):
    walls = {name: float("inf") for name, _ in VARIANTS}
    results = {}
    tracers = {}
    # Interleaved rounds: one run of every variant per round, so host
    # slowdowns hit all variants alike and best-of stays comparable.
    for _ in range(TIMING_ROUNDS):
        for name, make_kwargs in VARIANTS:
            kwargs = make_kwargs()
            t0 = perf_counter()
            result = _run(**kwargs)
            walls[name] = min(walls[name], perf_counter() - t0)
            results[name] = result
            tracers[name] = kwargs.get("tracer")

    base_s = walls["baseline"]
    life_s = walls["lifecycle"]
    life_events = list(tracers["lifecycle"].sink.events)
    life_server = results["lifecycle"].server

    def health_tee(ring):
        monitor = HealthMonitor()
        monitor.configure_campaign(
            life_server.n_workunits, life_server.config.max_reissues
        )
        return HealthSink(monitor, ring)

    marginals_s = {
        "lifecycle+health": _replay_marginal_s(life_events, health_tee),
        "lifecycle+ledger": _replay_marginal_s(
            life_events, lambda ring: LedgerSink(HostLedger(), ring)
        ),
    }

    rows = {}
    for name, _ in VARIANTS:
        wall_s = walls[name]
        tracer = tracers[name]
        n_events = tracer.n_events if tracer is not None else 0
        # Clamped at zero: at smoke scale the run-to-run timing noise
        # exceeds the true marginal cost, and best-of can land an
        # instrumented variant *under* its reference.  A negative
        # overhead is physically meaningless — report 0 so the recorded
        # series stays monotone and trustworthy.
        overhead = max(0.0, wall_s / base_s - 1.0)
        us_per_event = (
            max(0.0, (wall_s - base_s) / n_events * 1e6) if n_events else 0.0
        )
        row = {
            "wall_seconds": wall_s,
            "n_events": n_events,
            "overhead_fraction": overhead,
            "us_per_event": us_per_event,
        }
        if name in marginals_s:
            # The observer's own cost: replay-measured marginal over
            # lifecycle tracing (see module docstring).
            marginal_s = marginals_s[name]
            marginal = marginal_s / life_s
            row["marginal_fraction"] = marginal
            row["marginal_us_per_event"] = (
                marginal_s / len(life_events) * 1e6 if life_events else 0.0
            )
            row["target"] = "replay marginal over lifecycle"
            row["target_met"] = marginal < TARGET_FRACTION
        else:
            row["target"] = "overhead over baseline"
            row["target_met"] = overhead < TARGET_FRACTION
        rows[name] = row

    # The monitor must not perturb the campaign: identical outcomes
    # across all three variants (the health channel never reaches the
    # lifecycle stream, and the monitor draws no randomness).
    base = results["baseline"]
    for name, result in results.items():
        assert result.completion_time == base.completion_time, name
        assert result.server.stats.disclosed == base.server.stats.disclosed, name
        assert result.server.stats.effective == base.server.stats.effective, name

    lines = [
        f"campaign scale={CAMPAIGN_SCALE} n_proteins={CAMPAIGN_PROTEINS} "
        f"(smoke={SMOKE}, best of {TIMING_ROUNDS} interleaved rounds, "
        f"replay best of {REPLAY_REPEATS})",
        f"{'variant':<18}{'wall ms':>10}{'events':>9}{'overhead':>10}"
        f"{'us/event':>10}{'<5%':>6}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<18}{row['wall_seconds'] * 1e3:>10.2f}"
            f"{row['n_events']:>9,}"
            f"{row['overhead_fraction']:>9.1%}"
            f"{row['us_per_event']:>10.2f}"
            f"{'yes' if row['target_met'] else 'NO':>6}"
        )
    for name, observer in (
        ("lifecycle+health", "health monitor"),
        ("lifecycle+ledger", "host ledger"),
    ):
        row = rows[name]
        lines.append(
            f"{observer} marginal (replayed tee+fold): "
            f"{marginals_s[name] * 1e3:.2f} ms = {row['marginal_fraction']:.1%} "
            f"of lifecycle wall ({row['marginal_us_per_event']:.2f} "
            f"us/event); target {TARGET_FRACTION:.0%}"
        )
    lines.append(
        f"enforced: us/event < {MAX_US_PER_EVENT:.0f}, "
        f"overhead < {MAX_OVERHEAD_FRACTION:.0%}, "
        f"observer marginals < {MAX_MARGINAL_US_PER_EVENT:.0f} us/event "
        f"(gross-regression backstops)"
    )
    record_artifact("bench_obs_overhead", "\n".join(lines))
    record_bench_json(
        "obs",
        {
            "smoke": SMOKE,
            "campaign": {
                "scale": CAMPAIGN_SCALE,
                "n_proteins": CAMPAIGN_PROTEINS,
                "timing_rounds": TIMING_ROUNDS,
                "replay_repeats": REPLAY_REPEATS,
            },
            "variants": rows,
            "target_fraction": TARGET_FRACTION,
            "max_us_per_event": MAX_US_PER_EVENT,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "max_marginal_us_per_event": MAX_MARGINAL_US_PER_EVENT,
            "outcome_bit_identical": True,
        },
        experiment="Tracing + health-monitor + host-ledger overhead on scaled_phase1",
    )

    for name, row in rows.items():
        if name == "baseline":
            continue
        assert row["us_per_event"] < MAX_US_PER_EVENT, (
            f"{name}: {row['us_per_event']:.2f} us/event "
            f"(ceiling {MAX_US_PER_EVENT})"
        )
        assert row["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
            f"{name}: {row['overhead_fraction']:.1%} overhead "
            f"(backstop {MAX_OVERHEAD_FRACTION:.0%})"
        )
    for name in marginals_s:
        assert rows[name]["marginal_us_per_event"] < MAX_MARGINAL_US_PER_EVENT, (
            f"{name} marginal {rows[name]['marginal_us_per_event']:.2f} "
            f"us/event (backstop {MAX_MARGINAL_US_PER_EVENT:.0f})"
        )
