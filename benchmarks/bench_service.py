"""Infrastructure benchmark — the live scheduler service on the wire.

Measures the :mod:`repro.service` front-end the way the paper's §3.1
operations story demands: a scheduler that keeps answering under load.
Three phases, one JSON verdict (``BENCH_service.json``):

* **sustained** — an open-loop request storm sweeping 10,000 distinct
  simulated hosts (heartbeat + request-work + report-result cycles) over
  keep-alive connections.  Records sustained requests/s and latency
  quantiles; enforces **zero dropped requests** — every request is
  answered (200 or an explicit 503), nothing vanishes.
* **overload** — the same storm against a deliberately tiny single-writer
  queue with an artificially slow writer.  The bounded queue must refuse
  (503 + Retry-After) rather than buffer without bound or drop: enforced
  are refusals > 0, zero drops, zero errors, and an observed queue depth
  that never exceeds ``max_pending``.
* **replay** — ``replay_campaign`` drives a seeded campaign through real
  sockets and must reconcile **exactly** with the same campaign run
  in-process: equal ``ValidationStats``, equal completion time.

Methodology and thresholds.  Wire throughput on localhost is hostage to
the machine, so the enforced guards are run-internal, in the repo's
usual style (no cross-run absolute comparisons): a short calibration
storm runs first and the measured phase must sustain at least half the
calibration's rate (``MIN_SUSTAINED_RATIO = 0.5`` — a >50 % collapse
under sustained load fails), plus a deliberately generous absolute
floor (``MIN_RPS_FLOOR``) as a gross-regression backstop, orders of
magnitude under the ~10k requests/s measured.  Correctness guards
(zero drops, bounded queue, exact replay reconciliation) are absolute.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` to shrink the storm ~8x; the
file then runs in a few seconds and still enforces every guard.
"""

from __future__ import annotations

import os

from repro import CampaignConfig, FaultPlan
from repro.boinc.simulator import scaled_phase1
from repro.service import ServiceConfig, replay_campaign, serve_in_thread, storm

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: sustained phase — the acceptance scale is 10k simulated hosts
STORM_HOSTS = 1_250 if SMOKE else 10_000
STORM_CONNECTIONS = 8 if SMOKE else 32
CALIBRATION_HOSTS = STORM_HOSTS // 10

#: overload phase — a queue this small under this writer delay *must*
#: refuse; the storm outruns the writer by construction
OVERLOAD_HOSTS = 120 if SMOKE else 400
OVERLOAD_CONNECTIONS = 16
OVERLOAD_QUEUE = 4
OVERLOAD_WRITER_DELAY_S = 0.005

#: run-internal stability guard: measured phase vs calibration phase
MIN_SUSTAINED_RATIO = 0.5
#: gross backstop, far under the ~10k requests/s measured on localhost
MIN_RPS_FLOOR = 200.0


def _campaign(seed: int = 11):
    """The storm target: more workunits (~14.8k full / ~2k smoke) than the
    storm can drain, so request-work keeps issuing real assignments."""
    if SMOKE:
        return scaled_phase1(scale=50.0, n_proteins=24, seed=seed)
    return scaled_phase1(scale=10.0, n_proteins=32, seed=seed)


def _replay_campaign(seed: int = 5):
    """Seeded, faulted (incl. outage windows) campaign for reconciliation."""
    config = CampaignConfig(
        faults=FaultPlan.from_spec(
            "crash=5,corrupt=0.05,sabotage=0.1,loss=0.05,outage=8x24,maxreissue=8"
        )
    )
    return scaled_phase1(
        scale=900.0, n_proteins=5, seed=seed, horizon_weeks=9.0, config=config
    )


def test_service_wire_benchmark(record_bench_json, record_artifact):
    # -- phase 1: sustained throughput at 10k simulated hosts ---------------
    # calibration and measurement each get a fresh service (identical
    # config), so the measured phase issues work from a full queue
    handle = serve_in_thread(_campaign())
    try:
        calibration = storm(
            handle.url, n_hosts=CALIBRATION_HOSTS,
            connections=STORM_CONNECTIONS, t_step_s=0.1,
        )
    finally:
        handle.stop()
    handle = serve_in_thread(_campaign())
    try:
        sustained = storm(
            handle.url, n_hosts=STORM_HOSTS,
            connections=STORM_CONNECTIONS, t_step_s=0.1,
        )
        sustained_refused_by_service = dict(handle.service.refused)
    finally:
        handle.stop()

    assert sustained.sent >= 2 * STORM_HOSTS  # heartbeat + request-work each
    assert sustained.dropped == 0, "the service dropped requests under load"
    assert sustained.errors == 0
    assert sustained.assignments > 0 and sustained.reports > 0
    assert calibration.dropped == 0

    ratio = (
        sustained.requests_per_s / calibration.requests_per_s
        if calibration.requests_per_s
        else 0.0
    )
    assert ratio >= MIN_SUSTAINED_RATIO, (
        f"throughput collapsed under sustained load: {sustained.requests_per_s:.0f}"
        f" vs calibration {calibration.requests_per_s:.0f} requests/s"
    )
    assert sustained.requests_per_s >= MIN_RPS_FLOOR

    # -- phase 2: overload refuses explicitly, never drops ------------------
    handle = serve_in_thread(
        _campaign(seed=12),
        config=ServiceConfig(
            max_pending=OVERLOAD_QUEUE, writer_delay_s=OVERLOAD_WRITER_DELAY_S
        ),
    )
    try:
        overload = storm(
            handle.url, n_hosts=OVERLOAD_HOSTS,
            connections=OVERLOAD_CONNECTIONS, report_results=False, t_step_s=0.0,
        )
        overload_depth = handle.service.max_queue_depth
        overload_refused_by_service = dict(handle.service.refused)
    finally:
        handle.stop()

    assert overload.dropped == 0, "overload must refuse, not drop"
    assert overload.errors == 0
    assert overload.refused["overload"] > 0, (
        "a 4-deep queue behind a slowed writer must overflow"
    )
    assert overload.ok + overload.refused_total == overload.answered == overload.sent
    assert overload_depth <= OVERLOAD_QUEUE
    assert overload_refused_by_service["overload"] == overload.refused["overload"]

    # -- phase 3: deterministic replay reconciles exactly --------------------
    reference = _replay_campaign().run()
    handle = serve_in_thread(_replay_campaign())
    try:
        wire = replay_campaign(_replay_campaign(), handle.url)
    finally:
        handle.stop()

    assert wire.server.stats == reference.server.stats
    assert wire.completion_time == reference.completion_time
    assert reference.server.stats.refused_rpcs > 0  # outage windows exercised
    replay_match = True  # the asserts above are the gate

    payload = {
        "smoke": SMOKE,
        "sustained": {
            **sustained.as_dict(),
            "calibration_requests_per_s": calibration.requests_per_s,
            "sustained_ratio": ratio,
            "refused_by_service": sustained_refused_by_service,
            "zero_dropped": sustained.dropped == 0,
        },
        "overload": {
            **overload.as_dict(),
            "max_pending": OVERLOAD_QUEUE,
            "writer_delay_s": OVERLOAD_WRITER_DELAY_S,
            "observed_max_queue_depth": overload_depth,
            "zero_dropped": overload.dropped == 0,
        },
        "replay": {
            "reconciled": replay_match,
            "validated": reference.server.stats.effective,
            "refused_rpcs": reference.server.stats.refused_rpcs,
            "completion_time_s": reference.completion_time,
        },
        "thresholds": {
            "min_sustained_ratio": MIN_SUSTAINED_RATIO,
            "min_rps_floor": MIN_RPS_FLOOR,
        },
    }
    record_bench_json("service", payload, experiment="service-wire")

    lat = sustained.latency_quantiles()
    record_artifact(
        "bench_service",
        "\n".join([
            "live scheduler service — wire benchmark",
            f"mode                    : {'smoke' if SMOKE else 'full'}",
            f"sustained hosts         : {sustained.n_hosts:,} "
            f"over {sustained.connections} connections",
            f"sustained requests/s    : {sustained.requests_per_s:,.0f} "
            f"({sustained.answered:,} answered, {sustained.dropped} dropped)",
            f"latency p50/p90/p99 (ms): "
            + "/".join(f"{lat[k] * 1e3:.2f}" for k in ("p50", "p90", "p99")),
            f"overload refusals       : {overload.refused['overload']:,} "
            f"of {overload.sent:,} sent, 0 dropped, "
            f"queue depth <= {overload_depth}",
            f"replay reconciliation   : "
            f"{'exact' if replay_match else 'DIVERGED'} "
            f"({reference.server.stats.effective} validated, "
            f"{reference.server.stats.refused_rpcs} outage refusals)",
        ]),
    )
