"""Ablation — fixed quorum vs BOINC-style adaptive replication.

Phase I paid a 1.37x redundancy factor, dominated by the quorum-comparison
era.  The BOINC middleware phase II moves to (Section 8) ships adaptive
replication: hosts with a clean record get single copies, spot-checked
occasionally.  This bench measures how much volunteer capacity that
recovers on the same campaign.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.boinc.server import ServerConfig
from repro.boinc.simulator import scaled_phase1
from repro.boinc.validator import AdaptiveReplication, ValidationPolicy
from repro.units import weeks


def _config(adaptive):
    return ServerConfig(
        validation=ValidationPolicy(switch_time=weeks(16.0)), adaptive=adaptive
    )


def test_adaptive_replication(record_artifact, benchmark):
    def run_all():
        out = {}
        for label, adaptive in (
            ("fixed quorum (phase I)", None),
            ("adaptive, trust after 5", AdaptiveReplication(5, 0.1)),
            ("adaptive, trust after 20", AdaptiveReplication(20, 0.1)),
        ):
            sim = scaled_phase1(
                scale=150, n_proteins=16, server_config=_config(adaptive)
            )
            out[label] = sim.run()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, res in results.items():
        m = res.metrics()
        by_regime = res.server.stats.validated_by_regime
        rows.append([
            label,
            f"{m.redundancy:.3f}",
            f"{m.useful_result_fraction:.1%}",
            f"{res.completion_weeks:.1f}" if res.completion_weeks else "-",
            by_regime.get("adaptive", 0),
        ])
    record_artifact(
        "ablation_adaptive_replication",
        render_table(
            ["policy", "redundancy", "useful results",
             "completion (weeks)", "adaptive validations"],
            rows,
        ),
    )

    fixed = results["fixed quorum (phase I)"].metrics()
    eager = results["adaptive, trust after 5"].metrics()
    cautious = results["adaptive, trust after 20"].metrics()
    # Trusting hosts trims redundancy; trusting sooner trims more.
    assert eager.redundancy < fixed.redundancy - 0.02
    assert eager.redundancy <= cautious.redundancy + 0.02
    # The freed capacity shows up as earlier (or equal) completion.
    assert (
        results["adaptive, trust after 5"].completion_weeks
        <= results["fixed quorum (phase I)"].completion_weeks + 1.0
    )
