"""Figure 4 — workunit distributions for two packagings.

Paper: h = 10 h yields 1,364,476 workunits (4a); h = 4 h yields 3,599,937
(4b).  "The number of workunits increases when the workunit execution time
wanted decreases."
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.distributions import hour_bins
from repro.analysis.report import paper_vs_measured, render_histogram
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.units import SECONDS_PER_HOUR


def _chart(plan, max_hours):
    edges, counts = plan.duration_histogram(hour_bins(max_hours, 1.0))
    return render_histogram(
        edges, counts,
        label=lambda lo, hi: f"{lo / SECONDS_PER_HOUR:>3.0f}-{hi / SECONDS_PER_HOUR:<3.0f} h",
    )


def test_fig4a_h10(cost_model, record_artifact, benchmark):
    plan = benchmark(WorkUnitPlan, cost_model, PackagingPolicy(target_hours=10.0))
    total = plan.total_workunits()
    stats = plan.duration_stats()
    record_artifact(
        "fig4a_workunits_h10",
        _chart(plan, 14) + "\n\n" + paper_vs_measured([
            ("workunits (h=10)", C.N_WORKUNITS_H10, total),
            ("mean duration (h)", "<10", stats["mean"] / 3600),
        ]),
    )
    assert total == pytest.approx(C.N_WORKUNITS_H10, rel=0.05)


def test_fig4b_h4(cost_model, record_artifact, benchmark):
    plan = benchmark(WorkUnitPlan, cost_model, PackagingPolicy(target_hours=4.0))
    total = plan.total_workunits()
    record_artifact(
        "fig4b_workunits_h4",
        _chart(plan, 14) + "\n\n" + paper_vs_measured([
            ("workunits (h=4)", C.N_WORKUNITS_H4, total),
            ("ratio vs h=10", C.N_WORKUNITS_H4 / C.N_WORKUNITS_H10,
             total / WorkUnitPlan(
                 cost_model, PackagingPolicy(10.0)).total_workunits()),
        ]),
    )
    assert total == pytest.approx(C.N_WORKUNITS_H4, rel=0.05)


def test_fig4_monotonicity(cost_model, record_artifact, benchmark):
    """More workunits at smaller targets, across a sweep of h."""

    def sweep():
        return [
            (h, WorkUnitPlan(cost_model, PackagingPolicy(float(h))).total_workunits())
            for h in (16, 12, 10, 8, 6, 4, 2)
        ]

    results = benchmark(sweep)
    rows = [f"h={h:>2} h -> {n:,} workunits" for h, n in results]
    record_artifact("fig4_sweep", "\n".join(rows))
    counts = [n for _, n in results]
    assert counts == sorted(counts)
