"""Table 3 / Section 7 — the phase-II evaluation.

Paper: phase II = 1,444,998,719,637 s of CPU over 40 weeks = 59,730 VFTP
= 300,430 members; ~90 weeks at the phase-I rate; ~1,300,000 members when
HCMD only gets 25% of the grid.
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_table
from repro.core.projection import project_phase2


def test_table3_phase2(record_artifact, benchmark):
    proj = benchmark(project_phase2)

    rendered = render_table(
        ["", "HCMD phase I", "HCMD phase II"],
        [[label, round(a), round(b)] for label, a, b in proj.rows()],
    )
    comparison = paper_vs_measured([
        ("cpu time phase I (s)", C.PHASE1_CPU_S, proj.phase1_cpu_s),
        ("cpu time phase II (s)", C.PHASE2_CPU_S, proj.phase2_cpu_s),
        ("VFTP phase I", C.PHASE1_VFTP, proj.phase1_vftp),
        ("VFTP phase II", C.PHASE2_VFTP, proj.phase2_vftp),
        ("members phase I", C.PHASE1_MEMBERS, proj.phase1_members),
        ("members phase II", C.PHASE2_MEMBERS, proj.phase2_members),
        ("work ratio", C.PHASE2_WORK_RATIO, proj.ratio),
        ("weeks at phase-I rate", C.PHASE2_WEEKS_AT_PHASE1_RATE,
         proj.weeks_at_phase1_rate),
        ("members at 25% share", C.PHASE2_MEMBERS_NEEDED,
         proj.members_needed(C.PHASE2_GRID_SHARE)),
    ])
    record_artifact("table3_phase2", rendered + "\n\n" + comparison)

    assert proj.phase2_cpu_s == pytest.approx(C.PHASE2_CPU_S, rel=1e-3)
    assert round(proj.phase2_vftp) == C.PHASE2_VFTP
    assert round(proj.phase2_members) == pytest.approx(C.PHASE2_MEMBERS, abs=2)
    assert proj.weeks_at_phase1_rate == pytest.approx(90, abs=2)
    assert proj.members_needed(0.25) == pytest.approx(
        C.PHASE2_MEMBERS_NEEDED, rel=0.10
    )
