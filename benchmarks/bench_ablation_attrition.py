"""Ablation — volunteer attrition.

Phase I enjoyed a fleet that only grew ("there are always new members that
join the grid", Section 5.1).  This bench asks the dual question: how much
does volunteer churn cost?  Hosts leave permanently at a per-week hazard;
the deadline/reissue machinery must reclaim their in-flight work.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.boinc.simulator import scaled_phase1

HAZARDS = (0.0, 0.05, 0.15, 0.30)


def test_attrition_sweep(record_artifact, benchmark):
    def sweep():
        out = {}
        for hazard in HAZARDS:
            sim = scaled_phase1(
                scale=250, n_proteins=12, horizon_weeks=100.0
            )
            sim.host_model = sim.host_model.with_profile(
                attrition_weekly=hazard
            )
            out[hazard] = sim.run()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for hazard, res in results.items():
        m = res.metrics()
        rows.append([
            f"{hazard:.0%}/week",
            f"{res.completion_weeks:.1f}" if res.completion_weeks else ">100",
            f"{m.redundancy:.3f}" if res.server.stats.effective else "-",
            res.server.stats.invalid + res.server.stats.late,
        ])
    record_artifact(
        "ablation_attrition",
        "volunteer attrition hazard vs campaign outcome (same arrivals):\n"
        + render_table(
            ["attrition", "completion (weeks)", "redundancy",
             "invalid+late results"],
            rows,
        ),
    )

    def weeks(h):
        w = results[h].completion_weeks
        return w if w is not None else float("inf")

    # Churn costs time; the campaign still completes (deadlines reclaim
    # the departed hosts' work) at moderate hazards.
    assert weeks(0.0) <= weeks(0.30)
    assert results[0.05].completion_weeks is not None
    # Work conservation holds under churn whenever the campaign finishes.
    for hazard, res in results.items():
        if res.completion_weeks is not None:
            assert res.server.stats.effective == res.server.n_workunits
