"""Science ablation — partner recovery from the cross-docking matrix.

The downstream analysis phase I exists for: how reliably do the energy
maps identify the known interaction partners, and how much does the
stickiness normalization matter?  Sweeps the docking-noise level (the
knob the paper's phase II attacks by adding evolutionary information).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.science import CrossDockingMatrix, predict_partners, recovery_rate
from repro.science.partners import ranking_auc


def test_partner_recovery(library, record_artifact, benchmark):
    matrix = CrossDockingMatrix.synthetic(library)

    def pipeline():
        raw = predict_partners(matrix, normalize=False)
        norm = predict_partners(matrix, normalize=True)
        return raw, norm

    raw, norm = benchmark(pipeline)

    rows = [
        ["raw energies",
         f"{recovery_rate(raw, matrix.complexes, 1):.0%}",
         f"{recovery_rate(raw, matrix.complexes, 5):.0%}",
         f"{ranking_auc(raw, matrix.complexes):.3f}"],
        ["double-centered",
         f"{recovery_rate(norm, matrix.complexes, 1):.0%}",
         f"{recovery_rate(norm, matrix.complexes, 5):.0%}",
         f"{ranking_auc(norm, matrix.complexes):.3f}"],
    ]
    record_artifact(
        "science_partner_recovery",
        "planted-partner recovery, 168 proteins / 84 complexes:\n"
        + render_table(["scoring", "top-1", "top-5", "AUC"], rows),
    )

    assert recovery_rate(norm, matrix.complexes, 1) > 0.7
    assert recovery_rate(norm, matrix.complexes, 1) > recovery_rate(
        raw, matrix.complexes, 1
    )
    assert ranking_auc(norm, matrix.complexes) > 0.9


def test_recovery_vs_noise(library, record_artifact, benchmark):
    """Recovery degrades gracefully with docking noise — the headroom the
    phase-II refinements (evolutionary constraints) are meant to buy."""

    def sweep():
        out = []
        for sigma in (1.0, 2.5, 5.0, 8.0, 12.0):
            matrix = CrossDockingMatrix.synthetic(library, noise_sigma=sigma)
            norm = predict_partners(matrix, normalize=True)
            out.append((sigma, recovery_rate(norm, matrix.complexes, 1),
                        ranking_auc(norm, matrix.complexes)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_artifact(
        "science_recovery_vs_noise",
        render_table(
            ["noise sigma (kcal/mol)", "top-1 recovery", "AUC"],
            [[f"{s:g}", f"{r:.0%}", f"{a:.3f}"] for s, r, a in results],
        ),
    )
    recoveries = [r for _, r, _ in results]
    # Monotone degradation, strong at low noise, still informative at high.
    assert recoveries == sorted(recoveries, reverse=True)
    assert recoveries[0] > 0.9
    assert results[-1][2] > 0.6  # AUC stays above chance even at sigma=12
