"""Science ablation — binding-site localization and focused docking (§2, §7).

"Knowledge of binding sites will greatly reduce the costs of the search"
(Section 2); phase II plans to cut the docking points by 100x (Section 7).
This bench localizes the planted interfaces from phase-I-style maps, then
prunes the starting grids and measures how much partner signal survives at
10x and 100x point reductions — the feasibility check behind Table 3's
workload arithmetic.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.science.partners import predict_partners, recovery_rate
from repro.science.sitemaps import SiteMaps


@pytest.fixture(scope="module")
def maps() -> SiteMaps:
    # 168 proteins x 600 positions: a phase-I-shaped map set.
    return SiteMaps.synthetic(n_proteins=168, seed=2007, n_positions=600)


def test_site_localization(maps, record_artifact, benchmark):
    recovery = benchmark(maps.site_recovery)
    record_artifact(
        "science_site_localization",
        f"planted-interface recovery over {maps.n_proteins} receptors, "
        f"{maps.n_positions} positions each: {recovery:.1%}",
    )
    assert recovery > 0.85


def test_focused_docking_sweep(maps, record_artifact, benchmark):
    def sweep():
        rows = []
        full = predict_partners(maps.to_matrix())
        rows.append((1.0, recovery_rate(full, maps.complexes, 1)))
        for keep in (0.1, 0.02, 0.01):
            pruned = maps.pruned(keep_fraction=keep)
            pred = predict_partners(pruned.to_matrix())
            rows.append((keep, recovery_rate(pred, maps.complexes, 1)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    record_artifact(
        "science_focused_docking",
        "docking-point reduction vs partner recovery (the §7 plan:\n"
        "'reduce the number of docking points by a factor of 100'):\n"
        + render_table(
            ["points kept", "cost vs full grid", "top-1 partner recovery"],
            [
                [f"{keep:.0%}", f"{maps.docking_cost_fraction(keep):.1%}"
                 if keep < 1 else "100%", f"{rec:.0%}"]
                for keep, rec in rows
            ],
        ),
    )

    by_keep = dict(rows)
    # Full-grid recovery is strong; a 10x cut keeps nearly all of it; the
    # paper's 100x cut still keeps most of the partner signal — the
    # feasibility premise of phase II.
    assert by_keep[1.0] > 0.8
    assert by_keep[0.1] > by_keep[1.0] - 0.15
    assert by_keep[0.01] > 0.5
