"""Ablation — workunit packaging strategies (Section 4.2's "several
methods to build workunits").

Compares the paper's floor rule against the three variants on the
sub-goals the paper names: decreasing the number of small workunits and
minimizing the number of workunits, at equal total work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.units import hours

STRATEGIES = ("floor", "round", "merge-tail", "even")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_build_speed(cost_model, benchmark, strategy):
    plan = benchmark(
        WorkUnitPlan, cost_model, PackagingPolicy(10.0, strategy)
    )
    assert plan.total_workunits() > 0


def test_strategy_comparison(cost_model, record_artifact, benchmark):
    def build_all():
        return {
            s: WorkUnitPlan(cost_model, PackagingPolicy(10.0, s))
            for s in STRATEGIES
        }

    plans = benchmark(build_all)

    small_cut = hours(1.0)
    rows = []
    for name, plan in plans.items():
        stats = plan.duration_stats()
        durations, weights = plan._duration_pairs()
        small = float(weights[durations < small_cut].sum())
        rows.append([
            name,
            plan.total_workunits(),
            f"{stats['mean'] / 3600:.2f}",
            f"{stats['std'] / 3600:.2f}",
            f"{small:,.0f}",
        ])
    record_artifact(
        "ablation_packaging",
        render_table(
            ["strategy", "workunits", "mean (h)", "std (h)", "wu under 1 h"],
            rows,
        ),
    )

    floor = plans["floor"]
    # All strategies conserve work exactly.
    totals = {s: p.total_reference_cpu() for s, p in plans.items()}
    for s in STRATEGIES:
        assert totals[s] == pytest.approx(totals["floor"], rel=1e-9)
    # merge-tail attacks the small-workunit sub-goal.
    def small_count(plan):
        durations, weights = plan._duration_pairs()
        return float(weights[durations < small_cut].sum())

    assert small_count(plans["merge-tail"]) < small_count(floor)
    # round minimizes the workunit count.
    assert plans["round"].total_workunits() <= floor.total_workunits()
    # even narrows the distribution at the same count.
    assert plans["even"].duration_stats()["std"] <= floor.duration_stats()["std"]
