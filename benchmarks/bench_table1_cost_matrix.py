"""Table 1 — statistics of the computing-time matrix.

Paper values (seconds): average 671, standard deviation 968.04, min 6,
max 46,347, median 384 — measured over the 168^2 couples on the reference
Opteron 2 GHz.  The benchmark times the full matrix calibration.
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured
from repro.maxdo.cost_model import CostModel
from repro.units import seconds_to_ydhms


def test_table1_statistics(cost_model, record_artifact, benchmark):
    library_nsep = cost_model.nsep

    stats = benchmark(cost_model.statistics)

    record_artifact(
        "table1_cost_matrix",
        paper_vs_measured([
            ("average (s)", C.MCT_MEAN_S, stats["average"]),
            ("standard deviation (s)", C.MCT_STD_S, stats["standard deviation"]),
            ("min (s)", C.MCT_MIN_S, stats["min"]),
            ("max (s)", C.MCT_MAX_S, stats["max"]),
            ("median (s)", C.MCT_MEDIAN_S, stats["median"]),
            ("total cpu (y:d:h:m:s)", "1,488:237:19:45:54",
             str(seconds_to_ydhms(cost_model.total_reference_cpu()))),
            ("top-10 protein time share", C.TOP10_PROTEIN_TIME_SHARE,
             cost_model.top_share(10)),
        ]),
    )

    assert stats["average"] == pytest.approx(C.MCT_MEAN_S, rel=0.02)
    assert stats["median"] == pytest.approx(C.MCT_MEDIAN_S, rel=0.03)
    assert stats["max"] == pytest.approx(C.MCT_MAX_S, rel=0.15)
    # The disparity the paper stresses: a heavy-tailed matrix.
    assert stats["max"] / stats["median"] > 50


def test_table1_calibration_speed(library, benchmark):
    """Time the full 168x168 calibration from scratch."""
    model = benchmark(CostModel.calibrated, library)
    assert model.n_proteins == 168
