"""Figure 6a — virtual full-time processors during the HCMD project.

Paper: three phases (control period, project prioritization, full power);
average 16,450 VFTP over the whole project, 26,248 during the full-power
phase; WCG overall averaged 54,947 with its count always increasing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_histogram
from repro.analysis.timeseries import segment_phases


def test_fig6a_project_vftp(fluid_result, record_artifact, record_data, benchmark):
    fluid, _ = fluid_result
    result = benchmark(fluid.run)
    record_data(
        "fig6a_project_vftp",
        {"week": result.weeks, "vftp": result.vftp},
        experiment="Figure 6a",
    )

    weekly = result.vftp
    edges = np.arange(len(weekly) + 1, dtype=float)
    chart = render_histogram(
        edges, weekly, label=lambda lo, hi: f"week {lo:>4.0f}"
    )

    phases = segment_phases(weekly)
    control = phases["control period"]
    full = phases["full power working phase"]

    whole_avg = result.metrics().vftp
    full_avg = result.metrics(first_week=13).vftp

    comparison = paper_vs_measured([
        ("avg VFTP whole project", C.HCMD_VFTP_WHOLE_PERIOD, whole_avg),
        ("avg VFTP full power", C.HCMD_VFTP_FULL_POWER, full_avg),
        ("completion (weeks)", 26, result.completion_week),
        ("control period span (weeks)", C.CONTROL_PERIOD_WEEKS,
         control[1] - control[0]),
        ("full-power span (weeks)", C.FULL_POWER_WEEKS, full[1] - full[0]),
    ])
    record_artifact("fig6a_project_vftp", chart + "\n\n" + comparison)

    assert whole_avg == pytest.approx(C.HCMD_VFTP_WHOLE_PERIOD, rel=0.06)
    assert full_avg == pytest.approx(C.HCMD_VFTP_FULL_POWER, rel=0.06)
    # The three-phase structure: full power >> control.
    assert weekly[full[0]:full[1]].mean() > 4 * weekly[control[0]:control[1]].mean()
    assert result.completion_week == pytest.approx(26.0, abs=2.0)
