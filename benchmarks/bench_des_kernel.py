"""Infrastructure benchmark — discrete-event kernel throughput.

The volunteer campaign schedules hundreds of thousands of events; this
bench pins the kernel's event throughput across the four scheduling
patterns the campaign exercises (self-scheduling chains, bulk loads,
cancellation churn, deadline timers) and measures the fast kernel
(``repro.grid.des``) against the frozen reference implementation
(``repro.grid._reference_des``) so regressions in the simulation
substrate are caught early.

Records machine-readable results under ``benchmarks/artifacts/`` and as
``BENCH_des.json`` at the repo root: per-pattern events/second for both
kernels, the speedup ratios and their geometric mean, plus a scaled
campaign wall-time figure.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` to shrink every workload ~20x —
the whole file then runs in a few seconds and still fails on a gross
(>50%) throughput regression against the reference kernel.
"""

from __future__ import annotations

import math
import os
from collections import deque
from time import perf_counter

from repro.boinc.simulator import scaled_phase1
from repro.grid import _reference_des
from repro.grid.des import Simulator

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: workload sizes (events); smoke mode shrinks them ~20x
N_SELF_SCHED = 2_500 if SMOKE else 50_000
N_BULK = 1_000 if SMOKE else 20_000
N_CANCEL = 1_000 if SMOKE else 20_000
N_TIMER = 2_000 if SMOKE else 40_000
TIMING_REPEATS = 1 if SMOKE else 5

#: sanity floor on the geometric-mean speedup vs the reference kernel.
#: The full bench demands a real win; smoke mode only guards against a
#: >50% regression (ratio < 0.5 means the fast path got slower than the
#: kernel it replaced).
MIN_GEOMEAN_SPEEDUP = 0.5 if SMOKE else 1.5

CAMPAIGN_SCALE = 700 if SMOKE else 50
CAMPAIGN_PROTEINS = 6 if SMOKE else 24


# -- scheduling-pattern workloads (run identically on either kernel) ------

def _self_scheduling(sim_cls, n):
    """One live event chain: each callback schedules its successor."""
    sim = sim_cls()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def _bulk_schedule(sim_cls, n):
    """Deep queue: n events scheduled up front, then drained."""
    sim = sim_cls()
    sink = []
    for k in range(n):
        sim.schedule(float(k % 97), sink.append, k)
    sim.run()
    return len(sink)


def _cancellation(sim_cls, n):
    """Tombstone churn: n scheduled, every other one cancelled."""
    sim = sim_cls()
    events = [sim.schedule(1.0, lambda: None) for _ in range(n)]
    for ev in events[::2]:
        ev.cancel()
    sim.run()
    assert sim.events_processed == n // 2
    return n


def _deadline_timers(sim_cls, n):
    """The server's deadline pattern: long fixed-delay timers, almost
    always cancelled well before they fire."""
    sim = sim_cls()
    pending = deque()
    count = 0

    def noop():
        pass

    def tick():
        nonlocal count
        count += 1
        pending.append(sim.schedule_timer(1000.0, noop))
        if len(pending) >= 8:
            pending.popleft().cancel()
        if count < n:
            sim.schedule(1.0, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


PATTERNS = [
    ("self_scheduling", _self_scheduling, N_SELF_SCHED),
    ("bulk_schedule", _bulk_schedule, N_BULK),
    ("cancellation", _cancellation, N_CANCEL),
    ("deadline_timers", _deadline_timers, N_TIMER),
]


def _measure_pair(workload, n):
    """Best-of-N events/second for the fast and reference kernels.

    The two kernels are timed interleaved (fast, reference, fast, ...)
    so background load hits both measurements instead of biasing one.
    """
    best = {Simulator: 0.0, _reference_des.Simulator: 0.0}
    ops = {}
    for _ in range(TIMING_REPEATS):
        for sim_cls in (Simulator, _reference_des.Simulator):
            t0 = perf_counter()
            fired = workload(sim_cls, n)
            elapsed = perf_counter() - t0
            assert ops.setdefault(sim_cls, fired) == fired
            best[sim_cls] = max(best[sim_cls], fired / elapsed)
    assert ops[Simulator] == ops[_reference_des.Simulator], (
        "kernels disagree on event count"
    )
    return best[Simulator], best[_reference_des.Simulator]


# -- per-pattern pytest-benchmark timings (fast kernel) -------------------

def test_event_throughput(benchmark):
    assert benchmark(_self_scheduling, Simulator, N_SELF_SCHED) == N_SELF_SCHED


def test_bulk_schedule_then_run(benchmark):
    assert benchmark(_bulk_schedule, Simulator, N_BULK) == N_BULK


def test_cancellation_overhead(benchmark):
    assert benchmark(_cancellation, Simulator, N_CANCEL) == N_CANCEL


def test_deadline_timer_throughput(benchmark):
    assert benchmark(_deadline_timers, Simulator, N_TIMER) == N_TIMER


# -- fast kernel vs reference kernel + campaign figure --------------------

def test_bench_des_speedup(record_artifact, record_bench_json):
    patterns = {}
    ratios = []
    total_events = 0
    total_fast_s = 0.0
    total_ref_s = 0.0
    for name, workload, n in PATTERNS:
        fast_eps, ref_eps = _measure_pair(workload, n)
        ratio = fast_eps / ref_eps
        ratios.append(ratio)
        total_events += n
        total_fast_s += n / fast_eps
        total_ref_s += n / ref_eps
        patterns[name] = {
            "n_events": n,
            "fast_events_per_s": fast_eps,
            "reference_events_per_s": ref_eps,
            "speedup": ratio,
        }
    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    # The headline: total events over total wall time for the whole
    # pattern suite — each pattern contributes by how long it actually
    # takes, which is how the campaign experiences the kernel.
    aggregate = total_ref_s / total_fast_s

    t0 = perf_counter()
    result = scaled_phase1(scale=CAMPAIGN_SCALE, n_proteins=CAMPAIGN_PROTEINS).run()
    campaign_wall_s = perf_counter() - t0
    campaign_events = result.server.sim.events_processed

    lines = [
        f"{'pattern':<18}{'fast ev/s':>12}{'reference ev/s':>16}{'speedup':>9}"
    ]
    for name, row in patterns.items():
        lines.append(
            f"{name:<18}{row['fast_events_per_s']:>12,.0f}"
            f"{row['reference_events_per_s']:>16,.0f}"
            f"{row['speedup']:>8.2f}x"
        )
    lines.append(
        f"aggregate event throughput: {total_events / total_fast_s:,.0f} ev/s "
        f"fast vs {total_events / total_ref_s:,.0f} ev/s reference "
        f"-> {aggregate:.2f}x"
    )
    lines.append(f"geometric-mean speedup: {geomean:.2f}x "
                 f"(floor {MIN_GEOMEAN_SPEEDUP:.1f}x, smoke={SMOKE})")
    lines.append(
        f"scaled campaign (scale={CAMPAIGN_SCALE}, "
        f"n_proteins={CAMPAIGN_PROTEINS}): {campaign_wall_s:.2f} s wall, "
        f"{campaign_events:,} events "
        f"({campaign_events / campaign_wall_s:,.0f} ev/s end-to-end)"
    )
    record_artifact("bench_des_kernel", "\n".join(lines))
    record_bench_json(
        "des",
        {
            "smoke": SMOKE,
            "patterns": patterns,
            "aggregate_speedup": aggregate,
            "aggregate_fast_events_per_s": total_events / total_fast_s,
            "aggregate_reference_events_per_s": total_events / total_ref_s,
            "geomean_speedup": geomean,
            "min_geomean_speedup": MIN_GEOMEAN_SPEEDUP,
            "campaign": {
                "scale": CAMPAIGN_SCALE,
                "n_proteins": CAMPAIGN_PROTEINS,
                "wall_seconds": campaign_wall_s,
                "events_processed": campaign_events,
                "events_per_second": campaign_events / campaign_wall_s,
            },
        },
        experiment="DES kernel fast path vs reference",
    )

    assert geomean >= MIN_GEOMEAN_SPEEDUP, (
        f"DES fast path only {geomean:.2f}x the reference kernel "
        f"(floor {MIN_GEOMEAN_SPEEDUP}x)"
    )
