"""Infrastructure benchmark — discrete-event kernel throughput.

The volunteer campaign schedules hundreds of thousands of events; this
bench pins the kernel's event throughput and the cancellation overhead so
regressions in the simulation substrate are caught early.
"""

from __future__ import annotations

import pytest

from repro.grid.des import Simulator


def test_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 50_000


def test_bulk_schedule_then_run(benchmark):
    def run():
        sim = Simulator()
        sink = []
        for k in range(20_000):
            sim.schedule(float(k % 97), sink.append, k)
        sim.run()
        return len(sink)

    assert benchmark(run) == 20_000


def test_cancellation_overhead(benchmark):
    def run():
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(20_000)]
        for ev in events[::2]:
            ev.cancel()
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000
