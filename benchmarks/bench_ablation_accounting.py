"""Ablation — run-time accounting and the points system (Sections 6, 8).

Phase I ran on the UD agent (wall-clock accounting, the source of the
"low estimate" caveat); phase II moves to BOINC (CPU-time accounting);
Section 8 proposes a points-based VFTP as the middleware-independent
metric.  This bench runs the same campaign under both accountings and
compares the three estimators against the true useful throughput.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.boinc.credit import AccountingMode
from repro.boinc.simulator import scaled_phase1


def test_accounting_modes(record_artifact, benchmark):
    def run_both():
        out = {}
        for mode in AccountingMode:
            sim = scaled_phase1(scale=200, n_proteins=14, accounting=mode)
            out[mode] = sim.run()
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for mode, res in results.items():
        truth = res.vftp_from_useful_work()
        rows.append([
            mode.value,
            f"{res.metrics().vftp / truth:.2f}",
            f"{res.vftp_from_credit() / truth:.2f}",
            f"{res.metrics().redundancy:.2f}",
        ])
    record_artifact(
        "ablation_accounting",
        "VFTP estimators relative to true useful throughput (1.0 = exact;\n"
        "the redundancy factor is the floor any result-counting estimator\n"
        "carries):\n"
        + render_table(
            ["agent accounting", "runtime-based VFTP / truth",
             "points-based VFTP / truth", "redundancy"],
            rows,
        ),
    )

    ud = results[AccountingMode.UD_WALL_CLOCK]
    boinc = results[AccountingMode.BOINC_CPU_TIME]
    ud_runtime_err = ud.metrics().vftp / ud.vftp_from_useful_work()
    boinc_runtime_err = boinc.metrics().vftp / boinc.vftp_from_useful_work()
    boinc_points_err = boinc.vftp_from_credit() / boinc.vftp_from_useful_work()

    # UD wall-clock accounting overstates ~4x (the paper's speed-down);
    # BOINC CPU accounting roughly halves the bias; points with CPU
    # accounting land at the redundancy floor.
    assert ud_runtime_err > 1.5 * boinc_runtime_err
    assert boinc_points_err < boinc_runtime_err
    # Points with CPU accounting sit at the *work-weighted* redundancy
    # floor: above exact (1.0) but at or below the count-based redundancy
    # factor, because quorum-era duplicates concentrate on the cheap early
    # batches.
    assert 1.0 < boinc_points_err < boinc.metrics().redundancy + 0.15
